"""Unit tests for the worker quarantine's diversity rule."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.resilience.quarantine import WorkerQuarantine


class TestQuarantine:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerQuarantine(max_deaths=0)
        with pytest.raises(ConfigurationError):
            WorkerQuarantine(min_distinct_cells=0)

    def test_diverse_deaths_trip_the_quarantine(self):
        quarantine = WorkerQuarantine(max_deaths=3, min_distinct_cells=2)
        assert not quarantine.record_death("w", [1])
        assert not quarantine.record_death("w", [2])
        assert quarantine.record_death("w", [3])  # 3 deaths, 3 distinct cells
        assert quarantine.is_quarantined("w")
        assert quarantine.quarantined == ["w"]
        # Only the tipping death returns True.
        assert not quarantine.record_death("w", [4])

    def test_same_cell_deaths_never_trip(self):
        """A poisoned cell is the frontier's problem (per-cell attempt
        budget), not the worker's: identical-cell deaths don't count as
        worker badness no matter how many pile up."""
        quarantine = WorkerQuarantine(max_deaths=3, min_distinct_cells=2)
        for _ in range(10):
            assert not quarantine.record_death("w", [7])
        assert not quarantine.is_quarantined("w")
        assert quarantine.deaths("w") == 10

    def test_idle_deaths_count_once_diversity_is_met(self):
        quarantine = WorkerQuarantine(max_deaths=3, min_distinct_cells=2)
        assert not quarantine.record_death("w", [1, 2])
        assert not quarantine.record_death("w", [])  # died idle
        assert quarantine.record_death("w", [])
        assert quarantine.is_quarantined("w")

    def test_identities_are_independent(self):
        quarantine = WorkerQuarantine(max_deaths=1, min_distinct_cells=1)
        assert quarantine.record_death("a", [1])
        assert not quarantine.is_quarantined("b")
        assert quarantine.deaths("b") == 0

    def test_to_json(self):
        quarantine = WorkerQuarantine(max_deaths=1, min_distinct_cells=1)
        quarantine.record_death("b", [1])
        quarantine.record_death("a", [])
        doc = quarantine.to_json()
        assert doc["quarantined"] == ["b"]
        assert doc["deaths"] == {"a": 1, "b": 1}
