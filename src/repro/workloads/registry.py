"""Registry of the paper's named workloads.

Maps the benchmark names used throughout the paper's tables and figures
to ready-to-call trace generators.  The registry is what the benchmark
harness and the command-line driver use, so experiment scripts refer to
workloads exactly the way the paper does (e.g. ``"h264dec-1x1-10f"``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.errors import ConfigurationError
from repro.trace.trace import Trace
from repro.workloads.cray import generate_cray
from repro.workloads.gaussian import PAPER_MATRIX_SIZES, generate_gaussian_elimination
from repro.workloads.h264dec import generate_h264dec
from repro.workloads.microbench import generate_microbenchmark
from repro.workloads.rotcc import generate_rotcc
from repro.workloads.sparselu import generate_sparselu
from repro.workloads.streamcluster import generate_streamcluster

#: A workload factory takes (scale, seed) and returns a trace.
WorkloadFactory = Callable[[float, Optional[int]], Trace]


def _h264_factory(grouping: int) -> WorkloadFactory:
    def factory(scale: float = 1.0, seed: Optional[int] = None) -> Trace:
        return generate_h264dec(grouping=grouping, num_frames=10, seed=seed, scale=scale)

    return factory


def _gaussian_factory(matrix_size: int) -> WorkloadFactory:
    def factory(scale: float = 1.0, seed: Optional[int] = None) -> Trace:
        # The Gaussian benchmark is defined by its matrix size; `scale`
        # shrinks the matrix (keeping the triangular dependency shape).
        effective = max(4, int(round(matrix_size * (scale ** 0.5))))
        return generate_gaussian_elimination(matrix_size=effective, seed=seed)

    return factory


WORKLOADS: Dict[str, WorkloadFactory] = {
    "c-ray": lambda scale=1.0, seed=None: generate_cray(scale=scale, seed=seed),
    "rot-cc": lambda scale=1.0, seed=None: generate_rotcc(scale=scale, seed=seed),
    "sparselu": lambda scale=1.0, seed=None: generate_sparselu(scale=scale, seed=seed),
    "streamcluster": lambda scale=1.0, seed=None: generate_streamcluster(scale=scale, seed=seed),
    "h264dec-1x1-10f": _h264_factory(1),
    "h264dec-2x2-10f": _h264_factory(2),
    "h264dec-4x4-10f": _h264_factory(4),
    "h264dec-8x8-10f": _h264_factory(8),
    "gaussian-250": _gaussian_factory(250),
    "gaussian-500": _gaussian_factory(500),
    "gaussian-1000": _gaussian_factory(1000),
    "gaussian-3000": _gaussian_factory(3000),
    "microbench": lambda scale=1.0, seed=None: generate_microbenchmark(seed=seed),
}

#: The workloads listed in Table II, in the paper's row order.
TABLE2_WORKLOADS = (
    "c-ray",
    "rot-cc",
    "sparselu",
    "streamcluster",
    "h264dec-1x1-10f",
    "h264dec-2x2-10f",
    "h264dec-4x4-10f",
    "h264dec-8x8-10f",
)


def list_workloads() -> list[str]:
    """Names of all registered workloads."""
    return sorted(WORKLOADS)


def paper_table2_workloads() -> tuple[str, ...]:
    """Workload names in the order of the paper's Table II."""
    return TABLE2_WORKLOADS


def get_workload(name: str, scale: float = 1.0, seed: Optional[int] = None) -> Trace:
    """Generate the named workload at the given scale."""
    try:
        factory = WORKLOADS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        ) from exc
    return factory(scale, seed)
