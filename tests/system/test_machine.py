"""Tests for the multicore machine simulator."""

import pytest

from repro.common.errors import ConfigurationError
from repro.managers.ideal import IdealManager
from repro.nexus.nexuspp import NexusPlusPlusManager
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.system.machine import Machine, MachineConfig, simulate
from repro.trace.trace import TraceBuilder
from repro.workloads.synthetic import generate_chain, generate_fork_join, generate_independent


class DegradedIdealManager(IdealManager):
    """Zero-overhead manager without ``taskwait on`` support (Nexus++-style)."""

    name = "DegradedIdeal"
    supports_taskwait_on = False


class TestIdealScheduling:
    def test_single_core_makespan_equals_total_work(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 1, validate=True)
        assert result.makespan_us == pytest.approx(independent_trace.total_work_us)
        assert result.speedup_vs_serial == pytest.approx(1.0)

    def test_independent_tasks_scale_linearly(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 4, validate=True)
        assert result.speedup_vs_serial == pytest.approx(4.0)

    def test_more_cores_than_tasks(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 1000, validate=True)
        # 20 tasks of 10 µs: everything runs at once.
        assert result.makespan_us == pytest.approx(10.0)

    def test_chain_cannot_scale(self, chain_trace):
        serial = simulate(chain_trace, IdealManager(), 1, validate=True)
        parallel = simulate(chain_trace, IdealManager(), 8, validate=True)
        assert parallel.makespan_us == pytest.approx(serial.makespan_us)

    def test_diamond_critical_path(self, tiny_diamond_trace):
        result = simulate(tiny_diamond_trace, IdealManager(), 4, validate=True)
        assert result.makespan_us == pytest.approx(30.0)

    def test_all_tasks_executed_exactly_once(self, random_dag_trace):
        result = simulate(random_dag_trace, IdealManager(), 8, validate=True)
        assert result.num_tasks == random_dag_trace.num_tasks
        assert len(result.finish_times) == random_dag_trace.num_tasks

    def test_makespan_at_least_critical_path_and_at_most_serial(self, random_dag_trace):
        from repro.trace.dag import build_dependency_graph

        graph = build_dependency_graph(random_dag_trace)
        result = simulate(random_dag_trace, IdealManager(), 4, validate=True)
        assert result.makespan_us >= graph.critical_path_length() - 1e-6
        assert result.makespan_us <= graph.total_work() + 1e-6


class TestBarriers:
    def test_taskwait_serialises_phases(self):
        builder = TraceBuilder("barrier")
        builder.add_task("a", 10.0, outputs=[0x40])
        builder.add_task("b", 10.0, outputs=[0x80])
        builder.add_taskwait()
        builder.add_task("c", 10.0, outputs=[0xC0])
        trace = builder.build()
        result = simulate(trace, IdealManager(), 4, validate=True)
        # Phase 1 (10 µs, two tasks in parallel) then c (10 µs).
        assert result.makespan_us == pytest.approx(20.0)
        assert result.start_times[2] >= max(result.finish_times[0], result.finish_times[1])

    def test_taskwait_on_only_waits_for_the_named_writer(self):
        builder = TraceBuilder("taskwait-on")
        builder.add_task("slow", 100.0, outputs=[0x40])
        builder.add_task("fast", 1.0, outputs=[0x80])
        builder.add_taskwait_on(0x80)
        builder.add_task("after", 1.0, outputs=[0xC0])
        trace = builder.build()
        result = simulate(trace, IdealManager(), 4, validate=True)
        # "after" must not wait for "slow".
        assert result.start_times[2] < 100.0

    def test_taskwait_on_degrades_to_full_taskwait_without_support(self):
        builder = TraceBuilder("taskwait-on-degraded")
        builder.add_task("slow", 100.0, outputs=[0x40])
        builder.add_task("fast", 1.0, outputs=[0x80])
        builder.add_taskwait_on(0x80)
        builder.add_task("after", 1.0, outputs=[0xC0])
        trace = builder.build()
        result = simulate(trace, NexusPlusPlusManager(), 4, validate=True)
        # Nexus++ has no taskwait-on support: "after" waits for everything.
        assert result.start_times[2] >= 100.0

    def test_taskwait_on_unwritten_address_is_noop(self):
        builder = TraceBuilder("noop-barrier")
        builder.add_task("a", 10.0, outputs=[0x40])
        builder.add_taskwait_on(0xDEAD00)
        builder.add_task("b", 10.0, outputs=[0x80])
        trace = builder.build()
        result = simulate(trace, IdealManager(), 2, validate=True)
        assert result.makespan_us == pytest.approx(10.0)

    def test_leading_and_trailing_barriers(self):
        builder = TraceBuilder("edge-barriers")
        builder.add_taskwait()
        builder.add_task("a", 5.0, outputs=[0x40])
        builder.add_taskwait()
        builder.add_taskwait()
        trace = builder.build()
        result = simulate(trace, IdealManager(), 1, validate=True)
        assert result.makespan_us == pytest.approx(5.0)


class TestTaskwaitOnDegradation:
    """The ``supports_taskwait_on=False`` path (Nexus++, Section III)."""

    def _trace_with_targeted_wait(self):
        builder = TraceBuilder("degradation")
        builder.add_task("slow", 100.0, outputs=[0x40])
        builder.add_task("fast", 1.0, outputs=[0x80])
        builder.add_taskwait_on(0x80)
        builder.add_task("after", 1.0, outputs=[0xC0])
        return builder.build()

    def test_supporting_manager_only_waits_for_the_writer(self):
        result = simulate(self._trace_with_targeted_wait(), IdealManager(), 4, validate=True)
        assert result.start_times[2] < 100.0

    def test_degraded_manager_waits_for_everything(self):
        result = simulate(self._trace_with_targeted_wait(), DegradedIdealManager(), 4, validate=True)
        assert result.start_times[2] >= 100.0
        assert result.makespan_us == pytest.approx(101.0)

    def test_degradation_with_no_outstanding_tasks_is_a_noop(self):
        builder = TraceBuilder("noop-degraded")
        builder.add_taskwait_on(0x40)
        builder.add_task("a", 10.0, outputs=[0x40])
        builder.add_taskwait()
        builder.add_taskwait_on(0x40)  # everything already finished
        builder.add_task("b", 10.0, outputs=[0x80])
        trace = builder.build()
        result = simulate(trace, DegradedIdealManager(), 2, validate=True)
        assert result.makespan_us == pytest.approx(20.0)

    def test_repeated_degraded_waits_serialise_phases(self):
        builder = TraceBuilder("phased-degraded")
        for phase in range(3):
            builder.add_task(f"p{phase}a", 10.0, outputs=[0x1000 + 0x40 * phase])
            builder.add_task(f"p{phase}b", 10.0, outputs=[0x2000 + 0x40 * phase])
            # Targets only the first task, but degrades to a full barrier.
            builder.add_taskwait_on(0x1000 + 0x40 * phase)
        trace = builder.build()
        result = simulate(trace, DegradedIdealManager(), 4, validate=True)
        # Each phase's two tasks run in parallel; the degraded barrier
        # fences phases, so the makespan is 3 x 10 us.
        assert result.makespan_us == pytest.approx(30.0)
        degraded_starts = [result.start_times[i] for i in range(6)]
        assert degraded_starts == [0.0, 0.0, 10.0, 10.0, 20.0, 20.0]
        # With real taskwait-on support the same trace finishes no later.
        supported = simulate(trace, IdealManager(), 4, validate=True)
        assert supported.makespan_us <= result.makespan_us


class TestCoreSaturationDispatch:
    """More ready tasks than idle cores: dispatch order is the policy's."""

    def _independent(self, durations):
        builder = TraceBuilder("saturation")
        for index, duration in enumerate(durations):
            builder.add_task(f"t{index}", duration, outputs=[0x1000 + 0x40 * index])
        return builder.build()

    def test_fifo_preserves_ready_order_under_saturation(self):
        trace = self._independent([10.0] * 6)
        result = simulate(trace, IdealManager(), 2, validate=True)
        starts = [result.start_times[i] for i in range(6)]
        # Pairs start in submission order as cores free up.
        assert starts == [0.0, 0.0, 10.0, 10.0, 20.0, 20.0]
        assert result.makespan_us == pytest.approx(30.0)

    def test_fifo_queue_drains_in_ready_order_with_mixed_durations(self):
        trace = self._independent([30.0, 5.0, 10.0, 10.0])
        result = simulate(trace, IdealManager(), 2, validate=True)
        # Core frees at t=5 (task 1): FIFO hands it task 2, then task 3.
        assert result.start_times[2] == pytest.approx(5.0)
        assert result.start_times[3] == pytest.approx(15.0)

    def test_sjf_reorders_saturated_queue(self):
        trace = self._independent([50.0, 30.0, 20.0, 10.0])
        result = simulate(trace, IdealManager(), 1, validate=True, scheduler="sjf")
        # Task 0 starts immediately (idle core); the rest drain shortest-first.
        assert result.start_times[0] == pytest.approx(0.0)
        order = sorted(range(1, 4), key=lambda i: result.start_times[i])
        assert order == [3, 2, 1]
        assert result.scheduler == "sjf"

    def test_ljf_reorders_saturated_queue(self):
        trace = self._independent([50.0, 10.0, 20.0, 30.0])
        result = simulate(trace, IdealManager(), 1, validate=True, scheduler="ljf")
        order = sorted(range(1, 4), key=lambda i: result.start_times[i])
        assert order == [3, 2, 1]

    def test_concurrency_never_exceeds_core_count(self):
        trace = self._independent([10.0] * 7)
        for scheduler in ("fifo", "sjf", "locality"):
            result = simulate(trace, IdealManager(), 3, validate=True, scheduler=scheduler)
            events = sorted(
                [(t, 1) for t in result.start_times.values()]
                + [(t, -1) for t in result.finish_times.values()]
            )
            running = peak = 0
            for _, delta in events:
                running += delta
                peak = max(peak, running)
            assert peak <= 3

    def test_makespan_invariant_across_policies_on_uniform_tasks(self):
        trace = self._independent([10.0] * 8)
        makespans = {
            scheduler: simulate(trace, IdealManager(), 2, scheduler=scheduler).makespan_us
            for scheduler in ("fifo", "sjf", "ljf", "locality")
        }
        assert len(set(makespans.values())) == 1


class TestHeterogeneousTopologies:
    def test_slow_core_doubles_duration(self):
        builder = TraceBuilder("one-task")
        builder.add_task("t", 10.0, outputs=[0x40])
        result = simulate(builder.build(), IdealManager(), 1, validate=True,
                          topology="homogeneous:0.5")
        assert result.makespan_us == pytest.approx(20.0)

    def test_fast_idle_core_preferred(self):
        builder = TraceBuilder("two-tasks")
        builder.add_task("a", 10.0, outputs=[0x40])
        builder.add_task("b", 10.0, outputs=[0x80])
        result = simulate(builder.build(), IdealManager(), 2, validate=True,
                          topology="speeds:2,1")
        # Task 0 lands on the fast core (5 us), task 1 on the unit core.
        assert result.task_cores[0] == 0
        assert result.task_cores[1] == 1
        assert result.finish_times[0] == pytest.approx(5.0)
        assert result.finish_times[1] == pytest.approx(10.0)

    def test_big_little_slower_than_homogeneous(self):
        trace = generate_independent(16, duration_us=10.0, seed=3)
        fast = simulate(trace, IdealManager(), 4)
        mixed = simulate(trace, IdealManager(), 4, topology="biglittle:0.5")
        assert mixed.makespan_us > fast.makespan_us
        assert mixed.topology["kind"] == "big_little"

    def test_per_core_busy_sums_to_total(self):
        trace = generate_fork_join(num_phases=4, width=6, seed=1)
        result = simulate(trace, IdealManager(), 4, topology="biglittle:0.5")
        assert sum(result.per_core_busy_us) == pytest.approx(result.core_busy_us)
        assert len(result.per_core_busy_us) == 4
        assert len(result.per_core_utilization) == 4
        assert all(0.0 <= u <= 1.0 for u in result.per_core_utilization)

    def test_homogeneous_results_unchanged_by_topology_plumbing(self):
        trace = generate_fork_join(num_phases=3, width=5, seed=2)
        default = simulate(trace, IdealManager(), 4)
        explicit = simulate(trace, IdealManager(), 4, topology="homogeneous")
        assert default.makespan_us == explicit.makespan_us
        assert default.start_times == explicit.start_times

    def test_mismatched_concrete_topology_rejected(self):
        from repro.system.topology import CoreTopology

        with pytest.raises(ConfigurationError):
            Machine(IdealManager(), MachineConfig(num_cores=4, topology=CoreTopology.homogeneous(2)))


class TestKeepScheduleCollection:
    def test_keep_schedule_false_allocates_no_timeline(self, monkeypatch, independent_trace):
        """With keep_schedule=False the machine must not collect at all."""
        import repro.system.machine as machine_module

        def forbidden(*args, **kwargs):
            raise AssertionError("TaskTimeline allocated despite keep_schedule=False")

        monkeypatch.setattr(machine_module, "TaskTimeline", forbidden)
        result = simulate(independent_trace, IdealManager(), 2, keep_schedule=False)
        assert result.start_times == {}
        assert result.task_cores == {}
        assert result.makespan_us > 0

    def test_validate_forces_collection_even_without_keep(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 2,
                          keep_schedule=False, validate=True)
        # Validation ran (would raise on violation) but the result stays lean.
        assert result.start_times == {}

    def test_keep_schedule_false_matches_kept_makespan(self, random_dag_trace):
        kept = simulate(random_dag_trace, IdealManager(), 4, keep_schedule=True)
        lean = simulate(random_dag_trace, IdealManager(), 4, keep_schedule=False)
        assert lean.makespan_us == kept.makespan_us
        assert lean.core_busy_us == kept.core_busy_us


class TestHardwareManagersOnMachine:
    @pytest.mark.parametrize("num_tg", [1, 4, 6])
    def test_nexus_sharp_executes_fork_join(self, fork_join_trace, num_tg):
        manager = NexusSharpManager(NexusSharpConfig(num_task_graphs=num_tg, frequency_mhz=100.0))
        result = simulate(fork_join_trace, manager, 4, validate=True)
        assert result.num_tasks == fork_join_trace.num_tasks
        assert result.makespan_us > 0

    def test_manager_overhead_slows_execution_down(self, independent_trace):
        ideal = simulate(independent_trace, IdealManager(), 4)
        hardware = simulate(independent_trace, NexusPlusPlusManager(), 4)
        assert hardware.makespan_us >= ideal.makespan_us

    def test_worker_overhead_added_to_execution(self):
        from repro.managers.nanos import NanosManager

        trace = generate_independent(4, duration_us=10.0, seed=0)
        manager = NanosManager()
        result = simulate(trace, manager, 1, validate=True)
        expected_work = 4 * (10.0 + manager.worker_overhead_us)
        assert result.makespan_us >= expected_work - 1e-6


class TestResultMetrics:
    def test_core_utilization_bounds(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 4)
        assert 0.0 < result.core_utilization <= 1.0

    def test_summary_keys(self, independent_trace):
        summary = simulate(independent_trace, IdealManager(), 2).summary()
        assert {"trace", "manager", "cores", "makespan_ms", "speedup"} <= set(summary)

    def test_keep_schedule_false_drops_schedules(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 2, keep_schedule=False)
        assert result.start_times == {}
        assert result.makespan_us > 0

    def test_latency_metrics_non_negative(self, fork_join_trace):
        result = simulate(fork_join_trace, NexusPlusPlusManager(), 2)
        assert result.mean_ready_latency_us >= 0.0
        assert result.mean_queue_latency_us >= 0.0

    def test_invalid_core_count(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_cores=0)

    def test_machine_reusable_across_traces(self):
        machine = Machine(IdealManager(), MachineConfig(num_cores=2))
        first = machine.run(generate_independent(6, seed=1))
        second = machine.run(generate_chain(6, seed=1))
        assert first.num_tasks == 6 and second.num_tasks == 6


class TestDeterminism:
    def test_same_inputs_same_makespan(self, random_dag_trace):
        manager_a = NexusSharpManager(NexusSharpConfig(num_task_graphs=4, frequency_mhz=100.0))
        manager_b = NexusSharpManager(NexusSharpConfig(num_task_graphs=4, frequency_mhz=100.0))
        first = simulate(random_dag_trace, manager_a, 8)
        second = simulate(random_dag_trace, manager_b, 8)
        assert first.makespan_us == pytest.approx(second.makespan_us)
