"""sparselu: sparse LU factorisation workload (OmpSs developers' kernel).

Section V-A: "sparselu is a sparse matrix LU factorization kernel from
the developers of OmpSs.  It scales well, as the granularity is designed
to match Nanos overheads."  Table II: 54814 tasks, 38128 ms of work,
696 µs average task size, 1-3 dependencies per task.

The kernel factorises an ``NB x NB`` blocked matrix where only a subset
of blocks is populated (hence *sparse*).  Per outer iteration ``k`` the
classic four task types are generated:

* ``lu0(A[k][k])`` — factorise the diagonal block (``inout``);
* ``fwd(A[k][k], A[k][j])`` — forward elimination of row-panel blocks;
* ``bdiv(A[k][k], A[i][k])`` — backward division of column-panel blocks;
* ``bmod(A[i][k], A[k][j], A[i][j])`` — trailing-matrix update, which
  allocates the block if it was previously empty (fill-in).

This reproduces the 1-3 parameter range of Table II and the diminishing
wave-parallelism toward the end of the factorisation.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.trace.events import TraceEvent
from repro.trace.stream import EventEmitter, TraceStream, materialize
from repro.trace.trace import Trace
from repro.workloads.addressing import AddressSpace

#: Paper values (Table II).
PAPER_NUM_TASKS = 54814
PAPER_AVG_TASK_US = 696.0

#: Default blocked-matrix size chosen so the dense task count is close to
#: the paper's 54814 tasks at the default sparsity.
DEFAULT_NUM_BLOCKS = 56
#: Default fraction of off-diagonal blocks that are populated initially.
DEFAULT_DENSITY = 0.85


def stream_sparselu(
    scale: float = 1.0,
    seed: Optional[int] = None,
    *,
    num_blocks: Optional[int] = None,
    density: float = DEFAULT_DENSITY,
    avg_task_us: float = PAPER_AVG_TASK_US,
    duration_cv: float = 0.20,
) -> TraceStream:
    """Stream a sparselu trace (see :func:`generate_sparselu`).

    Live generator state is the O(NB²) block map — tiny next to the
    O(NB³) task count, so big factorisations stream without holding
    their tasks in memory.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    if not 0.0 < density <= 1.0:
        raise ConfigurationError(f"density must be in (0, 1], got {density}")
    if num_blocks is None:
        num_blocks = max(2, round(DEFAULT_NUM_BLOCKS * scale ** (1.0 / 3.0)))
    if num_blocks < 2:
        raise ConfigurationError(f"num_blocks must be >= 2, got {num_blocks}")
    nb = num_blocks

    def events() -> Iterator[TraceEvent]:
        rng = make_rng(seed, "sparselu")
        space = AddressSpace(seed=seed)
        emit = EventEmitter()

        # Populated-block map; diagonal blocks always exist.
        populated = rng.random((nb, nb)) < density
        np.fill_diagonal(populated, True)
        block_addresses = space.alloc_grid(nb, nb)

        # Duration model: bmod dominates the task count, so anchor the mean
        # on it and make lu0 heavier (it factorises a full block).
        lu0_us = avg_task_us * 2.0
        panel_us = avg_task_us * 0.9
        bmod_us = avg_task_us * 1.0

        def jittered(mean: float) -> float:
            return float(max(mean * 0.1, rng.normal(mean, mean * duration_cv)))

        for k in range(nb):
            diag = int(block_addresses[k, k])
            yield emit.task("lu0", duration_us=jittered(lu0_us), inouts=[diag])
            for j in range(k + 1, nb):
                if populated[k, j]:
                    yield emit.task(
                        "fwd",
                        duration_us=jittered(panel_us),
                        inputs=[diag],
                        inouts=[int(block_addresses[k, j])],
                    )
            for i in range(k + 1, nb):
                if populated[i, k]:
                    yield emit.task(
                        "bdiv",
                        duration_us=jittered(panel_us),
                        inputs=[diag],
                        inouts=[int(block_addresses[i, k])],
                    )
            for i in range(k + 1, nb):
                if not populated[i, k]:
                    continue
                for j in range(k + 1, nb):
                    if not populated[k, j]:
                        continue
                    # Fill-in: the target block becomes populated if it was not.
                    populated[i, j] = True
                    yield emit.task(
                        "bmod",
                        duration_us=jittered(bmod_us),
                        inputs=[int(block_addresses[i, k]), int(block_addresses[k, j])],
                        inouts=[int(block_addresses[i, j])],
                    )
        yield emit.taskwait()

    return TraceStream(
        "sparselu",
        events,
        metadata={
            "suite": "OmpSs examples",
            "num_blocks": nb,
            "density": density,
            "avg_task_us": avg_task_us,
            "scale": scale,
        },
    )


def generate_sparselu(
    scale: float = 1.0,
    seed: Optional[int] = None,
    *,
    num_blocks: Optional[int] = None,
    density: float = DEFAULT_DENSITY,
    avg_task_us: float = PAPER_AVG_TASK_US,
    duration_cv: float = 0.20,
) -> Trace:
    """Generate a sparselu trace.

    Parameters
    ----------
    scale:
        Scales the matrix size; the task count grows roughly with the
        cube of ``num_blocks``, so ``num_blocks`` is scaled by the cube
        root of ``scale``.
    seed:
        Seed for the sparsity pattern and duration jitter.
    num_blocks:
        Blocked-matrix dimension NB (overrides ``scale``).
    density:
        Probability that an off-diagonal block is initially populated.
    avg_task_us:
        Target mean task duration; the three task types get durations in
        the ratio lu0 : fwd/bdiv : bmod = 2 : 1 : 1.2 around this mean.
    duration_cv:
        Coefficient of variation of task durations.
    """
    return materialize(stream_sparselu(
        scale, seed,
        num_blocks=num_blocks, density=density,
        avg_task_us=avg_task_us, duration_cv=duration_cv))
