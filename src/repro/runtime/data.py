"""Data handles for the OmpSs-like front-end.

A :class:`DataHandle` stands for one task-visible datum (a matrix block,
an image line, a reduction variable): it owns a synthetic 48-bit address
that the recorded tasks reference.  :class:`DataMatrix` is a convenience
2-D collection of handles mirroring the ``MB_type* X[W][H]`` matrix of
the paper's Listing 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class DataHandle:
    """A named, addressable piece of task data."""

    name: str
    address: int
    size: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ConfigurationError(f"address of {self.name!r} must be >= 0, got {self.address}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}@{self.address:#x}"


class DataMatrix:
    """A 2-D grid of :class:`DataHandle` objects (row-major)."""

    def __init__(self, name: str, handles: Sequence[Sequence[DataHandle]]) -> None:
        if not handles or not handles[0]:
            raise ConfigurationError(f"matrix {name!r} must have at least one element")
        width = len(handles[0])
        for row in handles:
            if len(row) != width:
                raise ConfigurationError(f"matrix {name!r} rows have inconsistent lengths")
        self.name = name
        self._handles: List[List[DataHandle]] = [list(row) for row in handles]

    @property
    def rows(self) -> int:
        return len(self._handles)

    @property
    def cols(self) -> int:
        return len(self._handles[0])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    def __getitem__(self, index: int) -> List[DataHandle]:
        return self._handles[index]

    def at(self, row: int, col: int) -> Optional[DataHandle]:
        """Bounds-checked access returning ``None`` outside the matrix.

        Mirrors how the wavefront example passes ``X[i][j-1]`` at the
        borders: out-of-range neighbours simply contribute no dependency.
        """
        if 0 <= row < self.rows and 0 <= col < self.cols:
            return self._handles[row][col]
        return None

    def __iter__(self) -> Iterator[List[DataHandle]]:
        return iter(self._handles)
