"""Analytical FPGA resource/frequency model calibrated on Table I.

Table I of the paper (ZC706 board, totals 437200 registers, 218600 LUTs,
545 block RAMs):

======================  =========  ======  ==========  ================  ===========
Configuration           Registers  LUTs    Block RAMs  Max (Test) MHz    Total Util.
======================  =========  ======  ==========  ================  ===========
Nexus++                 1 %        7 %     14 %        114.44 (100.00)   7 %
Nexus#  1 TG            1 %        8 %     13 %        112.63 (100.00)   7 %
Nexus#  2 TGs           2 %        15 %    25 %        112.63 (100.00)   15 %
Nexus#  4 TGs           3 %        29 %    47 %        85.26  (83.33)    29 %
Nexus#  6 TGs           4 %        44 %    69 %        55.66  (55.56)    44 %
Nexus#  8 TGs           4 %        58 %    91 %        43.53  (41.66)    58 %
======================  =========  ======  ==========  ================  ===========

The paper also quotes absolute register/LUT counts for the 8-TG design
(19,350 registers / 127,290 LUTs), which pin down the percentages.

The model below reproduces the table's rows exactly for the synthesised
configurations and interpolates/extrapolates smoothly for the others
(3, 5, 7, ... task graphs), which the ablation benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.common.errors import ConfigurationError
from repro.nexus.timing import (
    NEXUS_PP_MAX_FREQUENCY_MHZ,
    NEXUS_PP_TEST_FREQUENCY_MHZ,
    NEXUS_SHARP_MAX_FREQUENCIES_MHZ,
    NEXUS_SHARP_TEST_FREQUENCIES_MHZ,
    synthesis_frequency_mhz,
)


@dataclass(frozen=True)
class DeviceCapacity:
    """Total resources of the target FPGA device."""

    name: str
    registers: int
    luts: int
    block_rams: int


#: The Xilinx ZYNQ-7 ZC706 evaluation board used in the paper.
ZC706_DEVICE = DeviceCapacity(name="ZC706", registers=437200, luts=218600, block_rams=545)


@dataclass(frozen=True)
class ResourceEstimate:
    """Resource usage and frequency of one design configuration."""

    configuration: str
    num_task_graphs: int
    registers: int
    luts: int
    block_rams: int
    max_frequency_mhz: float
    test_frequency_mhz: float
    device: DeviceCapacity = ZC706_DEVICE

    @property
    def register_pct(self) -> float:
        return 100.0 * self.registers / self.device.registers

    @property
    def lut_pct(self) -> float:
        return 100.0 * self.luts / self.device.luts

    @property
    def block_ram_pct(self) -> float:
        return 100.0 * self.block_rams / self.device.block_rams

    @property
    def total_utilization_pct(self) -> float:
        """The paper's "Total Util." column tracks the LUT percentage."""
        return self.lut_pct

    @property
    def area_fraction(self) -> float:
        """Device fraction consumed (LUT-dominated, Table I's Total Util.).

        The denominator of the tuner's area-normalised objective: a design
        twice as fast that burns four times the fabric scores lower.
        """
        return self.total_utilization_pct / 100.0

    @property
    def fits(self) -> bool:
        """True when the configuration fits on the device."""
        return (
            self.registers <= self.device.registers
            and self.luts <= self.device.luts
            and self.block_rams <= self.device.block_rams
        )

    def as_table_row(self) -> tuple:
        """Row formatted like Table I (percentages rounded like the paper)."""
        return (
            self.configuration,
            round(self.register_pct),
            round(self.lut_pct),
            round(self.block_ram_pct),
            round(self.max_frequency_mhz, 2),
            round(self.test_frequency_mhz, 2),
            round(self.total_utilization_pct),
        )


# -- calibration constants ------------------------------------------------------
# Per-task-graph costs derived from Table I: the 8-TG design uses 19,350
# registers and 127,290 LUTs; block RAMs grow by ~14 % of the device
# (≈ 76 BRAMs) per pair of task graphs added; the Input Parser and the
# arbiter contribute a fixed base plus a per-TG term.
_SHARP_REG_BASE = 3_000
_SHARP_REG_PER_TG = 2_051           # ≈ (19350 - base) / 8, nudged so every
                                    # register row of Table I rounds exactly
_SHARP_LUT_BASE = 3_500
_SHARP_LUT_PER_TG = 14_874          # task-graph state machines
_SHARP_LUT_ARBITER_PER_TG2 = 75     # arbiter fan-in grows super-linearly
_SHARP_BRAM_BASE = 10
_SHARP_BRAM_PER_TG = 61             # tables of one task graph

_PP_REGISTERS = 4_400               # ≈ 1 % of the ZC706
_PP_LUTS = 15_300                   # ≈ 7 %
_PP_BRAMS = 76                      # ≈ 14 %


def estimate_nexus_pp() -> ResourceEstimate:
    """Resource estimate of the Nexus++ baseline on the ZC706."""
    return ResourceEstimate(
        configuration="Nexus++",
        num_task_graphs=1,
        registers=_PP_REGISTERS,
        luts=_PP_LUTS,
        block_rams=_PP_BRAMS,
        max_frequency_mhz=NEXUS_PP_MAX_FREQUENCY_MHZ,
        test_frequency_mhz=NEXUS_PP_TEST_FREQUENCY_MHZ,
    )


def estimate_nexus_sharp(num_task_graphs: int) -> ResourceEstimate:
    """Resource estimate of a Nexus# configuration on the ZC706."""
    if num_task_graphs < 1:
        raise ConfigurationError(f"num_task_graphs must be >= 1, got {num_task_graphs}")
    n = num_task_graphs
    registers = _SHARP_REG_BASE + _SHARP_REG_PER_TG * n
    luts = _SHARP_LUT_BASE + _SHARP_LUT_PER_TG * n + _SHARP_LUT_ARBITER_PER_TG2 * n * n
    brams = _SHARP_BRAM_BASE + _SHARP_BRAM_PER_TG * n
    return ResourceEstimate(
        configuration=f"Nexus# {n} TG" + ("s" if n > 1 else ""),
        num_task_graphs=n,
        registers=registers,
        luts=luts,
        block_rams=brams,
        max_frequency_mhz=synthesis_frequency_mhz(n, use_max=True),
        test_frequency_mhz=synthesis_frequency_mhz(n, use_max=False),
    )


def estimate_for_manager(doc: Mapping[str, object]) -> Optional[ResourceEstimate]:
    """Resource estimate for a manager ``describe()`` document.

    The bridge between the experiment layer's manager factories and this
    model, used by the tuner's area-normalised objective: hardware
    managers (``kind`` of ``"nexus#"`` / ``"nexus++"``) map onto the
    Table I calibration; software and ideal managers occupy no fabric
    and return ``None`` (the objective is undefined for them).
    """
    kind = doc.get("kind")
    if kind == "nexus#":
        return estimate_nexus_sharp(int(doc.get("num_task_graphs", 6)))
    if kind == "nexus++":
        return estimate_nexus_pp()
    return None


def table1(task_graph_counts: tuple[int, ...] = (1, 2, 4, 6, 8)) -> List[ResourceEstimate]:
    """Regenerate Table I: Nexus++ plus Nexus# at the given TG counts."""
    rows: List[ResourceEstimate] = [estimate_nexus_pp()]
    rows.extend(estimate_nexus_sharp(n) for n in task_graph_counts)
    return rows


def paper_table1_rows() -> Dict[str, Dict[str, float]]:
    """The paper's Table I values, keyed by configuration name.

    Used by the benchmark harness to print paper-vs-model side by side and
    by the tests that pin the calibration.
    """
    return {
        "Nexus++": {"registers_pct": 1, "luts_pct": 7, "brams_pct": 14, "max_mhz": 114.44, "test_mhz": 100.00},
        "Nexus# 1 TG": {"registers_pct": 1, "luts_pct": 8, "brams_pct": 13, "max_mhz": 112.63, "test_mhz": 100.00},
        "Nexus# 2 TGs": {"registers_pct": 2, "luts_pct": 15, "brams_pct": 25, "max_mhz": 112.63, "test_mhz": 100.00},
        "Nexus# 4 TGs": {"registers_pct": 3, "luts_pct": 29, "brams_pct": 47, "max_mhz": 85.26, "test_mhz": 83.33},
        "Nexus# 6 TGs": {"registers_pct": 4, "luts_pct": 44, "brams_pct": 69, "max_mhz": 55.66, "test_mhz": 55.56},
        "Nexus# 8 TGs": {"registers_pct": 4, "luts_pct": 58, "brams_pct": 91, "max_mhz": 43.53, "test_mhz": 41.66},
    }
