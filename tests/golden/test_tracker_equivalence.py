"""Golden equivalence of the compiled dependence-resolution engine.

Replays every committed golden trace through three dependency engines:

* the **frozen legacy tracker** (``benchmarks/_legacy_depres.py``) — the
  access-by-access engine as it stood before the compiled engine landed;
* the live tracker on its **dynamic path** (no bound program);
* the live tracker on its **compiled path** (bound access program).

and asserts that the ``InsertResult`` / ``FinishResult`` sequences are
*identical* — every access record (address, mode, table index, must-wait,
set-conflict), every dependence count, every kick-off list and the
ready order — under central and distributed table configurations,
including a deliberately tiny geometry that forces set conflicts and
dummy-entry chaining.

Finish order is the FIFO ready order (tasks retire in the order they
become ready), which exercises the same interleaving the machine loop
produces under the default scheduler.
"""

from __future__ import annotations

import sys
from collections import deque
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _legacy_depres import LegacyAddressTable, LegacyDependencyTracker  # noqa: E402

from repro.nexus.distribution import nexus_hash  # noqa: E402
from repro.taskgraph.table import AddressTable  # noqa: E402
from repro.taskgraph.tracker import DependencyTracker  # noqa: E402
from repro.trace.serialization import load_trace  # noqa: E402

DATA_DIR = Path(__file__).parent / "data"
TRACE_KEYS = sorted(path.name.split(".")[0] for path in DATA_DIR.glob("*.json.gz"))

#: (id, num_tables, table-geometry kwargs) — the tracker configurations of
#: the golden managers (central = ideal/nanos/nexus++, distributed =
#: nexus# at several task-graph counts) plus a conflict-stress geometry.
CONFIGS = {
    "central": (1, {}),
    "nexus2": (2, {}),
    "nexus6": (6, {}),
    "nexus8": (8, {}),
    "tiny-conflicts": (3, {"num_sets": 4, "ways": 1, "kickoff_capacity": 2}),
}


def _distribute_for(num_tables):
    if num_tables == 1:
        return None
    return lambda address: nexus_hash(address, num_tables)


def _replay(tracker, trace):
    """Insert in submission order, finish in FIFO ready order; log results.

    The log normalises both engines' result records to plain tuples so
    the legacy and live NamedTuple types compare by value.
    """
    log = []
    ready = deque()
    for task in trace.tasks():
        result = tracker.insert_task(task)
        conflicts = sum(1 for a in result.accesses if a.set_conflict)
        # The live engine precounts conflicts; assert the shortcut agrees
        # with the per-access records it summarises.
        shortcut = getattr(result, "num_set_conflicts", conflicts)
        assert shortcut == conflicts
        log.append((
            "insert",
            result.task_id,
            tuple(
                (a.address, a.mode, a.table_index, a.must_wait, a.set_conflict)
                for a in result.accesses
            ),
            result.dependence_count,
            result.ready,
            result.pool_was_full,
            conflicts,
        ))
        if result.ready:
            ready.append(result.task_id)
    while ready:
        task_id = ready.popleft()
        result = tracker.finish_task(task_id)
        kickoffs = sum(len(a.kicked_off) for a in result.accesses)
        assert result.num_kickoffs == kickoffs
        log.append((
            "finish",
            result.task_id,
            tuple((a.address, a.table_index, a.kicked_off) for a in result.accesses),
            result.newly_ready,
            kickoffs,
        ))
        ready.extend(result.newly_ready)
    return log


def _legacy_log(trace, num_tables, geometry):
    tracker = LegacyDependencyTracker(
        num_tables=num_tables,
        distribute=_distribute_for(num_tables),
        table_factory=lambda i: LegacyAddressTable(name=f"TG{i}", **geometry),
    )
    return _replay(tracker, trace)


def _live_tracker(num_tables, geometry):
    return DependencyTracker(
        num_tables=num_tables,
        distribute=_distribute_for(num_tables),
        table_factory=lambda i: AddressTable(name=f"TG{i}", **geometry),
        distribution_key=("equivalence", num_tables),
    )


@pytest.mark.parametrize("config_key", sorted(CONFIGS))
@pytest.mark.parametrize("trace_key", TRACE_KEYS)
def test_compiled_engine_matches_frozen_tracker(trace_key, config_key):
    trace = load_trace(DATA_DIR / f"{trace_key}.json.gz")
    num_tables, geometry = CONFIGS[config_key]
    expected = _legacy_log(trace, num_tables, geometry)

    compiled = _live_tracker(num_tables, geometry)
    compiled.bind_program(trace.access_program())
    assert _replay(compiled, trace) == expected, (
        f"compiled path diverged from the frozen tracker on {trace_key}/{config_key}"
    )


@pytest.mark.parametrize("config_key", sorted(CONFIGS))
@pytest.mark.parametrize("trace_key", TRACE_KEYS)
def test_dynamic_path_matches_frozen_tracker(trace_key, config_key):
    trace = load_trace(DATA_DIR / f"{trace_key}.json.gz")
    num_tables, geometry = CONFIGS[config_key]
    expected = _legacy_log(trace, num_tables, geometry)

    dynamic = _live_tracker(num_tables, geometry)
    assert _replay(dynamic, trace) == expected, (
        f"dynamic path diverged from the frozen tracker on {trace_key}/{config_key}"
    )


@pytest.mark.parametrize("trace_key", TRACE_KEYS)
def test_rebinding_after_reset_is_stable(trace_key):
    """Re-running a bound tracker (reset + rebind, recycling cells) is
    byte-stable — the free-list recycling must not leak state."""
    trace = load_trace(DATA_DIR / f"{trace_key}.json.gz")
    tracker = _live_tracker(6, {})
    program = trace.access_program()
    tracker.bind_program(program)
    first = _replay(tracker, trace)
    tracker.reset()
    tracker.bind_program(program)
    second = _replay(tracker, trace)
    assert first == second


def test_table_stats_match_between_paths():
    """Structural accounting (conflicts, insertions, evictions, dummies,
    peak live entries) agrees between compiled, dynamic and frozen paths."""
    trace = load_trace(DATA_DIR / f"{TRACE_KEYS[0]}.json.gz")
    num_tables, geometry = CONFIGS["tiny-conflicts"]

    legacy = LegacyDependencyTracker(
        num_tables=num_tables,
        distribute=_distribute_for(num_tables),
        table_factory=lambda i: LegacyAddressTable(name=f"TG{i}", **geometry),
    )
    _replay(legacy, trace)

    for bind in (False, True):
        live = _live_tracker(num_tables, geometry)
        if bind:
            live.bind_program(trace.access_program())
        _replay(live, trace)
        for legacy_table, live_table in zip(legacy.tables, live.tables):
            for field in ("lookups", "insertions", "evictions", "set_conflicts",
                          "dummy_entries_peak", "max_live_entries"):
                assert getattr(live_table.stats, field) == getattr(legacy_table.stats, field), (
                    f"stats field {field} diverged (bound={bind}) on {live_table.name}"
                )
