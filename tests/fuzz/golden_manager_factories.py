"""The four golden manager configurations, as fresh-instance factories.

Mirrors ``tests/golden/golden_config.GOLDEN_MANAGERS`` (same paper
configurations) without importing across test directories.
"""

from __future__ import annotations

from repro.analysis.factories import (
    ideal_factory,
    nanos_factory,
    nexus_pp_factory,
    nexus_sharp_factory,
)

GOLDEN_TEST_MANAGERS = {
    "ideal": ideal_factory(),
    "nanos": nanos_factory(),
    "nexuspp": nexus_pp_factory(),
    "nexussharp": nexus_sharp_factory(6),
}
