"""Dynamic task programs: tasks that spawn tasks while the machine runs.

Everything the repro could express before this module is a *static*
program: every task is known before the first one is submitted, which is
the regime of a pre-recorded trace.  The paper's hardware task managers,
however, serve an OmpSs runtime in which tasks arrive *at runtime* —
including tasks created by other tasks (nested parallelism) — and the
master as well as any running task may execute a ``taskwait``.  This
module defines that insert-while-running regime:

* a :class:`DynamicProgram` is a replayable description of a dynamic
  run: a *master generator* (the master thread's program) plus, per
  spawned task, an optional *body generator* (the task's program).
* generators ``yield`` :class:`Compute` / :class:`Spawn` /
  :class:`Taskwait` ops (the master may additionally yield
  :class:`TaskwaitOn`), and receive responses through ``gen.send``:
  the current simulation time for :class:`Compute` / :class:`Taskwait`,
  the spawned child's task id for :class:`Spawn`.
* a :class:`TaskRequest` names the task to spawn — function, parameter
  list, execution time, and (for non-leaf tasks) the body factory.

Determinism contract
--------------------

Task ids are assigned in **submission order**, which depends on how the
run interleaves (and therefore differs across managers, core counts and
replay paths).  A program's *structure* must not: generators may route a
received child id into a later op's bookkeeping, but must never let ids
or times decide *which* tasks get spawned or which addresses they touch.
All the shipped dynamic workloads derive every decision from their seed
and their position in the spawn tree, which is what makes
``Machine.run`` and ``Machine.run_stream`` byte-identical on them.

Deadlock-freedom contract
-------------------------

A task must not access an address that one of its *ancestors* holds: the
ancestor releases its addresses only when it finishes, the descendant's
insertion waits on the address, and the ancestor's ``taskwait`` waits on
the descendant — a cycle.  Address sharing between *siblings* (tasks
spawned by the same parent) or with already-joined subtrees is safe:
address waits always point backwards in insertion order, so they cannot
close a cycle on their own.  The shipped generators and the fuzzer obey
this rule by construction.

Serial elaboration
------------------

Every dynamic program has a canonical *serial elaboration*: execute each
spawned task's body to completion immediately (depth-first), exactly
like running the program on one core with an OmpSs "serial" flag.
:meth:`DynamicProgram.iter_events` yields that elaboration as ordinary
trace events (:class:`~repro.trace.events.SpawnEvent` submissions plus
the master's barriers), so a :class:`DynamicProgram` satisfies the
:class:`~repro.trace.stream.TaskStream` protocol — it can be
materialised, serialised, diffed and replayed through the *static*
machine like any other trace.  The golden harness pins both the
elaboration and the dynamic-run makespans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Iterator, Mapping, Optional, Sequence, Union

from repro.common.errors import TraceError
from repro.trace.events import SpawnEvent, TaskwaitEvent, TaskwaitOnEvent, TraceEvent
from repro.trace.task import Parameter, TaskDescriptor, make_params
from repro.trace.trace import Trace


class Compute:
    """Occupy the executing core for ``duration_us`` of task body work."""

    __slots__ = ("duration_us",)

    def __init__(self, duration_us: float) -> None:
        if duration_us < 0:
            raise TraceError(f"compute duration must be >= 0, got {duration_us}")
        self.duration_us = float(duration_us)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Compute({self.duration_us})"


class Spawn:
    """Submit a child task described by ``request`` to the manager.

    The generator receives the child's assigned task id as the value of
    the ``yield`` expression.
    """

    __slots__ = ("request",)

    def __init__(self, request: "TaskRequest") -> None:
        if not isinstance(request, TaskRequest):
            raise TraceError(f"Spawn expects a TaskRequest, got {request!r}")
        self.request = request

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Spawn({self.request.function!r})"


class Taskwait:
    """Block until outstanding work drains.

    Yielded by a *task body*: wait until all children this task spawned
    so far have finished (the task suspends; see
    :mod:`repro.system.dynamic` for what happens to its core).  Yielded
    by the *master*: wait until **all** in-flight tasks have finished —
    the paper's full ``taskwait`` barrier, identical to a static
    :class:`~repro.trace.events.TaskwaitEvent`.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Taskwait()"


class TaskwaitOn:
    """Master-only: block until the last writer of ``address`` finishes.

    Mirrors the static :class:`~repro.trace.events.TaskwaitOnEvent`,
    including the Nexus++ degradation to a full ``taskwait`` when the
    manager does not support the pragma.
    """

    __slots__ = ("address",)

    def __init__(self, address: int) -> None:
        self.address = address

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskwaitOn({self.address:#x})"


#: What a master / body generator may yield.
DynamicOp = Union[Compute, Spawn, Taskwait, TaskwaitOn]

#: A body factory: zero-argument callable returning a fresh generator of
#: ops.  Factories are invoked once per task execution, so replays are
#: deterministic as long as the factory is.
BodyFactory = Callable[[], Generator[DynamicOp, object, None]]


@dataclass(frozen=True)
class TaskRequest:
    """Blueprint of one task to be spawned at runtime.

    ``duration_us`` is the task's total declared compute time: for a leaf
    (``body is None``) the machine executes it as one block, exactly like
    a static task; for a task with a body it must equal the sum of the
    body's :class:`Compute` durations (scheduler policies and work
    accounting read the declared value, the machine times the body ops).
    """

    function: str
    duration_us: float
    params: tuple[Parameter, ...] = ()
    body: Optional[BodyFactory] = None
    creation_overhead_us: float = 0.0

    def __post_init__(self) -> None:
        if not self.function:
            raise TraceError("task function name must be non-empty")
        if self.duration_us < 0:
            raise TraceError(f"duration_us must be >= 0, got {self.duration_us}")
        if self.creation_overhead_us < 0:
            raise TraceError(
                f"creation_overhead_us must be >= 0, got {self.creation_overhead_us}"
            )
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", tuple(self.params))

    def descriptor(self, task_id: int) -> TaskDescriptor:
        """Instantiate the request as a task with the given id."""
        return TaskDescriptor(
            task_id=task_id,
            function=self.function,
            params=self.params,
            duration_us=self.duration_us,
            creation_overhead_us=self.creation_overhead_us,
        )


def task_request(
    function: str,
    duration_us: float,
    *,
    inputs: Sequence[int] = (),
    outputs: Sequence[int] = (),
    inouts: Sequence[int] = (),
    params: Optional[Sequence[Parameter]] = None,
    body: Optional[BodyFactory] = None,
    creation_overhead_us: float = 0.0,
) -> TaskRequest:
    """Convenience constructor mirroring ``TraceBuilder.add_task``."""
    if params is not None and (inputs or outputs or inouts):
        raise TraceError("pass either params or inputs/outputs/inouts, not both")
    if params is None:
        params = make_params(inputs=inputs, outputs=outputs, inouts=inouts)
    return TaskRequest(
        function=function,
        duration_us=duration_us,
        params=tuple(params),
        body=body,
        creation_overhead_us=creation_overhead_us,
    )


class DynamicProgram:
    """A replayable dynamic task program.

    Parameters
    ----------
    name:
        Workload name (non-empty, like a trace's).
    master_factory:
        Zero-argument callable returning a *fresh* master generator.
        Each run (and each elaboration) invokes it again, so a program
        replays deterministically as long as the factory does.
    metadata:
        Free-form generator parameters (depth, seed, fan-out, ...).

    Example
    -------
    >>> from repro.trace.dynamic import (
    ...     Compute, DynamicProgram, Spawn, Taskwait, task_request)
    >>> def child(addr):
    ...     def body():
    ...         yield Compute(5.0)
    ...     return task_request("child", 5.0, outputs=[addr], body=body)
    >>> def master():
    ...     yield Spawn(child(0x1000))
    ...     yield Spawn(child(0x1040))
    ...     yield Taskwait()
    >>> program = DynamicProgram("two-children", master)
    >>> trace = program.elaborate()
    >>> trace.num_tasks, trace.num_barriers
    (2, 1)
    """

    __slots__ = ("name", "metadata", "_master_factory")

    def __init__(
        self,
        name: str,
        master_factory: Callable[[], Generator[DynamicOp, object, None]],
        metadata: Optional[Mapping[str, object]] = None,
    ) -> None:
        if not name:
            raise TraceError("dynamic program name must be non-empty")
        self.name = name
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._master_factory = master_factory

    def master(self) -> Generator[DynamicOp, object, None]:
        """Start a fresh replay of the master thread's program."""
        return self._master_factory()

    # -- serial elaboration -------------------------------------------------
    def iter_events(self) -> Iterator[TraceEvent]:
        """Yield the program's serial (depth-first) elaboration.

        Satisfies the :class:`~repro.trace.stream.TaskStream` protocol:
        every spawned task's body runs to completion immediately, so
        spawns appear in depth-first order, body ``Taskwait`` ops are
        no-ops, and master barriers become ordinary barrier events.
        ``Compute`` / ``Taskwait`` responses are ``0.0`` during
        elaboration (programs must not let times shape their structure).
        """
        counter = _IdCounter()
        yield from _elaborate(self.master(), parent_id=None, counter=counter,
                              master=True, name=self.name)

    def __iter__(self) -> Iterator[TraceEvent]:
        return self.iter_events()

    def elaborate(self, name: Optional[str] = None) -> Trace:
        """Materialise the serial elaboration as a static trace.

        Identical to ``materialize(self)`` (same events, same metadata),
        so digests agree regardless of which bridge a caller used.
        """
        return Trace(
            name=name or self.name,
            events=tuple(self.iter_events()),
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DynamicProgram {self.name!r}>"


class _IdCounter:
    __slots__ = ("next_id",)

    def __init__(self) -> None:
        self.next_id = 0

    def take(self) -> int:
        value = self.next_id
        self.next_id = value + 1
        return value


def _elaborate(
    gen: Generator[DynamicOp, object, None],
    parent_id: Optional[int],
    counter: _IdCounter,
    master: bool,
    name: str,
) -> Iterator[TraceEvent]:
    """Depth-first elaboration of one generator (master or task body)."""
    # send(None) starts the generator; every later send delivers the
    # response of the op that was just performed.
    response: object = None
    while True:
        try:
            op = gen.send(response)
        except StopIteration:
            return
        if isinstance(op, Spawn):
            task_id = counter.take()
            task = op.request.descriptor(task_id)
            yield SpawnEvent(task, parent_id=parent_id)
            body = op.request.body
            if body is not None:
                yield from _elaborate(body(), parent_id=task_id, counter=counter,
                                      master=False, name=name)
            response = task_id
        elif isinstance(op, Compute):
            response = 0.0
        elif isinstance(op, Taskwait):
            if master:
                yield TaskwaitEvent()
            response = 0.0
        elif isinstance(op, TaskwaitOn):
            if not master:
                raise TraceError(
                    f"{name}: TaskwaitOn is a master-only op (task bodies "
                    "join their children with Taskwait)"
                )
            yield TaskwaitOnEvent(address=op.address)
            response = 0.0
        else:
            raise TraceError(f"{name}: unknown dynamic op {op!r}")


def is_dynamic_program(source: object) -> bool:
    """True when ``source`` is a :class:`DynamicProgram`."""
    return isinstance(source, DynamicProgram)
