"""Circuit breaker: trip to a fallback after consecutive failures.

Used by the serving batcher's fabric backend: after ``failure_threshold``
consecutive fabric failures the breaker *opens* and blocks run on the
local executor instead (no worker fleets spawned against a broken
fabric); after ``cooldown`` seconds one *half-open* probe is allowed
through — success closes the breaker, failure re-opens it for another
cooldown.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.common.errors import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe.

    Not thread-safe by design: every user so far mutates it from one
    event loop / one lock domain.  The clock is injectable so tests can
    drive the cooldown deterministically.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown <= 0:
            raise ConfigurationError(f"cooldown must be positive, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        #: Counters for stats surfaces.
        self.trips = 0
        self.failures = 0
        self.successes = 0

    # -- state -------------------------------------------------------------
    @property
    def state(self) -> str:
        if self._opened_at is None:
            return CLOSED
        if self._clock() - self._opened_at >= self.cooldown:
            return HALF_OPEN
        return OPEN

    def allow(self) -> bool:
        """Whether the protected path may be attempted right now.

        While open, returns ``False``; once the cooldown elapses, the
        *first* caller gets a ``True`` probe (half-open) and everyone
        else keeps getting ``False`` until that probe reports back.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self.successes += 1
        self._consecutive_failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.failures += 1
        self._consecutive_failures += 1
        self._probing = False
        if self._opened_at is not None:
            # A failed half-open probe: re-open for another cooldown.
            self._opened_at = self._clock()
            self.trips += 1
        elif self._consecutive_failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self.trips += 1

    def to_json(self) -> dict:
        return {
            "state": self.state,
            "trips": self.trips,
            "failures": self.failures,
            "successes": self.successes,
        }
