"""Hardware constants used across the Nexus#/Nexus++ models.

The numbers below come straight from the paper (Sections III, IV and
Table I) and from its predecessor publications describing Nexus++.  They
are collected here so that the rest of the code never hard-codes a magic
number.
"""

from __future__ import annotations

#: Width of a task-parameter memory address.  The paper transmits 48-bit
#: addresses over a PCIe-style link, two 32-bit packets per address
#: (Section IV-D).
ADDRESS_BITS: int = 48

#: Mask selecting the valid bits of a parameter address.
ADDRESS_MASK: int = (1 << ADDRESS_BITS) - 1

#: Number of address bits actually used by the distribution function.
#: "for a certain application, the memory addresses it touches differ
#: only in the lower 20 bits" (Section IV-B).
DISTRIBUTION_BITS: int = 20

#: Width of one XOR block in the distribution function (5 bits, enough to
#: address 32 task graphs).
DISTRIBUTION_BLOCK_BITS: int = 5

#: The paper states the hash supports "up to 32" task graphs.
MAX_TASK_GRAPHS: int = 32

#: Nexus# scalability experiments run the manager at a flat 100 MHz
#: (Figure 7a) unless the synthesis frequency of Table I is requested.
DEFAULT_FREQUENCY_MHZ: float = 100.0

#: Granularity of a macroblock in the H.264 workload (16x16 pixels).
H264_MACROBLOCK_PIXELS: int = 16

#: Full-HD frame geometry used by the h264dec traces (1920x1088 as in the
#: paper's Listing 1 discussion).
H264_FRAME_WIDTH: int = 1920
H264_FRAME_HEIGHT: int = 1088

#: Cache-line size assumed when synthesising parameter addresses.  Task
#: parameters in the generated traces are aligned to this many bytes so
#: that distinct objects never share an address.
CACHE_LINE_BYTES: int = 64

#: Default geometry of the set-associative task-graph table.  Nexus++ [7]
#: uses a cache-like structure; 256 sets x 8 ways is the configuration the
#: FPGA prototype synthesises (it fills the block RAMs reported in
#: Table I for the single-task-graph configuration).
DEFAULT_TABLE_SETS: int = 256
DEFAULT_TABLE_WAYS: int = 8

#: Default capacity of the kick-off list attached to every tracked
#: address (number of waiting-task slots before the "dummy entry"
#: chaining described with the Gaussian-elimination workload kicks in).
DEFAULT_KICKOFF_CAPACITY: int = 16

#: Default number of in-flight tasks the task pool can hold.
DEFAULT_TASK_POOL_ENTRIES: int = 1024

#: Worker-core throughput assumed for the Gaussian-elimination
#: micro-benchmark: "Each worker core is assumed to be able to do
#: 2 GFLOPS" (Section VI).
GAUSSIAN_CORE_GFLOPS: float = 2.0

#: Core counts evaluated in the paper's scalability plots.
PAPER_CORE_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Core counts available to the software runtime (the test machine has 40
#: physical cores; the paper plots Nanos only up to 32).
NANOS_MAX_CORES: int = 32
