"""The sweep worker: pull cells over a socket, run them, stream results.

A worker is a small pull-based loop around the existing engine:

1. connect to the scheduler, send ``hello``, receive the ``setup``
   frame (the pickled job table — once per worker, not per cell — plus
   the ``batch_lanes`` setting and the shared cache directory);
2. ask for work (``need_work``) and execute the assigned cells; chunks
   whose cells are lane-compatible advance in lockstep through
   :func:`repro.sim.batch.run_lanes`, everything else runs through the
   scalar :meth:`Machine.run <repro.system.machine.Machine.run>` path —
   exactly like a local sweep, so results are byte-identical;
3. publish every finished cell into the shared content-addressed
   :class:`~repro.experiments.cache.ResultCache` (atomic writes — a
   worker killed mid-publish can never leave a truncated entry) and
   stream the result document back as a ``result`` frame;
4. between cells, drain control frames without blocking: ``revoke``
   (cells stolen for an idle worker — drop them), ``work`` (more
   cells), ``shutdown`` (clean exit).  A daemon thread sends
   ``heartbeat`` frames so the scheduler can tell a busy worker from a
   dead one.

Standalone entry point (for remote hosts)::

    python -m repro.distributed.worker --connect HOST:PORT [--worker-id ID]

The process exits 0 after a clean ``shutdown`` frame and non-zero when
the scheduler connection is lost.
"""

from __future__ import annotations

import argparse
import socket
import sys
import threading
import traceback
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import ReproError
from repro.distributed.protocol import FrameStream, ProtocolError, decode_payload


def _execute_block(
    cells: List[int],
    jobs_by_cell: Dict[int, tuple],
    batch_lanes: int,
) -> List[Tuple[int, dict]]:
    """Run a block of cells; lane-batch the lane-eligible ones."""
    from repro.experiments.runner import (
        execute_lane_block,
        resolve_job,
        run_job,
    )

    results: List[Tuple[int, dict]] = []
    if batch_lanes > 1 and len(cells) > 1:
        batchable = []
        for cell in cells:
            index, point = resolve_job(jobs_by_cell[cell])
            if point.stream or point.dynamic:
                results.append(run_job(jobs_by_cell[cell]))
            else:
                batchable.append((index, point))
        if batchable:
            results.extend(execute_lane_block(batchable))
        return results
    return [run_job(jobs_by_cell[cell]) for cell in cells]


def run_worker(host: str, port: int, *, worker_id: Optional[str] = None) -> int:
    """Serve one scheduler until it says ``shutdown``; return an exit code."""
    from repro.experiments.cache import ResultCache
    from repro.experiments.runner import install_workload_table, resolve_job

    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    stream = FrameStream(sock)
    stop_heartbeat = threading.Event()
    try:
        stream.send({"type": "hello", "worker_id": worker_id})
        setup = stream.recv(timeout=120)
        if setup is None or setup.get("type") != "setup":
            raise ProtocolError(f"expected a setup frame, got {setup!r}")
        jobs, table = decode_payload(setup["jobs"])
        install_workload_table(table)
        jobs_by_cell: Dict[int, tuple] = {job[0]: job for job in jobs}
        batch_lanes = max(1, int(setup.get("batch_lanes") or 1))
        cache = None
        cache_dir = setup.get("cache_dir")
        if cache_dir:
            try:
                cache = ResultCache(cache_dir)
            except OSError:
                cache = None  # no shared filesystem on this host

        interval = float(setup.get("heartbeat_interval") or 1.0)

        def _heartbeat() -> None:
            while not stop_heartbeat.wait(interval):
                try:
                    stream.send({"type": "heartbeat"})
                except OSError:
                    return

        threading.Thread(target=_heartbeat, name="fabric-heartbeat",
                         daemon=True).start()

        queue: Deque[int] = deque()
        revoked: Set[int] = set()
        awaiting_work = True
        stream.send({"type": "need_work"})
        while True:
            frame = stream.poll() if queue else stream.recv()
            while frame is not None:
                kind = frame.get("type")
                if kind == "work":
                    awaiting_work = False
                    for cell in frame["cells"]:
                        # A cell revoked from us earlier can be legally
                        # re-dispatched to us after its thief died.
                        revoked.discard(cell)
                        queue.append(cell)
                elif kind == "revoke":
                    revoked.update(frame["cells"])
                    queue = deque(cell for cell in queue if cell not in revoked)
                elif kind == "shutdown":
                    try:
                        # Best effort: the scheduler may already have
                        # torn the connection down behind the frame.
                        stream.send({"type": "goodbye"})
                    except OSError:
                        pass
                    return 0
                else:
                    raise ProtocolError(f"unexpected frame from scheduler: {kind!r}")
                frame = stream.poll()
            if stream.eof:
                return 1  # scheduler vanished
            cells: List[int] = []
            while queue and len(cells) < batch_lanes:
                cell = queue.popleft()
                if cell in revoked:
                    revoked.discard(cell)
                    continue
                cells.append(cell)
            if cells:
                try:
                    block = _execute_block(cells, jobs_by_cell, batch_lanes)
                except ReproError as exc:
                    # A cell the engine cannot run would fail on every
                    # worker; tell the scheduler instead of letting the
                    # retry budget burn through the pool.
                    stream.send({
                        "type": "error",
                        "cells": cells,
                        "message": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    })
                    return 1
                for index, doc in block:
                    if cache is not None:
                        _, point = resolve_job(jobs_by_cell[index])
                        if point.cacheable:
                            cache.put(point.cache_key(), doc)
                    stream.send({"type": "result", "cell": index, "doc": doc})
            if not queue and not awaiting_work:
                awaiting_work = True
                stream.send({"type": "need_work"})
    except (OSError, TimeoutError, ProtocolError):
        return 1
    finally:
        stop_heartbeat.set()
        stream.close()


def _parse_endpoint(value: str) -> Tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad port in {value!r}") from exc


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sweep-worker",
        description="Join a distributed sweep as a socket worker.",
    )
    parser.add_argument("--connect", type=_parse_endpoint, required=True,
                        metavar="HOST:PORT",
                        help="scheduler endpoint to pull grid cells from")
    parser.add_argument("--worker-id", default=None,
                        help="optional stable identity (shown in scheduler logs)")
    args = parser.parse_args(argv)
    host, port = args.connect
    return run_worker(host, port, worker_id=args.worker_id)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
