"""Discrete-event simulation substrate.

The Nexus# evaluation in the paper is a ModelSim testbench driving a VHDL
model cycle by cycle.  Re-running a cycle-accurate RTL simulation of up to
650 000 tasks in Python would be prohibitively slow, so this package
provides a *cycle-approximate*, event-driven substrate instead:

* :class:`repro.sim.engine.EventQueue` / :class:`repro.sim.engine.Simulator`
  — a classic heapq-based discrete-event core with deterministic
  tie-breaking.
* :class:`repro.sim.resource.SerialResource` — a unit that can only work
  on one item at a time (the Input Parser, each task graph's insertion
  port, the Dependence Counts Arbiter, the Write-Back port, a software
  lock).  Reserving a resource returns the start/end times of the
  occupancy, which is exactly the information the manager models need to
  compute when a task becomes ready.
* :class:`repro.sim.fifo.LatencyFifo` — a bounded FIFO with a
  fall-through latency, modelling the New Args. / Finished Args. /
  Ready-Tasks buffers between pipeline stages.
* :class:`repro.sim.stats` — occupancy and counter statistics used by the
  analysis layer.
* :mod:`repro.sim.batch` — the vectorized multi-lane batch backend:
  many independent runs advanced in lockstep over shared structural
  compilations, byte-identical to the scalar engine (exposed lazily
  below to keep the engine import light; the batch module pulls in the
  system layer and numpy).
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.fifo import FifoStats, LatencyFifo
from repro.sim.resource import MultiResource, ResourceStats, SerialResource
from repro.sim.stats import Counter, TimeWeightedStat, UtilizationTracker

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "LatencyFifo",
    "FifoStats",
    "SerialResource",
    "MultiResource",
    "ResourceStats",
    "Counter",
    "TimeWeightedStat",
    "UtilizationTracker",
    "LaneProgram",
    "LaneSpec",
    "lane_fallback_reason",
    "run_lanes",
]

#: Batch-backend symbols resolved lazily from :mod:`repro.sim.batch`
#: (it imports the system layer, which itself imports the event engine
#: above — a lazy hook keeps the package import acyclic and light).
_BATCH_EXPORTS = frozenset(
    {"LaneProgram", "LaneSpec", "lane_fallback_reason", "run_lanes"}
)


def __getattr__(name):
    if name in _BATCH_EXPORTS:
        from repro.sim import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
