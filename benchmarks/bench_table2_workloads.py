"""Table II — benchmark statistics of the generated traces.

Regenerates the workload-statistics table (number of tasks, total work,
average task size, dependency range) for every Starbench-style workload
and compares the columns against the paper's Table II.  The traces are
generated at full scale here — generation is cheap, only simulation is
expensive — except for streamcluster, whose 650 k tasks are reduced.
"""

import pytest

from repro.analysis.tables import PAPER_TABLE2, table2_report
from repro.trace.stats import compute_statistics
from repro.workloads.registry import get_workload


def test_table2_workload_statistics(benchmark, report_recorder, seed):
    report = benchmark.pedantic(
        table2_report, kwargs={"scale": 1.0, "seed": seed}, rounds=1, iterations=1
    )
    report_recorder("table2_workloads", report["text"])
    stats = report["stats"]
    # Average task sizes are generator inputs: they must track Table II closely.
    assert stats["c-ray"].avg_task_us == pytest.approx(PAPER_TABLE2["c-ray"][2], rel=0.10)
    assert stats["rot-cc"].avg_task_us == pytest.approx(PAPER_TABLE2["rot-cc"][2], rel=0.10)
    assert stats["h264dec-1x1-10f"].avg_task_us == pytest.approx(4.6, rel=0.15)
    assert stats["h264dec-8x8-10f"].avg_task_us == pytest.approx(189.9, rel=0.15)
    # Task counts: exact for the line-based kernels, same order of
    # magnitude for the kernels whose helper tasks we do not model.
    assert stats["c-ray"].num_tasks == PAPER_TABLE2["c-ray"][0]
    assert stats["rot-cc"].num_tasks == PAPER_TABLE2["rot-cc"][0]
    assert stats["sparselu"].num_tasks == pytest.approx(PAPER_TABLE2["sparselu"][0], rel=0.30)
    assert stats["streamcluster"].num_tasks == pytest.approx(PAPER_TABLE2["streamcluster"][0], rel=0.30)
    for name in ("h264dec-1x1-10f", "h264dec-2x2-10f", "h264dec-4x4-10f", "h264dec-8x8-10f"):
        assert stats[name].num_tasks == pytest.approx(PAPER_TABLE2[name][0], rel=0.50)
    # Dependency-count ranges.
    assert stats["sparselu"].deps_label == "1-3"
    assert stats["c-ray"].deps_label == "1"


@pytest.mark.parametrize("name", ["c-ray", "sparselu", "h264dec-1x1-10f"])
def test_trace_generation_speed(benchmark, name, seed):
    """Micro-benchmark of the trace generators themselves (full scale)."""
    trace = benchmark.pedantic(
        get_workload, args=(name,), kwargs={"scale": 1.0, "seed": seed},
        rounds=1, iterations=1,
    )
    assert trace.num_tasks > 1000
    stats = compute_statistics(trace)
    assert stats.total_work_ms > 0
