"""Tests for the Nexus# distributed hardware manager model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.nexus.timing import NexusSharpTiming
from repro.trace.task import TaskDescriptor, make_params
from repro.workloads.microbench import generate_microbenchmark


def make_task(task_id, inputs=(), outputs=(), duration=10.0):
    return TaskDescriptor(
        task_id=task_id,
        function="f",
        params=make_params(inputs=inputs, outputs=outputs),
        duration_us=duration,
    )


def sharp(num_tg=2, frequency=100.0, **kwargs):
    return NexusSharpManager(
        NexusSharpConfig(num_task_graphs=num_tg, frequency_mhz=frequency, **kwargs)
    )


class TestConfig:
    def test_synthesis_frequency_selected_when_none(self):
        manager = NexusSharpManager(NexusSharpConfig(num_task_graphs=6, frequency_mhz=None))
        assert manager.frequency.mhz == pytest.approx(55.56)

    def test_explicit_frequency_wins(self):
        manager = sharp(num_tg=6, frequency=100.0)
        assert manager.frequency.mhz == pytest.approx(100.0)

    def test_invalid_task_graph_count(self):
        with pytest.raises(ConfigurationError):
            NexusSharpConfig(num_task_graphs=0)
        with pytest.raises(ConfigurationError):
            NexusSharpConfig(num_task_graphs=64)

    def test_name_reflects_configuration(self):
        assert sharp(num_tg=4).name == "Nexus# 4TG"

    def test_supports_taskwait_on(self):
        assert sharp().supports_taskwait_on is True


class TestFunctionalBehaviour:
    def test_independent_task_ready(self):
        manager = sharp()
        outcome = manager.submit(make_task(0, outputs=[0x40]), 0.0)
        assert [n.task_id for n in outcome.ready] == [0]

    def test_dependency_resolution_across_task_graphs(self):
        manager = sharp(num_tg=6)
        manager.submit(make_task(0, outputs=[0x40, 0x80, 0xC0]), 0.0)
        outcome = manager.submit(make_task(1, inputs=[0x40, 0xC0]), 0.0)
        assert outcome.ready == ()
        finish = manager.finish(0, 50.0)
        assert [n.task_id for n in finish.ready] == [1]

    def test_same_functional_result_for_any_task_graph_count(self):
        released = {}
        for num_tg in (1, 2, 6, 8):
            manager = sharp(num_tg=num_tg)
            manager.submit(make_task(0, outputs=[0x40]), 0.0)
            manager.submit(make_task(1, inputs=[0x40], outputs=[0x80]), 0.0)
            manager.submit(make_task(2, inputs=[0x80]), 0.0)
            order = []
            order.extend(n.task_id for n in manager.finish(0, 100.0).ready)
            order.extend(n.task_id for n in manager.finish(1, 200.0).ready)
            released[num_tg] = order
        assert len(set(map(tuple, released.values()))) == 1

    def test_zero_parameter_task_is_ready(self):
        manager = sharp()
        task = TaskDescriptor(task_id=0, function="f", params=(), duration_us=1.0)
        outcome = manager.submit(task, 0.0)
        assert [n.task_id for n in outcome.ready] == [0]

    def test_statistics_structure(self):
        manager = sharp(num_tg=3)
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        manager.finish(0, 10.0)
        stats = manager.statistics()
        assert len(stats["task_graph_busy_us"]) == 3
        assert stats["tasks_inserted"] == 1
        assert stats["arbiter_busy_us"] >= 0

    def test_reset(self):
        manager = sharp()
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        manager.finish(0, 10.0)
        manager.reset()
        stats = manager.statistics()
        assert stats["tasks_inserted"] == 0
        assert stats["input_parser_busy_us"] == 0.0


class TestTiming:
    def test_accept_time_is_input_parser_occupancy(self):
        manager = sharp(num_tg=4, frequency=100.0)
        outcome = manager.submit(make_task(0, outputs=[0x40, 0x80, 0xC0, 0x100]), 0.0)
        # IPh 2 + 4*IP 2 + IPf 1 = 11 cycles at 100 MHz.
        assert outcome.accept_time_us == pytest.approx(0.11)

    def test_insertion_parallelises_across_task_graphs(self):
        """With parameters spread over many task graphs the task is
        reported ready earlier than with a single task graph."""
        addresses = [0x40, 0x80, 0xC0, 0x100]
        single = sharp(num_tg=1).submit(make_task(0, outputs=addresses), 0.0).ready[0].time_us
        distributed = sharp(num_tg=8).submit(make_task(0, outputs=addresses), 0.0).ready[0].time_us
        assert distributed < single

    def test_ready_rate_improves_with_task_graphs(self):
        """Throughput experiment behind Figure 7: many independent
        4-parameter tasks drain faster with more task graphs."""

        def last_ready(num_tg):
            manager = sharp(num_tg=num_tg, frequency=100.0)
            accept, last = 0.0, 0.0
            for i in range(40):
                base = 0x40 * (1 + 4 * i)
                outcome = manager.submit(
                    make_task(i, outputs=[base, base + 0x40, base + 0x80, base + 0xC0]), accept
                )
                accept = outcome.accept_time_us
                for n in outcome.ready:
                    last = max(last, n.time_us)
            return last

        assert last_ready(6) < last_ready(1)

    def test_lower_frequency_scales_latency(self):
        task = make_task(0, outputs=[0x40])
        fast = sharp(num_tg=2, frequency=100.0).submit(task, 0.0).ready[0].time_us
        slow = sharp(num_tg=2, frequency=50.0).submit(task, 0.0).ready[0].time_us
        assert slow == pytest.approx(2.0 * fast)

    def test_microbenchmark_cycle_count_near_paper(self):
        """Section IV-E: 5 independent 2-parameter tasks should complete in
        roughly 78 cycles with one task graph (well under the 172 cycles of
        the task-superscalar prototype)."""
        trace = generate_microbenchmark()
        manager = sharp(num_tg=1, frequency=100.0)
        accept, last = 0.0, 0.0
        for task in trace.tasks():
            outcome = manager.submit(task, accept)
            accept = outcome.accept_time_us
            for n in outcome.ready:
                last = max(last, n.time_us)
        cycles = last * 100.0
        assert 40 <= cycles <= 110
        assert cycles < 172

    def test_tightly_coupled_timing_is_faster(self):
        task = make_task(0, outputs=[0x40, 0x80])
        full = sharp(num_tg=2, frequency=100.0).submit(task, 0.0).ready[0].time_us
        tight = NexusSharpManager(
            NexusSharpConfig(num_task_graphs=2, frequency_mhz=100.0, timing=NexusSharpTiming.tightly_coupled())
        ).submit(task, 0.0).ready[0].time_us
        assert tight < full
