"""Content-addressed on-disk result cache.

Each cached entry is one :class:`~repro.system.results.MachineResult`,
stored as canonical JSON under ``<root>/<key[:2]>/<key>.json`` where
``key`` is :meth:`RunPoint.cache_key` — a SHA-256 hash of the complete
point configuration.  Because the key is derived from content, repeated
sweeps are incremental for free: only grid cells whose configuration
actually changed (or never ran) are simulated again.

Writes are atomic (``os.replace`` of a temp file), so a sweep killed
mid-write never leaves a truncated entry behind; unreadable entries are
treated as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.trace.serialization import canonical_json_line


class ResultCache:
    """Filesystem-backed map from cache key to result-JSON document."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached result document, or ``None`` on a miss."""
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            return None
        return document if isinstance(document, dict) else None

    def put(self, key: str, document: Dict[str, Any]) -> Path:
        """Store ``document`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(canonical_json_line(document))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; return the number removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
