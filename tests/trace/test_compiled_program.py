"""Tests for the compiled per-trace access program."""

import pickle

import pytest

from repro.taskgraph.address_state import AccessMode, MODE_OF_FLAGS
from repro.taskgraph.tracker import DependencyTracker, merge_access_modes
from repro.trace.compiled import FLAG_READS, FLAG_READWRITE, FLAG_WRITES, CompiledAccessProgram
from repro.trace.task import Direction, Parameter, TaskDescriptor
from repro.trace.trace import TraceBuilder
from repro.workloads.synthetic import generate_random_dag


def build_trace():
    builder = TraceBuilder("compiled-program")
    builder.add_task("a", duration_us=1.0, outputs=[0x1000])
    builder.add_task("b", duration_us=1.0, inputs=[0x1000], outputs=[0x2000])
    builder.add_task("c", duration_us=1.0, inputs=[0x1000, 0x2000], inouts=[0x3000])
    builder.add_taskwait()
    return builder.build()


class TestCompilation:
    def test_addresses_interned_densely_in_first_appearance_order(self):
        program = build_trace().access_program()
        assert program.addresses == [0x1000, 0x2000, 0x3000]
        assert program.id_of == {0x1000: 0, 0x2000: 1, 0x3000: 2}
        assert program.num_addresses == 3

    def test_per_task_access_lists_and_flags(self):
        program = build_trace().access_program()
        assert program.num_tasks == 3
        assert program.task_accesses(0) == [(0, FLAG_WRITES)]
        assert program.task_accesses(1) == [(0, FLAG_READS), (1, FLAG_WRITES)]
        assert program.task_accesses(2) == [(0, FLAG_READS), (1, FLAG_READS), (2, FLAG_READWRITE)]

    def test_duplicate_addresses_merge_like_merge_access_modes(self):
        task = TaskDescriptor(
            task_id=0,
            function="f",
            params=(
                Parameter(address=0x40, direction=Direction.IN),
                Parameter(address=0x40, direction=Direction.OUT),
                Parameter(address=0x80, direction=Direction.IN),
                Parameter(address=0x80, direction=Direction.IN),
            ),
            duration_us=1.0,
        )
        program = CompiledAccessProgram([task])
        assert program.task_accesses(0) == [(0, FLAG_READWRITE), (1, FLAG_READS)]
        merged = merge_access_modes(task)
        assert [(program.addresses[aid], MODE_OF_FLAGS[flag]) for aid, flag in
                program.task_accesses(0)] == merged

    def test_flags_agree_with_access_mode_members(self):
        assert AccessMode.READ.flags == FLAG_READS
        assert AccessMode.WRITE.flags == FLAG_WRITES
        assert AccessMode.READWRITE.flags == FLAG_READWRITE
        for flag in (FLAG_READS, FLAG_WRITES, FLAG_READWRITE):
            assert MODE_OF_FLAGS[flag].flags == flag

    def test_dense_and_sparse_task_ids(self):
        program = build_trace().access_program()
        assert program.slot(0) == 0 and program.slot(2) == 2
        assert program.slot(99) == -1
        sparse = CompiledAccessProgram([
            TaskDescriptor(task_id=7, function="f", params=(), duration_us=1.0),
            TaskDescriptor(task_id=3, function="f", params=(), duration_us=1.0),
        ])
        assert sparse.slot(7) == 0
        assert sparse.slot(3) == 1
        assert sparse.slot(0) == -1

    def test_unknown_task_raises_keyerror(self):
        with pytest.raises(KeyError):
            build_trace().access_program().task_accesses(42)


class TestTraceCache:
    def test_program_is_cached_on_the_trace(self):
        trace = build_trace()
        assert trace.access_program() is trace.access_program()

    def test_cache_excluded_from_pickles(self):
        trace = build_trace()
        trace.access_program()
        clone = pickle.loads(pickle.dumps(trace))
        assert "_compiled_access_program" not in clone.__dict__
        # The clone compiles its own program on demand.
        assert clone.access_program().addresses == trace.access_program().addresses

    def test_resolutions_shared_across_trackers_with_same_key(self):
        trace = generate_random_dag(40, max_predecessors=3, seed=3)
        program = trace.access_program()
        first = DependencyTracker(num_tables=2, distribute=lambda a: a % 2,
                                  distribution_key=("mod", 2))
        second = DependencyTracker(num_tables=2, distribute=lambda a: a % 2,
                                   distribution_key=("mod", 2))
        first.bind_program(program)
        second.bind_program(program)
        assert len(program.resolution_cache) == 1
        assert first._resolved is second._resolved


class TestBindingSemantics:
    def test_bound_tracker_rejects_foreign_tasks(self):
        from repro.common.errors import SimulationError

        trace = build_trace()
        tracker = DependencyTracker()
        tracker.bind_program(trace.access_program())
        foreign = TaskDescriptor(task_id=77, function="f", params=(), duration_us=1.0)
        with pytest.raises(SimulationError):
            tracker.insert_task(foreign)

    def test_rebind_with_tasks_in_flight_rejected(self):
        from repro.common.errors import SimulationError

        trace = build_trace()
        tracker = DependencyTracker()
        tracker.bind_program(trace.access_program())
        tracker.insert_task(next(trace.tasks()))
        with pytest.raises(SimulationError):
            tracker.bind_program(trace.access_program())

    def test_reset_unbinds_and_restores_dynamic_path(self):
        trace = build_trace()
        tracker = DependencyTracker()
        tracker.bind_program(trace.access_program())
        tracker.reset()
        assert tracker.bound_program is None
        foreign = TaskDescriptor(
            task_id=123, function="f",
            params=(Parameter(address=0x9000, direction=Direction.OUT),),
            duration_us=1.0,
        )
        result = tracker.insert_task(foreign)
        assert result.ready is True

    def test_out_of_range_distribution_rejected_at_bind(self):
        from repro.common.errors import SimulationError

        trace = build_trace()
        tracker = DependencyTracker(num_tables=2, distribute=lambda a: 5)
        with pytest.raises(SimulationError):
            tracker.bind_program(trace.access_program())
