#!/usr/bin/env python3
"""Quickstart: simulate one workload on Nexus# and compare against Nanos.

Run with::

    python examples/quickstart.py

The script generates a scaled-down version of the paper's fine-grained
h264dec-1x1 workload (the hardest case for a task manager: 4.6 µs tasks),
replays it on the Nanos software runtime, the Nexus++ baseline and the
Nexus# distributed hardware task manager, and prints the speedup each
achieves on 16 cores — reproducing the qualitative result of Figure 8(b):
Nanos < Nexus++ < Nexus# for very fine-grained tasks.
"""

from repro import (
    IdealManager,
    NanosManager,
    NexusPlusPlusManager,
    NexusSharpConfig,
    NexusSharpManager,
    compute_statistics,
    generate_h264dec,
    simulate,
)


def main() -> None:
    # A 10-frame H.264 wavefront trace at reduced frame size (scale=0.05)
    # so the example runs in a few seconds.  Set scale=1.0 for the full
    # Full-HD geometry of the paper.
    trace = generate_h264dec(grouping=1, num_frames=10, scale=0.05, seed=42)
    stats = compute_statistics(trace)
    print(f"workload: {trace.name}")
    print(f"  tasks           : {stats.num_tasks}")
    print(f"  total work      : {stats.total_work_ms:.1f} ms")
    print(f"  avg task size   : {stats.avg_task_us:.1f} us")
    print(f"  max parallelism : {stats.max_parallelism:.1f}")
    print()

    managers = [
        IdealManager(),
        NanosManager(),
        NexusPlusPlusManager(),
        NexusSharpManager(NexusSharpConfig(num_task_graphs=6)),  # 55.56 MHz synthesis frequency
    ]
    num_cores = 16
    print(f"speedup over the serial execution, {num_cores} cores:")
    for manager in managers:
        result = simulate(trace, manager, num_cores)
        print(
            f"  {manager.name:12s} speedup = {result.speedup_vs_serial:6.2f}x   "
            f"(makespan {result.makespan_us / 1000.0:8.2f} ms, "
            f"core utilisation {result.core_utilization:5.1%})"
        )


if __name__ == "__main__":
    main()
