"""Unit tests of the fabric wire format (length-prefixed JSON frames)."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.distributed.protocol import (
    MAX_FRAME_BYTES,
    FrameStream,
    FrameTooLarge,
    ProtocolError,
    decode_payload,
    encode_payload,
    pack_frame,
)


def pair():
    a, b = socket.socketpair()
    return FrameStream(a), FrameStream(b)


class TestFrames:
    def test_roundtrip(self):
        left, right = pair()
        left.send({"type": "hello", "worker_id": "w0"})
        assert right.recv(timeout=5) == {"type": "hello", "worker_id": "w0"}

    def test_many_frames_share_one_buffer(self):
        left, right = pair()
        for i in range(50):
            left.send({"type": "work", "cells": [i]})
        got = [right.recv(timeout=5)["cells"][0] for _ in range(50)]
        assert got == list(range(50))

    def test_partial_delivery_is_reassembled(self):
        left, right = pair()
        wire = pack_frame({"type": "result", "cell": 7, "doc": {"x": [1, 2, 3]}})
        # Dribble the frame one byte at a time from another thread.
        def dribble():
            for offset in range(len(wire)):
                left.sock.sendall(wire[offset:offset + 1])
        thread = threading.Thread(target=dribble)
        thread.start()
        assert right.recv(timeout=5) == {"type": "result", "cell": 7, "doc": {"x": [1, 2, 3]}}
        thread.join()

    def test_clean_eof_returns_none_and_latches(self):
        left, right = pair()
        left.send({"type": "goodbye"})
        left.close()
        assert right.recv(timeout=5) == {"type": "goodbye"}
        assert right.recv(timeout=5) is None
        assert right.eof

    def test_eof_mid_frame_raises(self):
        left, right = pair()
        wire = pack_frame({"type": "result", "cell": 1, "doc": {}})
        left.sock.sendall(wire[:len(wire) - 3])
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            right.recv(timeout=5)

    def test_oversized_length_prefix_rejected(self):
        left, right = pair()
        left.sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="limit"):
            right.recv(timeout=5)

    def test_non_json_body_rejected(self):
        left, right = pair()
        body = b"\xff\xfenot json"
        left.sock.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            right.recv(timeout=5)

    def test_untyped_object_rejected(self):
        left, right = pair()
        body = b'{"no_type": 1}'
        left.sock.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="typed"):
            right.recv(timeout=5)

    def test_recv_timeout(self):
        _left, right = pair()
        with pytest.raises(TimeoutError):
            right.recv(timeout=0.05)

    def test_poll_does_not_block(self):
        left, right = pair()
        assert right.poll() is None
        assert not right.eof
        left.send({"type": "heartbeat"})
        # The frame may take a scheduling tick to land in the buffer.
        frame = right.recv(timeout=5)
        assert frame == {"type": "heartbeat"}

    def test_poll_sees_buffered_frames(self):
        left, right = pair()
        left.send({"type": "work", "cells": [1]})
        left.send({"type": "work", "cells": [2]})
        assert right.recv(timeout=5)["cells"] == [1]
        assert right.poll()["cells"] == [2]

    def test_concurrent_senders_keep_frames_contiguous(self):
        left, right = pair()
        def blast(tag):
            for _ in range(100):
                left.send({"type": "result", "tag": tag})
        threads = [threading.Thread(target=blast, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        frames = [right.recv(timeout=5) for _ in range(400)]
        for thread in threads:
            thread.join()
        assert all(frame["type"] == "result" for frame in frames)


class TestPayloads:
    def test_payload_roundtrip(self):
        payload = {"jobs": [(0, ("a", 1), None)], "nested": {"x": (1, 2)}}
        assert decode_payload(encode_payload(payload)) == payload

    def test_garbage_payload_raises(self):
        with pytest.raises(ProtocolError):
            decode_payload("not-base64-zlib-pickle!")

    def test_run_points_survive_transport(self):
        from repro.experiments.spec import SweepSpec

        spec = SweepSpec(workloads=["microbench"], managers=["ideal", "nanos"],
                         core_counts=[1, 4])
        points = list(spec.points())
        back = decode_payload(encode_payload(points))
        assert [p.describe() for p in back] == [p.describe() for p in points]


class TestFrameTooLarge:
    def test_error_names_length_limit_and_peer(self):
        # A TCP pair, not a socketpair: only a named peer exercises the
        # "from <peer>" clause of the message.
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        client = socket.create_connection(server.getsockname())
        accepted, _ = server.accept()
        right = FrameStream(accepted)
        assert right.peer is not None
        client.sendall(struct.pack(">I", MAX_FRAME_BYTES + 7))
        with pytest.raises(FrameTooLarge) as info:
            right.recv(timeout=5)
        assert info.value.length == MAX_FRAME_BYTES + 7
        assert info.value.limit == MAX_FRAME_BYTES
        assert info.value.peer == right.peer
        assert str(info.value.length) in str(info.value)
        assert right.peer in str(info.value)
        for sock in (client, accepted, server):
            sock.close()

    def test_rejection_does_not_poison_buffered_frames(self):
        """A good frame already buffered *before* the oversized prefix
        must still parse, and the rejection itself must be repeatable —
        the bad prefix is never consumed."""
        left, right = pair()
        left.send({"type": "good", "n": 1})
        left.sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        assert right.recv(timeout=5) == {"type": "good", "n": 1}
        for _ in range(3):
            with pytest.raises(FrameTooLarge) as info:
                right.recv(timeout=5)
            assert info.value.length == MAX_FRAME_BYTES + 1
        # The buffer still holds exactly the unconsumed 4-byte prefix.
        assert bytes(right._buffer) == struct.pack(">I", MAX_FRAME_BYTES + 1)

    def test_pack_frame_refuses_to_build_an_oversized_frame(self, monkeypatch):
        monkeypatch.setattr("repro.distributed.protocol.MAX_FRAME_BYTES", 64)
        with pytest.raises(FrameTooLarge) as info:
            pack_frame({"type": "blob", "data": "x" * 128})
        assert info.value.length > 64
        assert info.value.peer is None
