"""Unit tests for the frontier journal (scheduler checkpoint)."""

from __future__ import annotations

import json

from repro.resilience.journal import JOURNAL_VERSION, FrontierJournal


def doc(n):
    return {"makespan_us": float(n), "cell": n}


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with FrontierJournal.open(path, "sweep-a") as journal:
            journal.record(3, doc(3), key="k3")
            journal.record(1, doc(1))
        replay = FrontierJournal.open(path, "sweep-a")
        assert replay.completed == {3: doc(3), 1: doc(1)}
        replay.close()

    def test_record_is_idempotent_per_cell(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with FrontierJournal.open(path, "s") as journal:
            journal.record(5, doc(5))
            journal.record(5, {"different": True})  # a speculative loser
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one done line
        replay = FrontierJournal.open(path, "s")
        assert replay.completed == {5: doc(5)}
        replay.close()

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with FrontierJournal.open(path, "s") as journal:
            journal.record(1, doc(1))
            journal.record(2, doc(2))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type":"done","cell":3,"doc":{"half')  # killed mid-append
        replay = FrontierJournal.open(path, "s")
        assert set(replay.completed) == {1, 2}
        # The journal stays appendable after adopting the torn file.
        replay.record(4, doc(4))
        replay.close()
        again = FrontierJournal.open(path, "s")
        assert 4 in again.completed
        again.close()

    def test_sweep_id_mismatch_restarts_the_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with FrontierJournal.open(path, "old-sweep") as journal:
            journal.record(1, doc(1))
        fresh = FrontierJournal.open(path, "new-sweep")
        assert fresh.completed == {}
        fresh.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["sweep_id"] == "new-sweep"
        assert header["version"] == JOURNAL_VERSION

    def test_torn_header_restarts_the_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"type":"header","ver')
        journal = FrontierJournal.open(path, "s")
        assert journal.completed == {}
        journal.record(1, doc(1))
        journal.close()
        assert FrontierJournal.open(path, "s").completed == {1: doc(1)}

    def test_discard_removes_the_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = FrontierJournal.open(path, "s")
        journal.record(1, doc(1))
        journal.discard()
        assert not path.exists()
        journal.discard()  # idempotent
