"""Tests for the workload registry."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.registry import WORKLOADS, get_workload, list_workloads, paper_table2_workloads


class TestRegistry:
    def test_all_table2_workloads_registered(self):
        for name in paper_table2_workloads():
            assert name in WORKLOADS

    def test_list_workloads_sorted(self):
        names = list_workloads()
        assert names == sorted(names)
        assert "gaussian-250" in names
        assert "microbench" in names

    def test_get_workload_returns_named_trace(self):
        trace = get_workload("c-ray", scale=0.05, seed=1)
        assert trace.name == "c-ray"
        assert trace.num_tasks == 60

    def test_get_workload_h264_grouping_names(self):
        trace = get_workload("h264dec-8x8-10f", scale=0.02, seed=1)
        assert trace.name == "h264dec-8x8-10f"
        assert trace.metadata["grouping"] == 8

    def test_gaussian_scale_shrinks_matrix(self):
        small = get_workload("gaussian-250", scale=0.01)
        assert small.metadata["matrix_size"] < 250

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload("does-not-exist")

    @pytest.mark.parametrize("name", paper_table2_workloads())
    def test_every_table2_workload_generates_at_small_scale(self, name):
        trace = get_workload(name, scale=0.01, seed=0)
        assert trace.num_tasks > 0
        assert trace.total_work_us > 0
