"""Hardware task-manager models: Nexus++ (baseline) and Nexus# (this paper).

The models are *cycle-approximate*: every latency the paper gives for the
VHDL prototypes (Sections III-A and IV-D) is charged on the corresponding
serially-occupied unit, so throughput, pipelining and contention effects
emerge from the simulation rather than being assumed.

* :mod:`repro.nexus.distribution` — the XOR-based hash that scatters
  parameter addresses over the task graphs (Section IV-B).
* :mod:`repro.nexus.timing` — the cycle-latency parameter sets of both
  designs plus the synthesis frequencies of Table I.
* :mod:`repro.nexus.arbiter` — the Dependence Counts Arbiter gather logic.
* :mod:`repro.nexus.nexuspp` — the centralised Nexus++ baseline.
* :mod:`repro.nexus.nexussharp` — the distributed Nexus# manager.
"""

from repro.nexus.distribution import (
    best_case_round_robin,
    distribution_histogram,
    nexus_hash,
    worst_case_blocked,
)
from repro.nexus.arbiter import DependenceCountsArbiter
from repro.nexus.nexuspp import NexusPlusPlusConfig, NexusPlusPlusManager
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.nexus.timing import (
    NEXUS_SHARP_TEST_FREQUENCIES_MHZ,
    NexusPlusPlusTiming,
    NexusSharpTiming,
    synthesis_frequency_mhz,
)

__all__ = [
    "nexus_hash",
    "distribution_histogram",
    "best_case_round_robin",
    "worst_case_blocked",
    "DependenceCountsArbiter",
    "NexusPlusPlusManager",
    "NexusPlusPlusConfig",
    "NexusSharpManager",
    "NexusSharpConfig",
    "NexusPlusPlusTiming",
    "NexusSharpTiming",
    "NEXUS_SHARP_TEST_FREQUENCIES_MHZ",
    "synthesis_frequency_mhz",
]
