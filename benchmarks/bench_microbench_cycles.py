"""Section IV-E micro-benchmark — 5 independent 2-parameter tasks.

The paper reports that Nexus# with one task graph needs 78 cycles to
process 5 independent tasks with two parameters each, versus 172 cycles
for the FPGA prototype of the Task Superscalar architecture [19].  This
benchmark measures the same quantity on the cycle-approximate model.
"""

import pytest

from repro.analysis.figures import microbenchmark_report


def test_microbenchmark_insertion_cycles(benchmark, report_recorder):
    report = benchmark.pedantic(
        microbenchmark_report, kwargs={"num_task_graphs": 1}, rounds=1, iterations=1
    )
    report_recorder("microbench_cycles", report["text"])
    measured = report["measured_cycles"]
    # Within ~40 % of the paper's 78 cycles, and clearly below the
    # 172 cycles of the task-superscalar prototype.
    assert measured == pytest.approx(report["paper_cycles"], rel=0.40)
    assert measured < report["task_superscalar_cycles"]


def test_microbenchmark_improves_with_more_task_graphs(benchmark):
    """Ablation: distributing the two parameters over more task graphs can
    only help (or leave the latency unchanged)."""

    def sweep():
        return {n: microbenchmark_report(num_task_graphs=n)["measured_cycles"] for n in (1, 2, 4)}

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert cycles[2] <= cycles[1] + 1e-9
    assert cycles[4] <= cycles[1] + 1e-9
