"""Task-graph storage structures.

Nexus++ and Nexus# track dependencies with cache-like hardware tables
(Section III / IV of the paper): a set-associative table keyed by
parameter address whose entries hold a *Kick-Off List* of tasks waiting
for that address, a *Dependence Counts* table holding, per in-flight
task, the number of addresses it still waits on, a *Task Pool* storing
the descriptors of in-flight tasks (needed again when the task finishes),
and a *Function Pointers* table translating task ids back to the function
the worker core must run.

This package implements those structures functionally (the dependency
bookkeeping) and structurally (capacities, set conflicts, overflow into
chained "dummy" entries) so the manager models can layer timing on top.

Modules
-------
* :mod:`repro.taskgraph.address_state` — per-address reader/writer and
  kick-off-list bookkeeping (the functional heart of dependency
  resolution).
* :mod:`repro.taskgraph.table` — the set-associative container with
  way-conflict accounting.
* :mod:`repro.taskgraph.dep_counts` — the dependence-counts table.
* :mod:`repro.taskgraph.task_pool` — in-flight task descriptor storage.
* :mod:`repro.taskgraph.function_table` — function-pointer table.
* :mod:`repro.taskgraph.tracker` — :class:`DependencyTracker`, the
  complete functional dependency engine shared by every hardware model.
"""

from repro.taskgraph.address_state import AccessMode, AddressCell, AddressState, Waiter
from repro.taskgraph.dep_counts import DependenceCountsTable
from repro.taskgraph.function_table import FunctionTable
from repro.taskgraph.table import AddressTable, TableStats
from repro.taskgraph.task_pool import TaskPool
from repro.taskgraph.tracker import DependencyTracker, InsertResult

__all__ = [
    "AccessMode",
    "AddressCell",
    "AddressState",
    "Waiter",
    "DependenceCountsTable",
    "FunctionTable",
    "AddressTable",
    "TableStats",
    "TaskPool",
    "DependencyTracker",
    "InsertResult",
]
