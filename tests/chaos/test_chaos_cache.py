"""Tests of store-level fault injection and the store's self-healing."""

from __future__ import annotations

import time

from repro.chaos.cache import ChaosResultCache
from repro.chaos.plan import FaultPlan
from repro.experiments.cache import ResultCache
from repro.trace.serialization import canonical_json_line

DOC = {"makespan_us": 123.0, "result": {"tasks": 4}}
KEY = "deadbeef00"


class TestTornTmp:
    def test_torn_put_publishes_nothing_but_an_orphan(self, tmp_path):
        plan = FaultPlan(0, "none", cache_torn_tmp_rate=1.0)
        cache = ChaosResultCache(tmp_path, plan, "c")
        cache.put(KEY, DOC)
        assert cache.injected == {"torn-tmp": 1}
        # No published entry; one half-written orphan temp file.
        assert ResultCache(tmp_path).get(KEY) is None
        orphans = list(tmp_path.glob("*/*.tmp"))
        assert len(orphans) == 1
        text = orphans[0].read_text()
        assert text and text in canonical_json_line(DOC)
        assert text != canonical_json_line(DOC)

    def test_clean_put_after_torn_one_heals_the_entry(self, tmp_path):
        plan = FaultPlan(0, "none", cache_torn_tmp_rate=1.0)
        cache = ChaosResultCache(tmp_path, plan, "c")
        cache.put(KEY, DOC)
        ResultCache(tmp_path).put(KEY, DOC)  # the runner's re-put
        assert ResultCache(tmp_path).get(KEY) == DOC


class TestBitflip:
    def test_bitflip_damages_the_published_bytes(self, tmp_path):
        plan = FaultPlan(0, "none", cache_bitflip_rate=1.0)
        cache = ChaosResultCache(tmp_path, plan, "c")
        path = cache.put(KEY, DOC)
        assert cache.injected == {"bitflip": 1}
        assert path.exists()
        assert path.read_text() != canonical_json_line(DOC)

    def test_reader_never_sees_garbage(self, tmp_path):
        """Whatever the flip produced, a plain reader gets either a
        parsed document or a miss — never an exception, never bytes."""
        for seed in range(8):
            root = tmp_path / str(seed)
            plan = FaultPlan(seed, "none", cache_bitflip_rate=1.0)
            ChaosResultCache(root, plan, "c").put(KEY, DOC)
            got = ResultCache(root).get(KEY)
            assert got is None or isinstance(got, dict)


class TestSlowRead:
    def test_slow_read_stalls_then_returns_the_document(self, tmp_path):
        plan = FaultPlan(0, "none", cache_slow_read_rate=1.0,
                         cache_slow_read_s=0.05)
        cache = ChaosResultCache(tmp_path, plan, "c")
        ResultCache(tmp_path).put(KEY, DOC)
        started = time.monotonic()
        assert cache.get(KEY) == DOC
        assert time.monotonic() - started >= 0.05
        assert cache.injected == {"slow-read": 1}


class TestDeterminism:
    def test_op_counters_replay_the_same_fault_sequence(self, tmp_path):
        plan = FaultPlan(5, "none", cache_bitflip_rate=0.4,
                         cache_torn_tmp_rate=0.4)

        def run_one(root):
            cache = ChaosResultCache(root, plan, "store-a")
            for n in range(30):
                cache.put(f"{n:02d}key", {"n": n})
            return dict(cache.injected)

        first = run_one(tmp_path / "a")
        second = run_one(tmp_path / "b")
        assert first == second
        assert sum(first.values()) > 0
