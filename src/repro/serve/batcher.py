"""Request coalescing and batched dispatch for the serving layer.

Every HTTP request bottoms out in one or more
:class:`~repro.experiments.spec.RunPoint` grid cells, and the batcher is
the single funnel they all pass through:

1. **Cache** — a cell whose spec-hash key is already in the shared
   :class:`~repro.experiments.cache.ResultCache` is answered without
   touching the queue (the same content addressing the sweep runner and
   the distributed fabric use, so results are interchangeable between
   all three).
2. **Single-flight dedupe** — identical cells in flight share one
   simulation: the second..Nth identical request awaits the first one's
   future instead of enqueueing a duplicate.
3. **Admission** — genuinely new cells pass the bounded-queue
   :class:`~repro.serve.admission.AdmissionController` (all-or-nothing
   for multi-cell sweeps) or the request is rejected with a measured
   Retry-After.
4. **Batched execution** — admitted cells are grouped into blocks of
   ``batch_lanes`` and advanced in lockstep through the vectorized batch
   backend (:func:`repro.experiments.runner.execute_lane_block` →
   :func:`repro.sim.batch.run_lanes`) on a thread-pool executor;
   stream/dynamic cells fall back to the scalar engine exactly like the
   sweep runner's ``--batch-lanes`` path.  With ``fabric_workers`` > 0,
   large blocks are fanned out over the distributed sweep fabric
   (:class:`~repro.distributed.scheduler.SweepScheduler`) instead.

All bookkeeping runs on the server's event loop (no locks); only the
simulation blocks run on executor threads.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.runner import execute_lane_block, intern_jobs, run_job
from repro.experiments.spec import RunPoint
from repro.resilience.circuit import CircuitBreaker
from repro.serve.admission import AdmissionController, Saturated

__all__ = ["Batcher", "BatcherStats", "Saturated", "execute_block"]


def execute_block(block: List[Tuple[int, RunPoint]]) -> List[Tuple[int, Dict[str, Any]]]:
    """Run one block of grid cells, batched where the lane backend applies.

    Mirrors :meth:`SweepRunner._execute_batched
    <repro.experiments.runner.SweepRunner>`: static cells advance in
    lockstep through the lane backend, stream/dynamic cells (and
    singleton blocks) run through the scalar engine — byte-identical
    results either way.
    """
    out: List[Tuple[int, Dict[str, Any]]] = []
    batchable: List[Tuple[int, RunPoint]] = []
    for index, point in block:
        if point.stream or point.dynamic:
            out.append(run_job((index, point, None)))
        else:
            batchable.append((index, point))
    if len(batchable) == 1:
        index, point = batchable[0]
        out.append(run_job((index, point, None)))
    elif batchable:
        out.extend(execute_lane_block(batchable))
    return out


def execute_block_fabric(
    block: List[Tuple[int, RunPoint]],
    *,
    workers: int,
    batch_lanes: int,
    cache_dir: Optional[str],
) -> List[Tuple[int, Dict[str, Any]]]:
    """Fan one block out over the distributed sweep fabric.

    Spawns ``workers`` local socket workers for the duration of the
    block (the fabric's own locality chunking, stealing and heartbeat
    recovery apply), so a serving deployment with attached workers keeps
    the event loop free of simulation work entirely.
    """
    from repro.distributed.scheduler import SweepScheduler

    jobs, table = intern_jobs(block)
    scheduler = SweepScheduler(
        jobs, table, workers=workers, batch_lanes=batch_lanes, cache_dir=cache_dir)
    return scheduler.run()


@dataclass
class BatcherStats:
    """Serving counters (reported by ``GET /v1/stats``)."""

    requests: int = 0
    cells: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    executed: int = 0
    rejected: int = 0
    blocks: int = 0
    errors: int = 0
    fabric_blocks: int = 0
    fabric_failures: int = 0
    fabric_fallbacks: int = 0
    started_at: float = field(default_factory=time.time)

    def to_json(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "rejected": self.rejected,
            "blocks": self.blocks,
            "errors": self.errors,
            "fabric_blocks": self.fabric_blocks,
            "fabric_failures": self.fabric_failures,
            "fabric_fallbacks": self.fabric_fallbacks,
            "uptime_s": round(time.time() - self.started_at, 3),
        }


class _Pending:
    """One admitted cell waiting for (or running in) a block."""

    __slots__ = ("point", "key", "future")

    def __init__(self, point: RunPoint, key: Optional[str], future: asyncio.Future) -> None:
        self.point = point
        self.key = key
        self.future = future


class Batcher:
    """The cache → dedupe → admit → batch funnel (event-loop resident).

    Parameters
    ----------
    cache:
        Shared on-disk result store, or ``None``.  Independently of it,
        the batcher keeps a bounded in-memory memo of results by cache
        key, so repeated identical requests are warm even on a server
        without a cache directory.
    batch_lanes:
        Cells advanced in lockstep per executor block (1 = scalar).
    batch_window:
        Seconds the dispatcher waits for a partial block to fill before
        running it anyway — the latency cost of coalescing (default 2 ms).
    max_pending:
        Bounded-queue depth handed to the :class:`AdmissionController`.
    executor_threads:
        Simulation threads.  Simulations are pure Python (GIL-bound), so
        this mainly overlaps simulation with request I/O; real scale-out
        comes from ``fabric_workers``.
    fabric_workers / fabric_min_cells:
        With ``fabric_workers`` > 0, blocks of at least
        ``fabric_min_cells`` cells run on the distributed sweep fabric
        (worker processes spawned per block) instead of in-process.
        The fabric path sits behind a
        :class:`~repro.resilience.circuit.CircuitBreaker`: consecutive
        fabric failures trip it open and blocks run on the local
        executor until a cooled-down probe succeeds — and a block whose
        fabric attempt fails is re-run locally *right away*, so a
        broken fabric degrades throughput, never correctness.
    chaos:
        Optional :class:`~repro.chaos.hooks.ServeChaos` (or a
        :class:`~repro.chaos.plan.FaultPlan` to wrap in one):
        deterministic injected engine failures per admitted request,
        for soak tests of the failure path.
    """

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        batch_lanes: int = 8,
        batch_window: float = 0.002,
        max_pending: int = 256,
        executor_threads: int = 2,
        fabric_workers: int = 0,
        fabric_min_cells: Optional[int] = None,
        memo_entries: int = 4096,
        breaker: Optional[CircuitBreaker] = None,
        chaos: Optional[Any] = None,
    ) -> None:
        if batch_lanes < 1:
            raise ValueError(f"batch_lanes must be >= 1, got {batch_lanes}")
        self.cache = cache
        self.batch_lanes = batch_lanes
        self.batch_window = batch_window
        self.admission = AdmissionController(max_pending)
        self.stats = BatcherStats()
        self.breaker = breaker or CircuitBreaker(failure_threshold=3, cooldown=10.0)
        if chaos is not None and not hasattr(chaos, "maybe_fail"):
            from repro.chaos.hooks import ServeChaos

            chaos = ServeChaos(chaos)
        self.chaos = chaos
        self.fabric_workers = fabric_workers
        if fabric_min_cells is None:
            fabric_min_cells = max(2, 2 * fabric_workers)
        self.fabric_min_cells = fabric_min_cells
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="serve-sim")
        self.memo_entries = memo_entries
        self._memo: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._queue: deque[_Pending] = deque()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._block_tasks: set = set()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Start the dispatcher on the running event loop."""
        self._wakeup = asyncio.Event()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="serve-batcher")

    async def close(self) -> None:
        """Stop dispatching; fail whatever is still queued."""
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        while self._queue:
            pending = self._queue.popleft()
            if not pending.future.done():
                pending.future.set_exception(
                    ConnectionError("server shutting down"))
            self._forget(pending)
        if self._block_tasks:
            await asyncio.gather(*self._block_tasks, return_exceptions=True)
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- submission --------------------------------------------------------
    def lookup(self, point: RunPoint) -> Tuple[Optional[str], Optional[Dict[str, Any]]]:
        """Resolve a cell against memo + cache: ``(key, cached_document)``."""
        key = point.cache_key() if point.cacheable else None
        if key is None:
            return None, None
        document = self._memo.get(key)
        if document is not None:
            self._memo.move_to_end(key)
            return key, document
        if self.cache is not None:
            document = self.cache.get(key)
            if document is not None:
                self._remember(key, document)
            return key, document
        return key, None

    def _remember(self, key: str, document: Dict[str, Any]) -> None:
        self._memo[key] = document
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_entries:
            self._memo.popitem(last=False)

    def submit_many(self, points: List[RunPoint]) -> List["asyncio.Future[Dict[str, Any]]"]:
        """Admit a batch of cells atomically; return one awaitable each.

        Runs entirely synchronously on the event loop: cache lookups and
        dedupe first, then **one** all-or-nothing admission check for the
        genuinely new cells — a saturated queue rejects the whole request
        (:class:`Saturated`) without enqueueing half of it.  The returned
        futures resolve to result documents in the order of ``points``.
        """
        if self._closed:
            raise ConnectionError("server shutting down")
        loop = asyncio.get_running_loop()
        self.stats.requests += 1
        self.stats.cells += len(points)
        if self.chaos is not None:
            # Injected *before* admission so a failed request holds no
            # queue slots; it surfaces exactly like an engine bug (500).
            try:
                self.chaos.maybe_fail()
            except Exception:
                self.stats.errors += 1
                raise

        resolved: List[Tuple[RunPoint, Optional[str], Optional[Dict[str, Any]]]] = []
        fresh = 0
        seen_keys: Dict[str, int] = {}
        for point in points:
            key, cached = self.lookup(point)
            resolved.append((point, key, cached))
            if cached is None and (key is None or (
                    key not in self._inflight and key not in seen_keys)):
                fresh += 1
                if key is not None:
                    seen_keys[key] = fresh
        self.admission.try_acquire(fresh)  # raises Saturated; nothing queued

        futures: List[asyncio.Future] = []
        enqueued: Dict[str, asyncio.Future] = {}
        for point, key, cached in resolved:
            if cached is not None:
                self.stats.cache_hits += 1
                future = loop.create_future()
                future.set_result(cached)
                futures.append(future)
                continue
            if key is not None:
                shared = self._inflight.get(key) or enqueued.get(key)
                if shared is not None:
                    self.stats.coalesced += 1
                    futures.append(shared)
                    continue
            future = loop.create_future()
            if key is not None:
                self._inflight[key] = future
                enqueued[key] = future
            self._queue.append(_Pending(point, key, future))
            futures.append(future)
        if self._wakeup is not None:
            self._wakeup.set()
        return futures

    async def submit(self, point: RunPoint) -> Dict[str, Any]:
        """Admit one cell and await its result document."""
        [future] = self.submit_many([point])
        # shield: a client disconnecting must not cancel a simulation
        # other coalesced requests may be awaiting.
        return await asyncio.shield(future)

    # -- dispatch ----------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self._queue:
                if 0 < len(self._queue) < self.batch_lanes and self.batch_window > 0:
                    # Let a burst coalesce into a fuller block.
                    await asyncio.sleep(self.batch_window)
                block = [
                    self._queue.popleft()
                    for _ in range(min(self.batch_lanes, len(self._queue)))
                ]
                task = asyncio.create_task(self._run_block(block))
                self._block_tasks.add(task)
                task.add_done_callback(self._block_tasks.discard)

    async def _run_block(self, block: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        indexed = list(enumerate(pending.point for pending in block))
        started = time.monotonic()
        use_fabric = (self.fabric_workers > 0
                      and len(block) >= self.fabric_min_cells)
        try:
            pairs = None
            if use_fabric and self.breaker.allow():
                cache_dir = str(self.cache.root) if self.cache is not None else None
                try:
                    pairs = await loop.run_in_executor(
                        self._executor, lambda: execute_block_fabric(
                            indexed, workers=self.fabric_workers,
                            batch_lanes=self.batch_lanes, cache_dir=cache_dir))
                    self.breaker.record_success()
                    self.stats.fabric_blocks += 1
                except Exception:
                    # The fabric is the *optimisation*; the local
                    # executor is the truth.  Fail the breaker, run the
                    # same block locally, and only a local failure can
                    # fail the requests.
                    self.breaker.record_failure()
                    self.stats.fabric_failures += 1
            elif use_fabric:
                self.stats.fabric_fallbacks += 1  # breaker open: skip straight to local
            if pairs is None:
                pairs = await loop.run_in_executor(
                    self._executor, execute_block, indexed)
        except Exception as exc:
            self.stats.errors += len(block)
            self.admission.release(len(block), time.monotonic() - started)
            for pending in block:
                self._forget(pending)
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        self.stats.executed += len(block)
        self.stats.blocks += 1
        self.admission.release(len(block), time.monotonic() - started)
        documents = dict(pairs)
        for position, pending in enumerate(block):
            document = documents[position]
            if pending.key is not None:
                self._remember(pending.key, document)
                if self.cache is not None:
                    self.cache.put(pending.key, document)
            self._forget(pending)
            if not pending.future.done():
                pending.future.set_result(document)

    def _forget(self, pending: _Pending) -> None:
        if pending.key is not None and self._inflight.get(pending.key) is pending.future:
            del self._inflight[pending.key]
