"""The 5-task micro-benchmark of Section IV-E.

"Using a micro benchmark built after [19] that includes inserting 5
independent tasks, each with two parameters, Nexus# (with one task graph)
consumes 78 cycles compared to 172 cycles consumed in [19]."

The benchmark only measures manager-internal latency (how many cycles
until every task has been reported ready), so the task bodies are given a
negligible duration.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import ConfigurationError
from repro.trace.events import TraceEvent
from repro.trace.stream import EventEmitter, TraceStream, materialize
from repro.trace.trace import Trace
from repro.workloads.addressing import AddressSpace

#: Cycle counts quoted in the paper for this micro-benchmark.
PAPER_NEXUS_SHARP_CYCLES = 78
PAPER_TASK_SUPERSCALAR_CYCLES = 172


def stream_microbenchmark(
    num_tasks: int = 5,
    params_per_task: int = 2,
    *,
    duration_us: float = 0.01,
    seed: Optional[int] = None,
) -> TraceStream:
    """Stream the micro-benchmark (see :func:`generate_microbenchmark`)."""
    if num_tasks <= 0:
        raise ConfigurationError(f"num_tasks must be positive, got {num_tasks}")
    if params_per_task <= 0:
        raise ConfigurationError(f"params_per_task must be positive, got {params_per_task}")
    if duration_us < 0:
        raise ConfigurationError(f"duration_us must be >= 0, got {duration_us}")

    def events() -> Iterator[TraceEvent]:
        space = AddressSpace(seed=seed)
        emit = EventEmitter()
        for _ in range(num_tasks):
            addresses = space.alloc(params_per_task)
            yield emit.task("micro_task", duration_us=duration_us, outputs=addresses)
        yield emit.taskwait()

    return TraceStream(
        "microbench-independent",
        events,
        metadata={
            "num_tasks": num_tasks,
            "params_per_task": params_per_task,
            "paper_nexus_sharp_cycles": PAPER_NEXUS_SHARP_CYCLES,
            "paper_task_superscalar_cycles": PAPER_TASK_SUPERSCALAR_CYCLES,
        },
    )


def generate_microbenchmark(
    num_tasks: int = 5,
    params_per_task: int = 2,
    *,
    duration_us: float = 0.01,
    seed: Optional[int] = None,
) -> Trace:
    """Generate the independent-task insertion micro-benchmark.

    Parameters
    ----------
    num_tasks:
        Number of independent tasks (5 in the paper).
    params_per_task:
        Parameters per task (2 in the paper); all parameters are distinct
        output addresses so no dependencies arise.
    duration_us:
        Nominal task body duration (irrelevant for the cycle measurement).
    seed:
        Accepted for interface uniformity; the trace is deterministic.
    """
    return materialize(stream_microbenchmark(
        num_tasks, params_per_task, duration_us=duration_us, seed=seed))
