"""Regeneration of the paper's figures (as numeric series + text tables).

Figures are reproduced as data series (speedup vs. number of cores)
rendered to plain text; no plotting backend is required.  Each
``figureN_report`` returns a dictionary containing the raw series plus a
``text`` rendering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.factories import (
    ManagerFactory,
    ideal_factory,
    nexus_pp_factory,
    nexus_sharp_factory,
    paper_manager_set,
)
from repro.analysis.formatting import render_table
from repro.analysis.speedup import ScalabilityStudy, run_scalability
from repro.common.constants import NANOS_MAX_CORES, PAPER_CORE_COUNTS
from repro.nexus.distribution import (
    best_case_round_robin,
    distribution_histogram,
    fairness_index,
    nexus_hash_array,
    worst_case_blocked,
)
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.workloads.gaussian import generate_gaussian_elimination
from repro.workloads.h264dec import generate_h264dec
from repro.workloads.microbench import (
    PAPER_NEXUS_SHARP_CYCLES,
    PAPER_TASK_SUPERSCALAR_CYCLES,
    generate_microbenchmark,
)
from repro.workloads.registry import get_workload, paper_table2_workloads

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import SweepRunner

#: Default Nexus# task-graph counts swept in Figure 7 (same as the paper).
FIGURE7_TASK_GRAPHS = (1, 2, 4, 6, 8)


def figure7_report(
    groupings: Sequence[int] = (1, 2, 4, 8),
    task_graph_counts: Sequence[int] = FIGURE7_TASK_GRAPHS,
    core_counts: Sequence[int] = PAPER_CORE_COUNTS,
    *,
    scale: float = 0.05,
    num_frames: int = 10,
    seed: Optional[int] = None,
    include_ideal: bool = True,
    runner: Optional["SweepRunner"] = None,
) -> Dict[str, object]:
    """Figure 7: Nexus# scalability on h264dec vs. number of task graphs.

    Panel (a) runs every configuration at a flat 100 MHz, panel (b) at the
    synthesis (test) frequency of Table I — both are produced.
    """
    panels: Dict[str, Dict[str, ScalabilityStudy]] = {"100MHz": {}, "synthesis": {}}
    texts = []
    for grouping in groupings:
        trace = generate_h264dec(grouping=grouping, num_frames=num_frames, scale=scale, seed=seed)
        for panel, frequency in (("100MHz", 100.0), ("synthesis", None)):
            managers: Dict[str, ManagerFactory] = {}
            if include_ideal:
                managers["Ideal"] = ideal_factory()
            for num_tg in task_graph_counts:
                managers[f"Nexus# {num_tg}TG"] = nexus_sharp_factory(num_tg, frequency)
            study = run_scalability(trace, managers, core_counts, runner=runner)
            panels[panel][trace.name] = study
            texts.append(study.render(f"Figure 7({'a' if panel == '100MHz' else 'b'}) {trace.name} @ {panel}"))
    return {"panels": panels, "scale": scale, "text": "\n\n".join(texts)}


def figure8_report(
    workloads: Optional[Sequence[str]] = None,
    core_counts: Sequence[int] = PAPER_CORE_COUNTS,
    *,
    scale: float = 0.05,
    seed: Optional[int] = None,
    nexus_sharp_task_graphs: int = 6,
    runner: Optional["SweepRunner"] = None,
) -> Dict[str, object]:
    """Figure 8: speedups of Nanos / Nexus++ / Nexus# vs. the ideal curve.

    Nexus# uses 6 task graphs at the 55.56 MHz synthesis frequency,
    Nexus++ runs at 100 MHz and Nanos is limited to 32 cores, exactly as
    in the paper's setup.
    """
    workloads = tuple(workloads or paper_table2_workloads())
    managers = paper_manager_set(nexus_sharp_task_graphs=nexus_sharp_task_graphs)
    max_cores = {"Nanos": NANOS_MAX_CORES}
    studies: Dict[str, ScalabilityStudy] = {}
    texts = []
    for name in workloads:
        trace = get_workload(name, scale=scale, seed=seed)
        study = run_scalability(trace, managers, core_counts, max_cores=max_cores, runner=runner)
        studies[name] = study
        texts.append(study.render(f"Figure 8: {name} [scale={scale}]"))
    return {"studies": studies, "scale": scale, "text": "\n\n".join(texts)}


def figure9_report(
    matrix_sizes: Sequence[int] = (250, 500, 1000, 3000),
    core_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    *,
    frequency_mhz: float = 100.0,
    tightly_coupled: bool = True,
    include_ideal: bool = True,
    runner: Optional["SweepRunner"] = None,
) -> Dict[str, object]:
    """Figure 9: Gaussian elimination on Nexus++, Nexus# 1 TG and 2 TG.

    All managers run at 100 MHz as in the paper.  The benchmark is not
    trace-based in the paper; the ``tightly_coupled`` timing preset drops
    the PCIe-transfer cycles accordingly (see EXPERIMENTS.md).
    """
    managers: Dict[str, ManagerFactory] = {}
    if include_ideal:
        managers["Ideal"] = ideal_factory()
    managers["Nexus++"] = nexus_pp_factory(frequency_mhz, tightly_coupled=tightly_coupled)
    managers["Nexus# 1TG"] = nexus_sharp_factory(1, frequency_mhz, tightly_coupled=tightly_coupled)
    managers["Nexus# 2TG"] = nexus_sharp_factory(2, frequency_mhz, tightly_coupled=tightly_coupled)
    studies: Dict[int, ScalabilityStudy] = {}
    texts = []
    for n in matrix_sizes:
        trace = generate_gaussian_elimination(matrix_size=n)
        study = run_scalability(trace, managers, core_counts, runner=runner)
        studies[n] = study
        texts.append(study.render(f"Figure 9: Gaussian elimination, matrix {n}x{n}"))
    return {"studies": studies, "text": "\n\n".join(texts)}


def microbenchmark_report(num_task_graphs: int = 1, frequency_mhz: float = 100.0) -> Dict[str, object]:
    """Section IV-E micro-benchmark: cycles to insert 5 independent tasks.

    The paper reports 78 cycles for Nexus# with one task graph, against
    172 cycles for the task-superscalar prototype of [19].
    """
    trace = generate_microbenchmark()
    manager = NexusSharpManager(
        NexusSharpConfig(num_task_graphs=num_task_graphs, frequency_mhz=frequency_mhz)
    )
    manager.reset()
    last_ready_us = 0.0
    accept_us = 0.0
    for task in trace.tasks():
        outcome = manager.submit(task, accept_us)
        accept_us = outcome.accept_time_us
        for notification in outcome.ready:
            last_ready_us = max(last_ready_us, notification.time_us)
    measured_cycles = last_ready_us * frequency_mhz
    rows = [
        ["Nexus# (this model)", round(measured_cycles, 1)],
        ["Nexus# (paper)", PAPER_NEXUS_SHARP_CYCLES],
        ["Task Superscalar [19] (paper)", PAPER_TASK_SUPERSCALAR_CYCLES],
    ]
    text = render_table(
        ["design", "cycles to report 5 independent 2-parameter tasks ready"],
        rows,
        title="Micro-benchmark (Section IV-E)",
    )
    return {
        "measured_cycles": measured_cycles,
        "paper_cycles": PAPER_NEXUS_SHARP_CYCLES,
        "task_superscalar_cycles": PAPER_TASK_SUPERSCALAR_CYCLES,
        "text": text,
    }


def distribution_quality_report(
    num_addresses: int = 20000,
    task_graph_counts: Sequence[int] = (2, 4, 6, 8, 16, 32),
    *,
    seed: Optional[int] = None,
    stride: int = 64,
) -> Dict[str, object]:
    """Figure 3 design study: fairness of the XOR-fold distribution hash.

    Compares the hash against the best case (round robin) and the worst
    case (blocked assignment) on a synthetic heap-like address stream.
    """
    rng = np.random.default_rng(0 if seed is None else seed)
    base = 0x7F3A_0000_0000
    offsets = np.cumsum(rng.integers(1, 8, size=num_addresses)) * stride
    addresses = (base + offsets).astype(np.uint64)
    rows = []
    data = {}
    for num_tg in task_graph_counts:
        histogram = distribution_histogram(addresses, num_tg)
        hash_fair = fairness_index(histogram)
        rr_fair = fairness_index(np.bincount(best_case_round_robin(num_addresses, num_tg), minlength=num_tg))
        blocked = np.bincount(worst_case_blocked(num_addresses, num_tg), minlength=num_tg)
        blocked_fair = fairness_index(blocked)
        data[num_tg] = {"histogram": histogram, "fairness": hash_fair}
        rows.append([num_tg, round(hash_fair, 4), round(rr_fair, 4), round(blocked_fair, 4),
                     int(histogram.max()), int(histogram.min())])
    text = render_table(
        ["task graphs", "XOR-hash fairness", "round-robin fairness", "blocked fairness",
         "max per TG", "min per TG"],
        rows,
        title="Distribution quality (Figure 3 design point)",
    )
    return {"data": data, "text": text}
