"""The pinned fuzz corpus: fixed-seed regression cases.

Each entry is a :class:`repro.workloads.fuzz.FuzzSpec` that replays
deterministically without hypothesis — the CI regression layer of the
differential fuzz suite.  When the hypothesis-driven tests in
``test_fuzz_dynamic.py`` find a failing configuration, pin it here (with
a comment naming the bug) so it is replayed forever.

The corpus deliberately spans the scenario axes:

* flat vs deep spawn trees, narrow vs wide fan-out;
* zero conflict density vs address-conflict-heavy siblings;
* fully joined trees vs dangling children (parents finishing with
  children still in flight);
* barrier-free masters vs masters mixing ``taskwait`` / ``taskwait on``
  (the latter exercises the Nexus++ degradation path).
"""

from __future__ import annotations

from repro.workloads.fuzz import FuzzSpec

CORPUS: tuple[FuzzSpec, ...] = (
    # Flat, wide, no recursion: the degenerate "static-like" case.
    FuzzSpec(seed=101, max_depth=0, max_children=0, roots=12,
             conflict_density=0.6, master_barrier_probability=0.5),
    # Deep and narrow: recursion depth beyond typical core counts, so
    # the suspend/resume (core release) path is exercised hard.
    FuzzSpec(seed=202, max_depth=6, max_children=1, roots=2,
             recurse_probability=0.95, conflict_density=0.2),
    # Wide fan-out with heavy sibling conflicts (RAW/WAR/WAW storms).
    FuzzSpec(seed=303, max_depth=2, max_children=5, roots=3,
             conflict_density=0.9, inout_probability=0.6),
    # Dangling-heavy: most parents never join their children.
    FuzzSpec(seed=404, max_depth=3, max_children=3, roots=4,
             join_probability=0.15, mid_taskwait_probability=0.05),
    # Barrier-heavy master with taskwait-on mixed in.
    FuzzSpec(seed=505, max_depth=2, max_children=3, roots=8,
             master_barrier_probability=0.9, conflict_density=0.5),
    # Mid-body joins everywhere (serialising spawn bursts).
    FuzzSpec(seed=606, max_depth=3, max_children=4, roots=3,
             mid_taskwait_probability=0.8, join_probability=0.9),
    # Near-zero durations: completions pile up at equal timestamps, so
    # the event queue's deterministic tie-breaking carries the run.
    FuzzSpec(seed=707, max_depth=3, max_children=3, roots=4,
             duration_range_us=(0.0, 0.5), conflict_density=0.5),
    # Budget-capped runaway tree (the max_tasks cut mid-construction).
    FuzzSpec(seed=808, max_depth=5, max_children=5, roots=5,
             recurse_probability=0.9, max_tasks=120),
)
