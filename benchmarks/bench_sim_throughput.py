#!/usr/bin/env python3
"""Simulator throughput benchmark: layered runtime vs. pre-refactor loop.

Measures end-to-end machine-loop throughput (simulation events dispatched
per second of wall-clock time) on the two paper workloads with the most
interesting dependency structure — ``sparselu`` and ``h264dec`` — and
compares the layered runtime (``repro.system.machine``) against the
frozen pre-refactor loop (``benchmarks/_legacy_machine.py``).

Both sides run the same manager models, the same generated traces and the
default machine configuration (FIFO scheduler, homogeneous topology,
``keep_schedule=True``), so the ratio isolates the refactor itself: the
struct-of-arrays timeline, the compiled-trace submission path and the
shared ``sim.engine`` kernel.

Run with::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py [--quick]

Writes ``BENCH_sim_throughput.json`` (repo root by default).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _legacy_machine import LegacyIdealManager, legacy_simulate  # noqa: E402
from repro.analysis.factories import ideal_factory, nexus_sharp_factory  # noqa: E402
from repro.system.machine import Machine, MachineConfig  # noqa: E402
from repro.workloads.h264dec import generate_h264dec  # noqa: E402
from repro.workloads.sparselu import generate_sparselu  # noqa: E402

BENCH_SEED = 2015


def _traces(scale: float):
    return {
        "sparselu": generate_sparselu(scale=scale, seed=BENCH_SEED),
        "h264dec": generate_h264dec(grouping=2, num_frames=6, scale=scale, seed=BENCH_SEED),
    }


def _time_pair(
    current: Callable[[], int],
    legacy: Callable[[], int],
    repetitions: int,
) -> Tuple[float, int, float, int]:
    """Best-of-N wall times for both sides, with interleaved repetitions.

    Alternating current/legacy measurements (instead of timing one side
    to completion first) cancels slow machine-load drift out of the
    ratio, which is what the speedup criterion is computed from.
    """
    best_current = best_legacy = math.inf
    current_events = legacy_events = 0
    for _ in range(repetitions):
        start = time.perf_counter()
        current_events = current()
        best_current = min(best_current, time.perf_counter() - start)
        start = time.perf_counter()
        legacy_events = legacy()
        best_legacy = min(best_legacy, time.perf_counter() - start)
    return best_current, current_events, best_legacy, legacy_events


def run_benchmark(scale: float, cores: int, repetitions: int) -> Dict[str, object]:
    # The "ideal" rows compare the layered runtime against the FULL frozen
    # pre-refactor stack (legacy loop + legacy dependency tracker): that is
    # the headline speedup.  The "nexus#6" rows share the live manager model
    # on both sides, isolating the machine-loop delta alone.
    managers = {
        "ideal": (ideal_factory(), lambda: LegacyIdealManager()),
        "nexus#6": (nexus_sharp_factory(6), nexus_sharp_factory(6)),
    }
    workloads: Dict[str, object] = {}
    speedups = []
    for trace_name, trace in _traces(scale).items():
        per_manager: Dict[str, object] = {}
        for manager_name, (factory, legacy_factory) in managers.items():
            machine = Machine(factory(), MachineConfig(num_cores=cores))

            def run_current() -> int:
                machine.run(trace)
                return machine.last_events_processed

            def run_legacy() -> int:
                _, processed = legacy_simulate(trace, legacy_factory(), cores)
                return processed

            # Warm-up runs outside the timed region (fills the per-trace
            # compiled cache the sweeps also benefit from).
            run_current()
            run_legacy()
            current_s, current_events, legacy_s, legacy_events = _time_pair(
                run_current, run_legacy, repetitions)
            speedup = legacy_s / current_s if current_s > 0 else math.inf
            per_manager[manager_name] = {
                "events": current_events,
                "legacy_events": legacy_events,
                "current_events_per_sec": round(current_events / current_s),
                "legacy_events_per_sec": round(legacy_events / legacy_s),
                "current_seconds": round(current_s, 6),
                "legacy_seconds": round(legacy_s, 6),
                "speedup": round(speedup, 3),
            }
            if manager_name == "ideal":
                speedups.append(speedup)
        workloads[trace_name] = per_manager
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "benchmark": "sim_throughput",
        "schema": 1,
        "config": {
            "cores": cores,
            "scale": scale,
            "seed": BENCH_SEED,
            "repetitions": repetitions,
            "machine_config": "default (fifo scheduler, homogeneous topology, keep_schedule=True)",
            "baseline": "benchmarks/_legacy_machine.py (verbatim pre-refactor stack: "
                        "ideal rows = frozen loop + frozen tracker; nexus rows share the "
                        "live manager, isolating the loop delta alone)",
            "note": "speedup is wall-time (legacy_seconds / current_seconds); events/sec "
                    "are per-side — the layered runtime coalesces back-to-back master "
                    "steps, so it dispatches fewer events for the same simulated work",
        },
        "workloads": workloads,
        "geomean_speedup_ideal": round(geomean, 3),
        "target_speedup": 1.5,
        "meets_target": geomean >= 1.5,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small traces / few repetitions (CI smoke mode)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default 0.3, quick 0.05)")
    parser.add_argument("--cores", type=int, default=32)
    parser.add_argument("--repetitions", type=int, default=None,
                        help="timed repetitions per side (default 5, quick 3)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_sim_throughput.json"))
    args = parser.parse_args()

    scale = args.scale if args.scale is not None else (0.05 if args.quick else 0.3)
    repetitions = args.repetitions if args.repetitions is not None else (3 if args.quick else 7)
    report = run_benchmark(scale=scale, cores=args.cores, repetitions=repetitions)

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    print(f"wrote {output}")
    for trace_name, per_manager in report["workloads"].items():
        for manager_name, row in per_manager.items():
            print(
                f"{trace_name:10s} {manager_name:8s} "
                f"{row['current_events_per_sec']:>10,} ev/s "
                f"(legacy {row['legacy_events_per_sec']:>10,} ev/s)  "
                f"speedup {row['speedup']:.2f}x"
            )
    print(f"geomean speedup (ideal manager): {report['geomean_speedup_ideal']:.2f}x "
          f"(target >= {report['target_speedup']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
