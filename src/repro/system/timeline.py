"""Struct-of-arrays per-task schedule record.

The pre-refactor machine loop kept five dictionaries keyed by task id
(submit/ready/start/finish times plus the descriptor map).  Task ids are
assigned densely in submission order by :class:`~repro.trace.trace.
TraceBuilder`, so the natural representation is a set of preallocated
arrays indexed by task id — no hashing on the hot path, better locality,
and one bulk conversion to the dict form the result layer serialises.

Traces whose ids are *not* dense (hand-built via ``TraceBuilder.extend``)
are handled by an explicit slot map; the machine compiles it once per
trace, so the hot loop never branches on density per event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

NAN = float("nan")


class TaskTimeline:
    """Preallocated per-task schedule arrays, indexed by *slot*.

    For dense traces (the normal case) slot == task id.  For sparse ids
    the machine passes ``task_ids`` — the id of each slot in submission
    order — and indexes through its compiled slot map.

    Dynamic runs, whose task ids are **not known at t=0**, use a
    *growable* timeline instead (:meth:`growable` + :meth:`add_task`):
    slots are appended in submission order as tasks are spawned, keeping
    the struct-of-arrays layout without preallocation.
    """

    __slots__ = ("num_tasks", "task_ids", "submit", "ready", "start", "finish", "core")

    def __init__(self, num_tasks: int, task_ids: Optional[Sequence[int]] = None) -> None:
        self.num_tasks = num_tasks
        self.task_ids: Optional[List[int]] = list(task_ids) if task_ids is not None else None
        self.submit: List[float] = [NAN] * num_tasks
        self.ready: List[float] = [NAN] * num_tasks
        self.start: List[float] = [NAN] * num_tasks
        self.finish: List[float] = [NAN] * num_tasks
        self.core: List[int] = [-1] * num_tasks

    @classmethod
    def growable(cls) -> "TaskTimeline":
        """An empty timeline that grows one slot per :meth:`add_task`."""
        return cls(0, task_ids=())

    @classmethod
    def from_columns(
        cls,
        submit: List[float],
        ready: List[float],
        start: List[float],
        finish: List[float],
        core: List[int],
        task_ids: Optional[Sequence[int]] = None,
    ) -> "TaskTimeline":
        """Adopt already-filled per-task columns without copying.

        The batch lane engine (:mod:`repro.sim.batch`) collects each
        lane's schedule into plain local lists inside its kernel loop —
        cheaper than attribute writes on a shared object — and wraps
        them into a timeline here once the lane completes.  The columns
        must all have the same length; never-scheduled slots follow the
        same conventions as the preallocated form (``NaN`` times, core
        ``-1``).
        """
        num_tasks = len(submit)
        if not (len(ready) == len(start) == len(finish) == len(core) == num_tasks):
            raise ValueError("timeline columns must have equal lengths")
        timeline = cls(0, task_ids=task_ids)
        timeline.num_tasks = num_tasks
        timeline.submit = submit
        timeline.ready = ready
        timeline.start = start
        timeline.finish = finish
        timeline.core = core
        return timeline

    def add_task(self, task_id: int) -> int:
        """Append a slot for ``task_id`` (submission order); return it."""
        task_ids = self.task_ids
        if task_ids is None:
            raise ValueError("add_task requires a growable timeline (use TaskTimeline.growable())")
        slot = self.num_tasks
        task_ids.append(task_id)
        self.num_tasks = slot + 1
        self.submit.append(NAN)
        self.ready.append(NAN)
        self.start.append(NAN)
        self.finish.append(NAN)
        self.core.append(-1)
        return slot

    # -- export --------------------------------------------------------------
    def _id_of(self, slot: int) -> int:
        return slot if self.task_ids is None else self.task_ids[slot]

    def _as_dict(self, values: List[float]) -> Dict[int, float]:
        """Dict view of one array, skipping never-written (NaN) slots."""
        id_of = self._id_of
        return {
            id_of(slot): value
            for slot, value in enumerate(values)
            if value == value  # not NaN
        }

    def submit_dict(self) -> Dict[int, float]:
        return self._as_dict(self.submit)

    def ready_dict(self) -> Dict[int, float]:
        return self._as_dict(self.ready)

    def start_dict(self) -> Dict[int, float]:
        return self._as_dict(self.start)

    def finish_dict(self) -> Dict[int, float]:
        return self._as_dict(self.finish)

    def core_dict(self) -> Dict[int, int]:
        """Task id -> core id that executed it (only scheduled tasks)."""
        id_of = self._id_of
        return {
            id_of(slot): core
            for slot, core in enumerate(self.core)
            if core >= 0
        }
