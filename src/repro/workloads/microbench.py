"""The 5-task micro-benchmark of Section IV-E.

"Using a micro benchmark built after [19] that includes inserting 5
independent tasks, each with two parameters, Nexus# (with one task graph)
consumes 78 cycles compared to 172 cycles consumed in [19]."

The benchmark only measures manager-internal latency (how many cycles
until every task has been reported ready), so the task bodies are given a
negligible duration.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ConfigurationError
from repro.trace.trace import Trace, TraceBuilder
from repro.workloads.addressing import AddressSpace

#: Cycle counts quoted in the paper for this micro-benchmark.
PAPER_NEXUS_SHARP_CYCLES = 78
PAPER_TASK_SUPERSCALAR_CYCLES = 172


def generate_microbenchmark(
    num_tasks: int = 5,
    params_per_task: int = 2,
    *,
    duration_us: float = 0.01,
    seed: Optional[int] = None,
) -> Trace:
    """Generate the independent-task insertion micro-benchmark.

    Parameters
    ----------
    num_tasks:
        Number of independent tasks (5 in the paper).
    params_per_task:
        Parameters per task (2 in the paper); all parameters are distinct
        output addresses so no dependencies arise.
    duration_us:
        Nominal task body duration (irrelevant for the cycle measurement).
    seed:
        Accepted for interface uniformity; the trace is deterministic.
    """
    if num_tasks <= 0:
        raise ConfigurationError(f"num_tasks must be positive, got {num_tasks}")
    if params_per_task <= 0:
        raise ConfigurationError(f"params_per_task must be positive, got {params_per_task}")
    if duration_us < 0:
        raise ConfigurationError(f"duration_us must be >= 0, got {duration_us}")
    space = AddressSpace(seed=seed)
    builder = TraceBuilder(
        "microbench-independent",
        metadata={
            "num_tasks": num_tasks,
            "params_per_task": params_per_task,
            "paper_nexus_sharp_cycles": PAPER_NEXUS_SHARP_CYCLES,
            "paper_task_superscalar_cycles": PAPER_TASK_SUPERSCALAR_CYCLES,
        },
    )
    for _ in range(num_tasks):
        addresses = space.alloc(params_per_task)
        builder.add_task("micro_task", duration_us=duration_us, outputs=addresses)
    builder.add_taskwait()
    return builder.build()
