"""Docs-site integrity tests.

The structural checks (nav <-> files, internal links) run everywhere with
no dependencies; the actual ``mkdocs build --strict`` runs when
mkdocs-material is installed (the CI docs job installs it) and is
skipped otherwise.
"""

from __future__ import annotations

import importlib.util
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"

REQUIRED_PAGES = ("index.md", "architecture.md", "managers.md",
                  "experiments.md", "streaming.md", "distributed.md")

_MD_LINK = re.compile(r"\]\(([^)#]+)(?:#[^)]*)?\)")


def test_all_required_pages_exist():
    assert MKDOCS_YML.exists()
    for page in REQUIRED_PAGES:
        assert (DOCS_DIR / page).exists(), f"docs/{page} is missing"


def test_nav_references_existing_pages_and_covers_required_ones():
    text = MKDOCS_YML.read_text(encoding="utf-8")
    nav_pages = re.findall(r":\s*([\w./-]+\.md)\s*$", text, flags=re.MULTILINE)
    assert nav_pages, "mkdocs.yml nav lists no pages"
    for page in nav_pages:
        assert (DOCS_DIR / page).exists(), f"nav references missing docs/{page}"
    assert set(REQUIRED_PAGES) <= set(nav_pages)


def test_internal_links_resolve():
    """Every relative .md link in the docs points at an existing page
    (the offline mirror of mkdocs --strict link validation)."""
    for page in DOCS_DIR.glob("*.md"):
        for target in _MD_LINK.findall(page.read_text(encoding="utf-8")):
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = (page.parent / target).resolve()
            assert resolved.exists(), f"{page.name}: broken link -> {target}"


def test_docs_mention_no_stale_module_paths():
    """Module paths cited in the docs must import (docs rot guard)."""
    cited = set()
    for page in DOCS_DIR.glob("*.md"):
        cited.update(re.findall(r"`(repro(?:\.\w+)+)`", page.read_text(encoding="utf-8")))
    def importable(candidate: str) -> bool:
        try:
            return importlib.util.find_spec(candidate) is not None
        except ModuleNotFoundError:
            return False

    for path in sorted(cited):
        # Accept either a module path or module.attr (strip the attr).
        parent = path.rsplit(".", 1)[0]
        if not (importable(path) or importable(parent)):
            pytest.fail(f"docs cite {path}, which does not import")


@pytest.mark.skipif(importlib.util.find_spec("mkdocs") is None,
                    reason="mkdocs not installed (CI docs job installs mkdocs-material)")
def test_mkdocs_build_strict(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "mkdocs", "build", "--strict",
         "--site-dir", str(tmp_path / "site")],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, f"mkdocs build --strict failed:\n{result.stderr}"
