"""Config autotuner: successive-halving search over the sweep fabric.

The paper hand-picks the Nexus#/Nexus++ hardware geometries its
evaluation reports (task-graph count, dependence-table set geometry).
This package closes that loop: a :class:`SearchSpace` spans manager
configurations x schedulers x topologies, an :class:`Objective` maps one
candidate's simulated results to a higher-is-better score, and
:class:`SuccessiveHalving` races the candidates over growing fidelity
(workload, seed) units, keeping the top ``1/eta`` per rung.

Every rung compiles to ordinary :class:`~repro.experiments.spec.
SweepSpec` grids executed through the cached
:class:`~repro.experiments.runner.SweepRunner`, so

* fidelity is **cumulative**: a survivor's earlier cells are content-
  addressed cache hits, making re-promotion free;
* a warm re-run of the same search executes zero simulations;
* ``n_jobs`` / ``--workers`` / ``--batch-lanes`` parallelism applies
  unchanged, as does deterministic chaos injection.

``python -m repro.tune`` is the command-line entry point.
"""

from repro.tune.objectives import OBJECTIVES, Objective, geomean, parse_objective
from repro.tune.report import TUNE_REPORT_VERSION, TuneReport
from repro.tune.search import (
    RungOutcome,
    ScoredCandidate,
    SuccessiveHalving,
    TuneResult,
)
from repro.tune.space import Candidate, SearchSpace, nexus_sharp_axis

__all__ = [
    "Candidate",
    "OBJECTIVES",
    "Objective",
    "RungOutcome",
    "ScoredCandidate",
    "SearchSpace",
    "SuccessiveHalving",
    "TUNE_REPORT_VERSION",
    "TuneReport",
    "TuneResult",
    "geomean",
    "nexus_sharp_axis",
    "parse_objective",
]
