"""The seeded load generator: determinism and an in-process load run."""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig, start_in_thread
from repro.serve.loadgen import LoadReport, RequestMix, build_requests, run_load


class TestBuildRequests:
    def test_same_seed_same_requests(self):
        assert build_requests(7, 50) == build_requests(7, 50)

    def test_different_seeds_differ(self):
        assert build_requests(1, 50) != build_requests(2, 50)

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            RequestMix(templates=(), weights=())
        with pytest.raises(ValueError):
            RequestMix(templates=({"workload": "microbench"},),
                       weights=(1.0, 2.0))

    def test_requests_repeat_cells(self):
        """The mix must contain duplicates — that is what exercises the
        dedupe and warm-cache paths under load."""
        requests = build_requests(0, 100)
        distinct = {tuple(sorted(body.items())) for body in requests}
        assert len(distinct) < len(requests)


class TestNearestRank:
    """Pin the percentile estimator to true nearest-rank ``ceil(q*n)-1``.

    Regression: ``int(round(q*(n-1)))`` interpolated with round-half-even,
    understating p99 of small samples (n=60: rank 58 instead of 59) and
    banker's-rounding p50 at n=100 up one rank (round(49.5) == 50)."""

    @staticmethod
    def samples(n):
        return [float(v) for v in range(1, n + 1)]

    @pytest.mark.parametrize("n, q, expected", [
        (1, 0.0, 1.0), (1, 0.5, 1.0), (1, 0.99, 1.0), (1, 1.0, 1.0),
        (2, 0.0, 1.0), (2, 0.5, 1.0), (2, 0.51, 2.0), (2, 0.99, 2.0),
        (2, 1.0, 2.0),
        (10, 0.5, 5.0), (10, 0.9, 9.0), (10, 0.91, 10.0), (10, 0.99, 10.0),
        (100, 0.5, 50.0), (100, 0.95, 95.0), (100, 0.99, 99.0),
        (100, 1.0, 100.0),
    ])
    def test_nearest_rank_pins(self, n, q, expected):
        report = LoadReport(latencies_s=self.samples(n))
        assert report.percentile(q) == expected

    def test_p99_of_sixty_samples_is_the_maximum(self):
        # round(0.99 * 59) == 58 silently picked the 59th of 60 values.
        report = LoadReport(latencies_s=self.samples(60))
        assert report.percentile(0.99) == 60.0

    def test_rank_sorts_its_input(self):
        report = LoadReport(e2e_latencies_s=[3.0, 1.0, 2.0])
        assert report.e2e_percentile(1.0) == 3.0


class TestLoadReport:
    def test_percentiles_and_throughput(self):
        report = LoadReport(offered=5, ok=5, wall_s=2.0,
                            latencies_s=[0.1, 0.2, 0.3, 0.4, 0.5])
        assert report.percentile(0.0) == 0.1
        assert report.percentile(1.0) == 0.5
        assert report.throughput_rps == 2.5
        doc = report.to_json()
        assert doc["p50_latency_ms"] == 300.0
        assert doc["all_429s_carried_retry_after"] is True  # vacuously

    def test_empty_report(self):
        doc = LoadReport().to_json()
        assert doc["p50_latency_ms"] is None
        assert doc["p50_e2e_ms"] is None
        assert doc["retried"] == 0
        assert doc["throughput_rps"] == 0.0

    def test_first_attempt_and_e2e_latencies_are_separate(self):
        """Retried requests contribute only to the end-to-end series:
        their first-attempt outcome was a rejection, so folding their
        (backoff-inflated) total into the service-latency percentiles
        would charge the server for the client's waiting."""
        report = LoadReport(
            offered=4, ok=4, retried=2,
            latencies_s=[0.1, 0.2],               # first-attempt successes
            e2e_latencies_s=[0.1, 0.2, 2.1, 4.2],  # every eventual success
            wall_s=5.0)
        assert report.percentile(1.0) == 0.2
        assert report.e2e_percentile(1.0) == 4.2
        doc = report.to_json()
        assert doc["retried"] == 2
        assert doc["p99_latency_ms"] == pytest.approx(200.0)
        assert doc["p99_e2e_ms"] == pytest.approx(4200.0)
        # Nearest-rank p50 of an even-sized sample is the lower middle
        # (the old round-half-even code picked the upper one).
        assert doc["p50_e2e_ms"] == pytest.approx(200.0)


class TestRunLoad:
    def test_seeded_load_against_a_live_server(self):
        handle = start_in_thread(ServeConfig(batch_window=0.001))
        try:
            requests = build_requests(3, 40)
            report = run_load(handle.host, handle.port, requests,
                              concurrency=4)
        finally:
            handle.stop()
        assert report.offered == 40
        assert report.ok == 40
        assert report.errors == 0 and report.saturated == 0
        assert report.cached > 0  # the mix repeats cells
        assert report.percentile(0.99) is not None
        assert report.throughput_rps > 0

    def test_retry_on_429_separates_retried_from_first_attempt(self):
        # max_pending=1 with 4 concurrent clients guarantees 429s; the
        # well-behaved generator retries them to eventual success.
        handle = start_in_thread(ServeConfig(batch_window=0.001, max_pending=1))
        try:
            requests = build_requests(11, 30)
            report = run_load(handle.host, handle.port, requests,
                              concurrency=4, retry_on_429=True)
        finally:
            handle.stop()
        assert report.ok == 30
        assert report.retried > 0
        # Every success has an end-to-end sample; only clean first
        # attempts enter the service-latency series.
        assert len(report.e2e_latencies_s) == 30
        assert len(report.latencies_s) == 30 - report.retried
        assert report.e2e_percentile(0.99) >= report.percentile(0.99)

    def test_load_cli_prints_a_report_and_exits_zero(self, capsys):
        import json

        from repro.serve import cli as serve_cli

        handle = start_in_thread(ServeConfig(batch_window=0.001))
        try:
            code = serve_cli.main(
                ["load", "--connect", f"{handle.host}:{handle.port}",
                 "--requests", "20", "--concurrency", "4", "--seed", "5"])
        finally:
            handle.stop()
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] == report["offered"] == 20
        assert report["errors"] == 0
