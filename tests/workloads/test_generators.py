"""Tests for the workload (trace) generators."""

import pytest

from repro.common.errors import ConfigurationError
from repro.trace.dag import build_dependency_graph
from repro.trace.stats import compute_statistics
from repro.workloads.addressing import AddressSpace
from repro.workloads.cray import generate_cray
from repro.workloads.gaussian import gaussian_avg_flops, gaussian_task_count, generate_gaussian_elimination
from repro.workloads.h264dec import H264Geometry, generate_h264dec
from repro.workloads.microbench import generate_microbenchmark
from repro.workloads.rotcc import generate_rotcc
from repro.workloads.sparselu import generate_sparselu
from repro.workloads.streamcluster import generate_streamcluster


class TestAddressSpace:
    def test_allocations_are_unique_and_aligned(self):
        space = AddressSpace()
        addresses = space.alloc(1000)
        assert len(set(addresses)) == 1000
        assert all(a % 64 == 0 for a in addresses)

    def test_grid_shape(self):
        grid = AddressSpace().alloc_grid(4, 6)
        assert grid.shape == (4, 6)
        assert len(set(grid.flatten().tolist())) == 24

    def test_invalid_stride(self):
        with pytest.raises(ConfigurationError):
            AddressSpace(stride=50)

    def test_deterministic_with_seed(self):
        a = AddressSpace(seed=3, randomize_offsets=True).alloc(50)
        b = AddressSpace(seed=3, randomize_offsets=True).alloc(50)
        assert a == b


class TestCray:
    def test_paper_scale_statistics(self):
        trace = generate_cray(seed=1)
        stats = compute_statistics(trace)
        assert stats.num_tasks == 1200
        assert stats.avg_task_us == pytest.approx(6151.0, rel=0.05)
        assert stats.max_params == 1
        # All tasks independent.
        assert build_dependency_graph(trace).num_edges == 0

    def test_scaling(self):
        assert generate_cray(scale=0.1, seed=1).num_tasks == 120

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            generate_cray(scale=0.0)


class TestRotcc:
    def test_paper_scale_statistics(self):
        trace = generate_rotcc(seed=1)
        stats = compute_statistics(trace)
        assert stats.num_tasks == 16262
        assert stats.avg_task_us == pytest.approx(501.0, rel=0.08)

    def test_pairwise_dependency_structure(self):
        trace = generate_rotcc(num_lines=10, seed=1)
        graph = build_dependency_graph(trace)
        # one edge per line: rotate -> color-convert
        assert graph.num_edges == 10
        assert graph.dependency_count_range() == (0, 1)


class TestSparselu:
    def test_task_types_and_parameter_range(self):
        trace = generate_sparselu(num_blocks=8, seed=1)
        functions = trace.functions()
        assert set(functions) == {"lu0", "fwd", "bdiv", "bmod"}
        assert trace.param_count_range() == (1, 3)

    def test_task_count_close_to_paper_at_default_size(self):
        trace = generate_sparselu(seed=1)
        assert trace.num_tasks == pytest.approx(54814, rel=0.25)

    def test_dependencies_exist(self):
        trace = generate_sparselu(num_blocks=5, seed=1)
        assert build_dependency_graph(trace).num_edges > 0

    def test_invalid_density(self):
        with pytest.raises(ConfigurationError):
            generate_sparselu(density=0.0)


class TestStreamcluster:
    def test_structure(self):
        trace = generate_streamcluster(num_rounds=3, group_size=10, seed=1)
        # 3 rounds x (10 gain tasks + 1 recluster)
        assert trace.num_tasks == 33
        assert trace.num_barriers == 3 + 1  # one taskwait per round + final
        stats = compute_statistics(trace)
        assert stats.max_params <= 3

    def test_avg_task_size_near_paper(self):
        trace = generate_streamcluster(num_rounds=5, seed=1)
        assert compute_statistics(trace).avg_task_us == pytest.approx(364.0, rel=0.15)

    def test_invalid_group_size(self):
        with pytest.raises(ConfigurationError):
            generate_streamcluster(group_size=0)


class TestH264Dec:
    def test_geometry(self):
        geometry = H264Geometry()
        assert geometry.mb_cols == 120
        assert geometry.mb_rows == 68
        assert geometry.task_grid(8) == (9, 15)

    def test_grouping_reduces_task_count(self):
        fine = generate_h264dec(grouping=1, num_frames=1, scale=0.1, seed=1)
        coarse = generate_h264dec(grouping=4, num_frames=1, scale=0.1, seed=1)
        assert fine.num_tasks > coarse.num_tasks

    def test_avg_task_duration_follows_table2(self):
        for grouping, expected in ((1, 4.6), (8, 189.9)):
            trace = generate_h264dec(grouping=grouping, num_frames=1, scale=0.1, seed=1)
            assert compute_statistics(trace).avg_task_us == pytest.approx(expected, rel=0.15)

    def test_wavefront_dependencies(self):
        trace = generate_h264dec(grouping=8, num_frames=1, scale=1.0, seed=1,
                                 inter_frame_dependency=False)
        graph = build_dependency_graph(trace)
        rows, cols = 9, 15
        # interior block depends on left and upper-right neighbours
        min_deps, max_deps = graph.dependency_count_range()
        assert min_deps == 0
        assert max_deps == 2

    def test_taskwait_on_barriers_present(self):
        trace = generate_h264dec(grouping=8, num_frames=6, scale=0.1, seed=1, frame_buffers=2)
        kinds = [e.kind for e in trace.events]
        assert "taskwait_on" in kinds

    def test_param_range_matches_paper_spirit(self):
        trace = generate_h264dec(grouping=4, num_frames=2, scale=0.1, seed=1)
        low, high = trace.param_count_range()
        assert low >= 1 and high <= 6

    def test_name_encodes_configuration(self):
        assert generate_h264dec(grouping=2, num_frames=10, scale=0.05).name == "h264dec-2x2-10f"

    def test_invalid_grouping(self):
        with pytest.raises(ConfigurationError):
            generate_h264dec(grouping=0)


class TestGaussian:
    def test_task_count_formula_matches_table3(self):
        assert gaussian_task_count(250) == 31374
        assert gaussian_task_count(500) == 125249
        assert gaussian_task_count(1000) == 500499
        assert gaussian_task_count(3000) == 4501499

    def test_avg_flops_matches_table3(self):
        assert gaussian_avg_flops(250) == pytest.approx(167, rel=0.01)
        assert gaussian_avg_flops(500) == pytest.approx(334, rel=0.01)
        assert gaussian_avg_flops(1000) == pytest.approx(667, rel=0.01)
        assert gaussian_avg_flops(3000) == pytest.approx(2000, rel=0.01)

    def test_generated_trace_matches_formulas(self):
        trace = generate_gaussian_elimination(matrix_size=40)
        assert trace.num_tasks == gaussian_task_count(40)
        stats = compute_statistics(trace)
        assert stats.avg_task_us == pytest.approx(gaussian_avg_flops(40) / 2000.0, rel=0.01)

    def test_first_wave_structure(self):
        """One ready task, n-1 direct dependents sharing the pivot address
        (the paper's description of the 250x250 start)."""
        n = 30
        trace = generate_gaussian_elimination(matrix_size=n)
        graph = build_dependency_graph(trace)
        roots = graph.roots()
        assert len(roots) == 1
        assert len(graph.successors[roots[0]]) == n - 1

    def test_invalid_matrix(self):
        with pytest.raises(ConfigurationError):
            generate_gaussian_elimination(matrix_size=1)


class TestMicrobench:
    def test_five_independent_two_parameter_tasks(self):
        trace = generate_microbenchmark()
        assert trace.num_tasks == 5
        assert trace.param_count_range() == (2, 2)
        assert build_dependency_graph(trace).num_edges == 0

    def test_custom_sizes(self):
        trace = generate_microbenchmark(num_tasks=3, params_per_task=4)
        assert trace.num_tasks == 3
        assert trace.param_count_range() == (4, 4)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            generate_microbenchmark(num_tasks=0)
