"""Frozen pre-compiled-engine dependence-resolution stack.

This module is a verbatim snapshot of the access-by-access dependency
engine and the three overhead-modelling managers as they stood *before*
the compiled dependence-resolution engine landed:

* ``LegacyDependencyTracker`` / ``LegacyAddressTable`` /
  ``LegacyAddressState`` / ``LegacyDependenceCountsTable`` — the tracker
  stack that re-merged each task's accesses and re-hashed every raw
  address on every submit;
* ``LegacyDependenceCountsArbiter`` — the per-result serial gather model;
* ``LegacyNanosManager`` / ``LegacyNexusPlusPlusManager`` /
  ``LegacyNexusSharpManager`` — the managers issuing one
  ``SerialResource.reserve`` call per access.

Together with ``legacy_simulate`` from ``_legacy_machine.py`` they form
the *frozen legacy stack* that ``bench_sim_throughput.py`` measures the
live runtime against, and the reference side of the tracker-equivalence
golden suite (``tests/golden/test_tracker_equivalence.py``).

Stable *value* types (``AccessMode``, ``Waiter``, the timing dataclasses,
``SerialResource``, ``TaskPool``, ``FunctionTable``, ``nexus_hash`` and
the manager outcome records) are imported from the live tree: they are
pure data/arithmetic whose change would shift golden makespans and be
caught elsewhere.  Everything with a hot-path *algorithm* is copied.

Do not use this module outside the benchmarks/tests, and do not "fix"
it — its value is that it does not change.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, NamedTuple, Optional, Set, Tuple

from repro.common.constants import (
    DEFAULT_KICKOFF_CAPACITY,
    DEFAULT_TABLE_SETS,
    DEFAULT_TABLE_WAYS,
)
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.units import Frequency
from repro.common.validation import check_positive, check_power_of_two
from repro.managers.base import (
    FinishOutcome,
    ReadyNotification,
    SubmitOutcome,
    TaskManagerModel,
)
from repro.nexus.distribution import nexus_hash
from repro.sim.resource import SerialResource
from repro.taskgraph.address_state import AccessMode, Waiter
from repro.taskgraph.function_table import FunctionTable
from repro.taskgraph.task_pool import TaskPool
from repro.trace.task import Direction, TaskDescriptor

# ---------------------------------------------------------------------------
# Frozen per-address dependency state (pre-compiled-engine address_state.py).
# ---------------------------------------------------------------------------


class LegacyAddressState:
    """Dependency state of a single tracked address (frozen copy)."""

    __slots__ = ("address", "active_writer", "active_readers", "waiters",
                 "total_waiters_enqueued", "max_kickoff_length")

    def __init__(
        self,
        address: int,
        active_writer: Optional[int] = None,
        active_readers: Optional[Set[int]] = None,
        waiters: Optional[Deque[Waiter]] = None,
        total_waiters_enqueued: int = 0,
        max_kickoff_length: int = 0,
    ) -> None:
        self.address = address
        self.active_writer = active_writer
        self.active_readers = active_readers if active_readers is not None else set()
        self.waiters = waiters if waiters is not None else deque()
        self.total_waiters_enqueued = total_waiters_enqueued
        self.max_kickoff_length = max_kickoff_length

    @property
    def is_idle(self) -> bool:
        return self.active_writer is None and not self.active_readers and not self.waiters

    @property
    def kickoff_length(self) -> int:
        return len(self.waiters)

    def insert(self, task_id: int, mode: AccessMode) -> bool:
        if self.waiters:
            self._enqueue(task_id, mode)
            return True
        if mode.writes:
            if self.active_writer is None and not self.active_readers:
                self.active_writer = task_id
                return False
            self._enqueue(task_id, mode)
            return True
        if self.active_writer is None:
            self.active_readers.add(task_id)
            return False
        self._enqueue(task_id, mode)
        return True

    def _enqueue(self, task_id: int, mode: AccessMode) -> None:
        self.waiters.append(Waiter(task_id, mode))
        self.total_waiters_enqueued += 1
        length = len(self.waiters)
        if length > self.max_kickoff_length:
            self.max_kickoff_length = length

    def finish(self, task_id: int) -> List[Waiter]:
        released: List[Waiter] = []
        if self.active_writer == task_id:
            self.active_writer = None
        elif task_id in self.active_readers:
            self.active_readers.discard(task_id)
        else:
            raise SimulationError(
                f"task {task_id} finished but is neither the active writer nor an active "
                f"reader of address {self.address:#x}"
            )
        released.extend(self._activate_waiters())
        return released

    def _activate_waiters(self) -> List[Waiter]:
        released: List[Waiter] = []
        while self.waiters:
            head = self.waiters[0]
            if head.mode.writes:
                if self.active_writer is None and not self.active_readers:
                    self.waiters.popleft()
                    self.active_writer = head.task_id
                    released.append(head)
                break
            if self.active_writer is not None:
                break
            self.waiters.popleft()
            self.active_readers.add(head.task_id)
            released.append(head)
        return released


# ---------------------------------------------------------------------------
# Frozen set-associative address table (pre-compiled-engine table.py).
# ---------------------------------------------------------------------------


def _legacy_set_index(address: int, num_sets: int) -> int:
    return (address >> 6) & (num_sets - 1)


def _legacy_ways_for(kickoff_length: int, kickoff_capacity: int) -> int:
    if kickoff_length <= kickoff_capacity:
        return 1
    overflow = kickoff_length - kickoff_capacity
    return 1 + -(-overflow // kickoff_capacity)


@dataclass
class LegacyTableStats:
    lookups: int = 0
    insertions: int = 0
    evictions: int = 0
    set_conflicts: int = 0
    dummy_entries_peak: int = 0
    max_live_entries: int = 0


class LegacyAddressTable:
    """Set-associative container of per-address state (frozen copy)."""

    def __init__(
        self,
        num_sets: int = DEFAULT_TABLE_SETS,
        ways: int = DEFAULT_TABLE_WAYS,
        kickoff_capacity: int = DEFAULT_KICKOFF_CAPACITY,
        name: str = "task-graph",
    ) -> None:
        check_power_of_two("num_sets", num_sets)
        check_positive("ways", ways)
        check_positive("kickoff_capacity", kickoff_capacity)
        self.num_sets = num_sets
        self.ways = ways
        self.kickoff_capacity = kickoff_capacity
        self.name = name
        self._entries: Dict[int, LegacyAddressState] = {}
        self._set_occupancy: Dict[int, int] = {}
        self.stats = LegacyTableStats()

    def set_index(self, address: int) -> int:
        return _legacy_set_index(address, self.num_sets)

    @property
    def live_entries(self) -> int:
        return len(self._entries)

    def insert_access(self, address: int, task_id: int, mode: AccessMode) -> Tuple[bool, bool]:
        stats = self.stats
        stats.lookups += 1
        entries = self._entries
        entry = entries.get(address)
        set_idx = _legacy_set_index(address, self.num_sets)
        set_conflict = False
        if entry is None:
            occupancy = self._set_occupancy.get(set_idx, 0)
            if occupancy >= self.ways:
                set_conflict = True
                stats.set_conflicts += 1
            entry = LegacyAddressState(address)
            entries[address] = entry
            self._set_occupancy[set_idx] = occupancy + 1
            stats.insertions += 1
            if len(entries) > stats.max_live_entries:
                stats.max_live_entries = len(entries)
        capacity = self.kickoff_capacity
        before_ways = _legacy_ways_for(len(entry.waiters), capacity)
        must_wait = entry.insert(task_id, mode)
        after_ways = _legacy_ways_for(len(entry.waiters), capacity)
        if after_ways != before_ways:
            self._set_occupancy[set_idx] = self._set_occupancy.get(set_idx, 0) + (after_ways - before_ways)
            stats.dummy_entries_peak = max(stats.dummy_entries_peak, after_ways - 1)
        return must_wait, set_conflict

    def finish_access(self, address: int, task_id: int) -> List[Waiter]:
        entry = self._entries.get(address)
        if entry is None:
            raise SimulationError(f"{self.name}: finish on untracked address {address:#x}")
        set_idx = _legacy_set_index(address, self.num_sets)
        capacity = self.kickoff_capacity
        before_ways = _legacy_ways_for(len(entry.waiters), capacity)
        released = entry.finish(task_id)
        after_ways = _legacy_ways_for(len(entry.waiters), capacity)
        if entry.active_writer is None and not entry.active_readers and not entry.waiters:
            del self._entries[address]
            self._set_occupancy[set_idx] = max(0, self._set_occupancy.get(set_idx, 0) - before_ways)
            self.stats.evictions += 1
        elif after_ways != before_ways:
            self._set_occupancy[set_idx] = max(0, self._set_occupancy.get(set_idx, 0) + (after_ways - before_ways))
        return released

    def reset(self) -> None:
        self._entries.clear()
        self._set_occupancy.clear()
        self.stats = LegacyTableStats()


# ---------------------------------------------------------------------------
# Frozen dependence-counts table (pre-compiled-engine dep_counts.py).
# ---------------------------------------------------------------------------


@dataclass
class LegacyDepCountEntry:
    task_id: int
    pending: int
    params_seen: int = 0
    params_total: int = 0


class LegacyDependenceCountsTable:
    def __init__(self, name: str = "dep-counts") -> None:
        self.name = name
        self._entries: Dict[int, LegacyDepCountEntry] = {}
        self.peak_entries = 0

    def __len__(self) -> int:
        return len(self._entries)

    def register(self, task_id: int, pending: int, params_total: int = 0) -> LegacyDepCountEntry:
        if task_id in self._entries:
            raise SimulationError(f"{self.name}: task {task_id} registered twice")
        if pending < 0:
            raise SimulationError(f"{self.name}: negative dependence count {pending} for task {task_id}")
        entry = LegacyDepCountEntry(task_id=task_id, pending=pending, params_total=params_total)
        self._entries[task_id] = entry
        self.peak_entries = max(self.peak_entries, len(self._entries))
        return entry

    def pending(self, task_id: int) -> int:
        entry = self._entries.get(task_id)
        if entry is None:
            raise SimulationError(f"{self.name}: task {task_id} is not in flight")
        return entry.pending

    def decrement(self, task_id: int, amount: int = 1) -> bool:
        entry = self._entries.get(task_id)
        if entry is None:
            raise SimulationError(f"{self.name}: decrement for unknown task {task_id}")
        entry.pending -= amount
        if entry.pending < 0:
            raise SimulationError(
                f"{self.name}: dependence count of task {task_id} went negative ({entry.pending})"
            )
        return entry.pending == 0

    def remove(self, task_id: int) -> None:
        if task_id not in self._entries:
            raise SimulationError(f"{self.name}: removing unknown task {task_id}")
        del self._entries[task_id]

    def reset(self) -> None:
        self._entries.clear()
        self.peak_entries = 0


# ---------------------------------------------------------------------------
# Frozen functional dependency engine (pre-compiled-engine tracker.py).
# ---------------------------------------------------------------------------


class LegacyAccessRecord(NamedTuple):
    address: int
    mode: AccessMode
    table_index: int
    must_wait: bool
    set_conflict: bool


class LegacyInsertResult(NamedTuple):
    task_id: int
    accesses: Tuple[LegacyAccessRecord, ...]
    dependence_count: int
    ready: bool
    pool_was_full: bool

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)


class LegacyFinishAccessRecord(NamedTuple):
    address: int
    table_index: int
    kicked_off: Tuple[int, ...]


class LegacyFinishResult(NamedTuple):
    task_id: int
    accesses: Tuple[LegacyFinishAccessRecord, ...]
    newly_ready: Tuple[int, ...]

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    @property
    def num_kickoffs(self) -> int:
        return sum(len(a.kicked_off) for a in self.accesses)


_LEGACY_MODE_OF_DIRECTION = {
    Direction.IN: AccessMode.READ,
    Direction.OUT: AccessMode.WRITE,
    Direction.INOUT: AccessMode.READWRITE,
}


def legacy_merge_access_modes(task: TaskDescriptor) -> List[Tuple[int, AccessMode]]:
    params = task.params
    merged: Dict[int, AccessMode] = {}
    mode_of = _LEGACY_MODE_OF_DIRECTION
    for param in params:
        address = param.address
        mode = mode_of[param.direction]
        previous = merged.get(address)
        if previous is None:
            merged[address] = mode
        elif previous is not mode:
            merged[address] = AccessMode.READWRITE
    return list(merged.items())


class LegacyDependencyTracker:
    """Access-by-access dependency resolution (frozen pre-compiled copy)."""

    def __init__(
        self,
        num_tables: int = 1,
        distribute: Optional[Callable[[int], int]] = None,
        table_factory: Optional[Callable[[int], LegacyAddressTable]] = None,
        task_pool: Optional[TaskPool] = None,
        function_table: Optional[FunctionTable] = None,
    ) -> None:
        if num_tables <= 0:
            raise ConfigurationError(f"num_tables must be positive, got {num_tables}")
        self.num_tables = num_tables
        self._distribute = distribute or (lambda address: 0)
        factory = table_factory or (lambda index: LegacyAddressTable(name=f"TG{index}"))
        self.tables: List[LegacyAddressTable] = [factory(i) for i in range(num_tables)]
        self.dep_counts = LegacyDependenceCountsTable()
        self.task_pool = task_pool or TaskPool()
        self.function_table = function_table or FunctionTable()
        self._in_flight: Dict[int, TaskDescriptor] = {}
        self._merged_accesses: Dict[int, List[Tuple[int, AccessMode]]] = {}
        self.total_inserted = 0
        self.total_finished = 0

    def insert_task(self, task: TaskDescriptor) -> LegacyInsertResult:
        task_id = task.task_id
        if task_id in self._in_flight:
            raise SimulationError(f"task {task_id} inserted twice")
        self._in_flight[task_id] = task
        pool_was_full = self.task_pool.insert(task)
        self.function_table.intern(task.function)
        merged = legacy_merge_access_modes(task)
        self._merged_accesses[task_id] = merged
        accesses: List[LegacyAccessRecord] = []
        append = accesses.append
        tables = self.tables
        distribute = self._distribute
        num_tables = self.num_tables
        dependence_count = 0
        for address, mode in merged:
            table_index = distribute(address)
            if not 0 <= table_index < num_tables:
                raise SimulationError(
                    f"distribution function returned table {table_index} for address "
                    f"{address:#x}; valid range is [0, {num_tables})"
                )
            must_wait, set_conflict = tables[table_index].insert_access(address, task_id, mode)
            if must_wait:
                dependence_count += 1
            append(LegacyAccessRecord(address, mode, table_index, must_wait, set_conflict))
        self.dep_counts.register(task_id, dependence_count, params_total=len(accesses))
        self.total_inserted += 1
        return LegacyInsertResult(
            task_id,
            tuple(accesses),
            dependence_count,
            dependence_count == 0,
            pool_was_full,
        )

    def finish_task(self, task_id: int) -> LegacyFinishResult:
        task = self._in_flight.pop(task_id, None)
        if task is None:
            raise SimulationError(f"finish for unknown or already finished task {task_id}")
        dep_counts = self.dep_counts
        if dep_counts.pending(task_id) != 0:
            raise SimulationError(
                f"task {task_id} finished while still having "
                f"{dep_counts.pending(task_id)} unresolved dependencies"
            )
        self.task_pool.remove(task_id)
        merged = self._merged_accesses.pop(task_id)
        accesses: List[LegacyFinishAccessRecord] = []
        append = accesses.append
        newly_ready: List[int] = []
        tables = self.tables
        distribute = self._distribute
        decrement = dep_counts.decrement
        for address, _mode in merged:
            table_index = distribute(address)
            released = tables[table_index].finish_access(address, task_id)
            kicked: List[int] = []
            for waiter in released:
                waiter_id = waiter.task_id
                kicked.append(waiter_id)
                if decrement(waiter_id):
                    newly_ready.append(waiter_id)
            append(LegacyFinishAccessRecord(address, table_index, tuple(kicked)))
        dep_counts.remove(task_id)
        self.total_finished += 1
        return LegacyFinishResult(task_id, tuple(accesses), tuple(newly_ready))

    def reset(self) -> None:
        for table in self.tables:
            table.reset()
        self.dep_counts.reset()
        self.task_pool.reset()
        self.function_table.reset()
        self._in_flight.clear()
        self._merged_accesses.clear()
        self.total_inserted = 0
        self.total_finished = 0


# ---------------------------------------------------------------------------
# Frozen Dependence Counts Arbiter (pre-compiled-engine arbiter.py).
# ---------------------------------------------------------------------------


@dataclass
class _LegacyPendingGather:
    expected_results: int
    collected_results: int = 0
    last_result_time_us: float = 0.0


class LegacyDependenceCountsArbiter:
    def __init__(self, cycles_per_result: float, conclude_cycles: float,
                 decrement_cycles: float, cycle_us: float) -> None:
        if cycle_us <= 0:
            raise SimulationError(f"cycle time must be positive, got {cycle_us}")
        self._resource = SerialResource("dependence-counts-arbiter")
        self._cycles_per_result = cycles_per_result
        self._conclude_cycles = conclude_cycles
        self._decrement_cycles = decrement_cycles
        self._cycle_us = cycle_us
        self._pending: Dict[int, _LegacyPendingGather] = {}
        self.tasks_concluded = 0
        self.decrements_processed = 0

    def begin_task(self, task_id: int, expected_results: int) -> None:
        if task_id in self._pending:
            raise SimulationError(f"arbiter already tracking task {task_id}")
        self._pending[task_id] = _LegacyPendingGather(expected_results=expected_results)

    def collect_result(self, task_id: int, result_ready_us: float) -> Optional[float]:
        pending = self._pending.get(task_id)
        if pending is None:
            raise SimulationError(f"arbiter received a result for unknown task {task_id}")
        _, end = self._resource.reserve(result_ready_us, self._cycles_per_result * self._cycle_us)
        pending.collected_results += 1
        pending.last_result_time_us = end
        if pending.collected_results < pending.expected_results:
            return None
        _, conclude_end = self._resource.reserve(end, self._conclude_cycles * self._cycle_us)
        del self._pending[task_id]
        self.tasks_concluded += 1
        return conclude_end

    def decrement(self, ready_us: float) -> float:
        _, end = self._resource.reserve(ready_us, self._decrement_cycles * self._cycle_us)
        self.decrements_processed += 1
        return end

    def reset(self) -> None:
        self._resource.reset()
        self._pending.clear()
        self.tasks_concluded = 0
        self.decrements_processed = 0


# ---------------------------------------------------------------------------
# Frozen manager models (pre-compiled-engine nanos.py / nexuspp.py /
# nexussharp.py), running on the frozen tracker stack above.
# ---------------------------------------------------------------------------


class LegacyNanosManager(TaskManagerModel):
    """Frozen copy of the Nanos software-runtime model."""

    name = "Nanos"
    supports_taskwait_on = True

    def __init__(self, config=None) -> None:
        from repro.managers.nanos import NanosConfig

        self.config = config or NanosConfig()
        self.worker_overhead_us = self.config.worker_dispatch_us
        self._tracker = LegacyDependencyTracker(num_tables=1)
        self._lock = SerialResource("nanos-runtime-lock")

    def reset(self) -> None:
        self._tracker.reset()
        self._lock.reset()

    def submit(self, task: TaskDescriptor, time_us: float) -> SubmitOutcome:
        cfg = self.config
        result = self._tracker.insert_task(task)
        num_params = max(1, result.num_accesses)
        creation_done = time_us + cfg.task_creation_us + cfg.creation_per_param_us * num_params
        lock_cost = cfg.insert_lock_us + cfg.insert_lock_per_param_us * num_params
        _, insert_done = self._lock.reserve(creation_done, lock_cost)
        ready = ()
        if result.ready:
            ready = (ReadyNotification(task.task_id, insert_done),)
        return SubmitOutcome(accept_time_us=insert_done, ready=ready)

    def finish(self, task_id: int, time_us: float) -> FinishOutcome:
        cfg = self.config
        result = self._tracker.finish_task(task_id)
        lock_cost = cfg.finish_lock_us + cfg.wakeup_per_task_us * result.num_kickoffs
        _, finish_done = self._lock.reserve(time_us, lock_cost)
        ready = tuple(ReadyNotification(t, finish_done) for t in result.newly_ready)
        return FinishOutcome(ready=ready, notify_done_us=finish_done)


class LegacyNexusPlusPlusManager(TaskManagerModel):
    """Frozen copy of the Nexus++ centralised manager model."""

    supports_taskwait_on = False
    worker_overhead_us = 0.0

    def __init__(self, config=None) -> None:
        from repro.nexus.nexuspp import NexusPlusPlusConfig

        self.config = config or NexusPlusPlusConfig()
        self.name = "Nexus++"
        self._frequency = Frequency(self.config.frequency_mhz)
        self._cycle_us = self._frequency.cycle_time_us
        self._tracker = LegacyDependencyTracker(
            num_tables=1,
            table_factory=lambda index: LegacyAddressTable(
                num_sets=self.config.table_sets,
                ways=self.config.table_ways,
                kickoff_capacity=self.config.kickoff_capacity,
                name="nexus++-task-graph",
            ),
            task_pool=TaskPool(capacity=self.config.task_pool_entries, name="nexus++-task-pool"),
        )
        self._input_parser = SerialResource("nexus++-input-parser")
        self._task_graph = SerialResource("nexus++-task-graph-port")
        self._write_back = SerialResource("nexus++-write-back")
        self._ready_latency_total_us = 0.0
        self._ready_count = 0

    def _cycles(self, cycles: float) -> float:
        return cycles * self._cycle_us

    def reset(self) -> None:
        self._tracker.reset()
        self._input_parser.reset()
        self._task_graph.reset()
        self._write_back.reset()
        self._ready_latency_total_us = 0.0
        self._ready_count = 0

    def submit(self, task: TaskDescriptor, time_us: float) -> SubmitOutcome:
        timing = self.config.timing
        result = self._tracker.insert_task(task)
        num_params = max(1, task.num_params)

        _, input_end = self._input_parser.reserve(time_us, self._cycles(timing.input_cycles(num_params)))

        insert_available = input_end + self._cycles(self.config.fifo_latency_cycles)
        insert_cycles = timing.insert_cycles(len(result.accesses) or 1)
        conflict_cycles = timing.set_conflict_stall_cycles * sum(1 for a in result.accesses if a.set_conflict)
        _, insert_end = self._task_graph.reserve(insert_available, self._cycles(insert_cycles + conflict_cycles))

        ready: Tuple[ReadyNotification, ...] = ()
        if result.ready:
            wb_available = insert_end + self._cycles(self.config.fifo_latency_cycles)
            _, wb_end = self._write_back.reserve(wb_available, self._cycles(timing.writeback_cycles))
            ready = (ReadyNotification(task.task_id, wb_end),)
            self._ready_latency_total_us += wb_end - time_us
            self._ready_count += 1

        return SubmitOutcome(accept_time_us=input_end, ready=ready)

    def finish(self, task_id: int, time_us: float) -> FinishOutcome:
        timing = self.config.timing
        result = self._tracker.finish_task(task_id)
        num_params = max(1, result.num_accesses)

        _, notify_end = self._input_parser.reserve(time_us, self._cycles(timing.finish_notify_cycles))

        cleanup_available = notify_end + self._cycles(self.config.fifo_latency_cycles)
        cleanup_cycles = timing.cleanup_cycles(num_params)
        cleanup_cycles += timing.kickoff_cycles_per_waiter * result.num_kickoffs
        _, cleanup_end = self._task_graph.reserve(cleanup_available, self._cycles(cleanup_cycles))

        notifications: List[ReadyNotification] = []
        wb_available = cleanup_end + self._cycles(self.config.fifo_latency_cycles)
        for ready_task in result.newly_ready:
            _, wb_end = self._write_back.reserve(wb_available, self._cycles(timing.writeback_cycles))
            notifications.append(ReadyNotification(ready_task, wb_end))
            self._ready_latency_total_us += wb_end - time_us
            self._ready_count += 1
        return FinishOutcome(ready=tuple(notifications), notify_done_us=cleanup_end)


class LegacyNexusSharpManager(TaskManagerModel):
    """Frozen copy of the Nexus# distributed manager model."""

    supports_taskwait_on = True
    worker_overhead_us = 0.0

    def __init__(self, config=None) -> None:
        from repro.nexus.nexussharp import NexusSharpConfig

        self.config = config or NexusSharpConfig()
        self.name = f"Nexus# {self.config.num_task_graphs}TG"
        self._frequency = Frequency(self.config.effective_frequency_mhz)
        self._cycle_us = self._frequency.cycle_time_us
        num_tg = self.config.num_task_graphs
        self._tracker = LegacyDependencyTracker(
            num_tables=num_tg,
            distribute=lambda address: nexus_hash(address, num_tg),
            table_factory=lambda index: LegacyAddressTable(
                num_sets=self.config.table_sets,
                ways=self.config.table_ways,
                kickoff_capacity=self.config.kickoff_capacity,
                name=f"nexus#-TG{index}",
            ),
            task_pool=TaskPool(capacity=self.config.task_pool_entries, name="nexus#-task-pool"),
        )
        timing = self.config.timing
        self._input_parser = SerialResource("nexus#-input-parser")
        self._task_graph_ports = [SerialResource(f"nexus#-TG{i}-port") for i in range(num_tg)]
        self._write_back = SerialResource("nexus#-write-back")
        self._arbiter = LegacyDependenceCountsArbiter(
            cycles_per_result=timing.arbiter_cycles_per_result,
            conclude_cycles=timing.arbiter_conclude_cycles,
            decrement_cycles=timing.arbiter_decrement_cycles,
            cycle_us=self._cycle_us,
        )
        self._ready_latency_total_us = 0.0
        self._ready_count = 0

    def _cycles(self, cycles: float) -> float:
        return cycles * self._cycle_us

    def reset(self) -> None:
        self._tracker.reset()
        self._input_parser.reset()
        for port in self._task_graph_ports:
            port.reset()
        self._write_back.reset()
        self._arbiter.reset()
        self._ready_latency_total_us = 0.0
        self._ready_count = 0

    def _write_back_ready(self, task_id: int, concluded_us: float, reference_us: float) -> ReadyNotification:
        timing = self.config.timing
        wb_available = concluded_us + self._cycles(timing.ready_fifo_latency_cycles)
        _, wb_end = self._write_back.reserve(wb_available, self._cycles(timing.writeback_cycles))
        self._ready_latency_total_us += wb_end - reference_us
        self._ready_count += 1
        return ReadyNotification(task_id, wb_end)

    def submit(self, task: TaskDescriptor, time_us: float) -> SubmitOutcome:
        timing = self.config.timing
        result = self._tracker.insert_task(task)
        num_params = max(1, task.num_params)

        ip_start, ip_end = self._input_parser.reserve(time_us, self._cycles(timing.input_cycles(num_params)))

        insert_ends: List[float] = []
        for index, access in enumerate(result.accesses):
            forward_us = ip_start + self._cycles(timing.param_forward_offset_cycles(index))
            visible_us = forward_us + self._cycles(timing.args_fifo_latency_cycles)
            insert_cycles = timing.insert_cycles_per_param
            if access.set_conflict:
                insert_cycles += timing.set_conflict_stall_cycles
            _, tg_end = self._task_graph_ports[access.table_index].reserve(
                visible_us, self._cycles(insert_cycles)
            )
            insert_ends.append(tg_end)

        ready: Tuple[ReadyNotification, ...] = ()
        if result.accesses:
            self._arbiter.begin_task(task.task_id, expected_results=len(result.accesses))
            concluded: Optional[float] = None
            for tg_end in sorted(insert_ends):
                concluded = self._arbiter.collect_result(task.task_id, tg_end)
            assert concluded is not None
            if result.ready:
                ready = (self._write_back_ready(task.task_id, concluded, time_us),)
        else:
            ready = (self._write_back_ready(task.task_id, ip_end, time_us),)

        return SubmitOutcome(accept_time_us=ip_end, ready=ready)

    def finish(self, task_id: int, time_us: float) -> FinishOutcome:
        timing = self.config.timing
        result = self._tracker.finish_task(task_id)
        num_params = max(1, result.num_accesses)

        fp_start, fp_end = self._input_parser.reserve(
            time_us, self._cycles(timing.finish_input_cycles(num_params))
        )

        last_decrement: Dict[int, float] = {}
        for index, access in enumerate(result.accesses):
            forward_us = fp_start + self._cycles(timing.finish_param_forward_offset_cycles(index))
            visible_us = forward_us + self._cycles(timing.args_fifo_latency_cycles)
            update_cycles = timing.finish_update_cycles_per_param
            update_cycles += timing.kickoff_cycles_per_waiter * len(access.kicked_off)
            _, tg_end = self._task_graph_ports[access.table_index].reserve(
                visible_us, self._cycles(update_cycles)
            )
            for waiter in access.kicked_off:
                decrement_end = self._arbiter.decrement(tg_end)
                previous = last_decrement.get(waiter, 0.0)
                last_decrement[waiter] = max(previous, decrement_end)

        notifications: List[ReadyNotification] = []
        for ready_task in result.newly_ready:
            concluded = last_decrement.get(ready_task, fp_end)
            notifications.append(self._write_back_ready(ready_task, concluded, time_us))
        return FinishOutcome(ready=tuple(notifications), notify_done_us=fp_end)


#: Factories for the frozen managers, keyed the way the benchmark names rows.
def legacy_manager_factory(key: str):
    """Return a zero-argument factory building the frozen manager ``key``."""
    if key == "nanos":
        return LegacyNanosManager
    if key == "nexuspp":
        return LegacyNexusPlusPlusManager
    if key.startswith("nexus#"):
        num_tg = int(key.split("#", 1)[1])

        def build() -> LegacyNexusSharpManager:
            from repro.nexus.nexussharp import NexusSharpConfig

            return LegacyNexusSharpManager(NexusSharpConfig(num_task_graphs=num_tg))

        return build
    raise ConfigurationError(f"unknown legacy manager key {key!r}")
