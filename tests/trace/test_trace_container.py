"""Tests for the Trace container, builder and events."""

import pytest

from repro.common.errors import TraceError
from repro.trace.events import TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent
from repro.trace.task import Parameter
from repro.trace.trace import Trace, TraceBuilder


class TestTraceBuilder:
    def test_sequential_task_ids(self):
        builder = TraceBuilder("t")
        t0 = builder.add_task("a", 1.0, outputs=[0x10])
        t1 = builder.add_task("b", 1.0, outputs=[0x20])
        assert (t0.task_id, t1.task_id) == (0, 1)

    def test_barriers_recorded_in_order(self):
        builder = TraceBuilder("t")
        builder.add_task("a", 1.0, outputs=[0x10])
        builder.add_taskwait()
        builder.add_task("b", 1.0, outputs=[0x20])
        builder.add_taskwait_on(0x10)
        trace = builder.build()
        kinds = [e.kind for e in trace.events]
        assert kinds == ["submit", "taskwait", "submit", "taskwait_on"]

    def test_params_and_address_lists_mutually_exclusive(self):
        builder = TraceBuilder("t")
        with pytest.raises(TraceError):
            builder.add_task("a", 1.0, inputs=[1], params=[Parameter(address=1, direction="in")])

    def test_empty_name_rejected(self):
        with pytest.raises(TraceError):
            TraceBuilder("")

    def test_num_tasks(self):
        builder = TraceBuilder("t")
        builder.add_task("a", 1.0, outputs=[1])
        builder.add_taskwait()
        builder.add_task("b", 1.0, outputs=[2])
        assert builder.num_tasks == 2


class TestTrace:
    def _trace(self):
        builder = TraceBuilder("example", metadata={"k": "v"})
        builder.add_task("f", 2.0, outputs=[0x100])
        builder.add_task("g", 4.0, inputs=[0x100], outputs=[0x140])
        builder.add_taskwait()
        return builder.build()

    def test_counts_and_work(self):
        trace = self._trace()
        assert trace.num_tasks == 2
        assert trace.num_barriers == 1
        assert trace.total_work_us == pytest.approx(6.0)
        assert trace.avg_task_us == pytest.approx(3.0)

    def test_task_map_and_lookup(self):
        trace = self._trace()
        assert trace.task_by_id(1).function == "g"
        assert set(trace.task_map()) == {0, 1}

    def test_task_by_id_missing(self):
        with pytest.raises(TraceError):
            self._trace().task_by_id(99)

    def test_functions_histogram(self):
        assert self._trace().functions() == {"f": 1, "g": 1}

    def test_param_count_range(self):
        assert self._trace().param_count_range() == (1, 2)

    def test_duplicate_task_ids_rejected(self):
        builder = TraceBuilder("dup")
        task = builder.add_task("a", 1.0, outputs=[1])
        with pytest.raises(TraceError):
            Trace(name="dup", events=(TaskSubmitEvent(task), TaskSubmitEvent(task)))

    def test_with_name(self):
        assert self._trace().with_name("other").name == "other"

    def test_scaled_durations(self):
        scaled = self._trace().scaled_durations(2.0)
        assert scaled.total_work_us == pytest.approx(12.0)
        assert scaled.metadata["duration_scale"] == 2.0

    def test_scaled_durations_invalid(self):
        with pytest.raises(TraceError):
            self._trace().scaled_durations(0.0)

    def test_iteration(self):
        trace = self._trace()
        assert len(list(iter(trace))) == len(trace) == 3

    def test_metadata_preserved(self):
        assert self._trace().metadata["k"] == "v"


class TestEvents:
    def test_taskwait_on_validates_address(self):
        with pytest.raises(TraceError):
            TaskwaitOnEvent(address=-5)

    def test_event_kinds(self):
        assert TaskwaitEvent().kind == "taskwait"
        assert TaskwaitOnEvent(address=0).kind == "taskwait_on"
