"""Batch-vs-scalar golden equivalence.

The batched lane backend (:func:`repro.sim.batch.run_lanes`) must
reproduce the committed golden makespans **byte-identically** — the
golden-trace guarantee extended to batched sweeps.  Every committed
golden trace is replayed under all four golden managers at several lane
widths (a single lane, a partial batch of 3, a full batch of 8), and a
mixed-lane cell (different seeds and core counts per lane, the shape a
real sweep grid produces) is checked lane-by-lane against solo scalar
runs.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

import pytest

from repro.sim.batch import LaneSpec, run_lanes
from repro.system.machine import Machine, MachineConfig
from repro.trace.serialization import load_trace
from repro.workloads.sparselu import generate_sparselu

from golden_config import GOLDEN_MANAGERS, GOLDEN_SEED

GOLDEN_DIR = Path(__file__).parent
DATA_DIR = GOLDEN_DIR / "data"
EXPECTED = json.loads((GOLDEN_DIR / "expected_makespans.json").read_text(encoding="utf-8"))

TRACE_KEYS = sorted(EXPECTED["traces"])
MANAGER_KEYS = list(GOLDEN_MANAGERS)

#: Lane widths exercised per golden trace: degenerate single-lane batch,
#: a partial batch, and a full 8-wide batch.
LANE_COUNTS = (1, 3, 8)


@lru_cache(maxsize=None)
def _golden_trace(key: str):
    return load_trace(DATA_DIR / f"{key}.json.gz")


@lru_cache(maxsize=None)
def _scalar_oracle(key: str, manager_key: str):
    factory = GOLDEN_MANAGERS[manager_key]
    config = MachineConfig(num_cores=EXPECTED["cores"])
    return Machine(factory(), config).run(_golden_trace(key))


@pytest.mark.parametrize("manager_key", MANAGER_KEYS)
@pytest.mark.parametrize("key", TRACE_KEYS)
def test_batched_replay_matches_golden_makespans(key, manager_key):
    """Every lane of every batch width equals the scalar oracle — and the
    oracle equals the committed golden makespan."""
    trace = _golden_trace(key)
    factory = GOLDEN_MANAGERS[manager_key]
    config = MachineConfig(num_cores=EXPECTED["cores"])
    expected = EXPECTED["traces"][key]["makespans_us"][manager_key]

    scalar = _scalar_oracle(key, manager_key)
    assert scalar.makespan_us == expected, (
        f"{manager_key} on golden {key}: scalar oracle itself drifted "
        f"from the committed makespan"
    )

    for lane_count in LANE_COUNTS:
        lanes = run_lanes([
            LaneSpec(trace=trace, manager=factory(), config=config)
            for _ in range(lane_count)
        ])
        assert len(lanes) == lane_count
        for index, lane in enumerate(lanes):
            assert lane == scalar, (
                f"{manager_key} on golden {key}: lane {index} of a "
                f"{lane_count}-lane batch diverged from Machine.run — "
                f"batched makespan {lane.makespan_us!r} != golden {expected!r}"
            )


@pytest.mark.parametrize("manager_key", MANAGER_KEYS)
def test_mixed_lane_cell_matches_solo_runs(manager_key):
    """A sweep-shaped mixed cell — one lane per (seed, cores) point, all
    different — equals the corresponding solo scalar runs exactly."""
    factory = GOLDEN_MANAGERS[manager_key]
    cell = [
        (generate_sparselu(scale=0.02, seed=GOLDEN_SEED + index), cores)
        for index, cores in enumerate((2, 4, 8, 16))
    ]
    solo = [
        Machine(factory(), MachineConfig(num_cores=cores)).run(trace)
        for trace, cores in cell
    ]
    batch = run_lanes([
        LaneSpec(trace=trace, manager=factory(),
                 config=MachineConfig(num_cores=cores))
        for trace, cores in cell
    ])
    assert batch == solo
