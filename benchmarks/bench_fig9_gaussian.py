"""Figure 9 — Gaussian elimination on Nexus++, Nexus# 1 TG and Nexus# 2 TG.

The Gaussian-elimination pattern (Figure 6) is the worst case for the
Nexus# distribution: every wave of update tasks reads the same pivot-row
address, so one task graph receives all the work.  The paper's findings,
which the assertions below check on smaller matrices:

* Nexus# with 2 task graphs is the best hardware configuration, but only
  by a modest margin over Nexus++ (10-19 % in the paper);
* speedup grows with the matrix size (larger tasks amortise the
  per-task manager latency);
* adding task graphs does not produce the near-linear gains seen for
  h264dec, because the distribution is maximally unfair here.
"""

import pytest

from repro.analysis.figures import figure9_report

MATRIX_SIZES = (150, 250)
CORE_COUNTS = (1, 8, 64)


def test_figure9_gaussian_elimination(benchmark, report_recorder):
    report = benchmark.pedantic(
        figure9_report,
        kwargs={"matrix_sizes": MATRIX_SIZES, "core_counts": CORE_COUNTS},
        rounds=1, iterations=1,
    )
    report_recorder("fig9_gaussian", report["text"])
    studies = report["studies"]

    for matrix in MATRIX_SIZES:
        study = studies[matrix]
        two_tg = study.curves["Nexus# 2TG"].max_speedup
        one_tg = study.curves["Nexus# 1TG"].max_speedup
        nexuspp = study.curves["Nexus++"].max_speedup
        # Nexus# 2 TG is the best non-ideal configuration...
        assert two_tg >= one_tg
        assert two_tg >= nexuspp
        # ...but the advantage over Nexus++ stays modest (worst-case
        # distribution): well under 2x, vs. the >3x gaps seen on h264dec.
        assert two_tg <= 2.0 * nexuspp

    # Larger matrices (larger tasks) scale better, as in the paper.
    assert (
        studies[MATRIX_SIZES[1]].curves["Nexus# 2TG"].max_speedup
        > studies[MATRIX_SIZES[0]].curves["Nexus# 2TG"].max_speedup
    )
