"""Nexus# — the distributed hardware task manager (the paper's contribution).

Nexus# replaces the single task graph of Nexus++ with ``n`` independent
task graphs and scatters the parameters of incoming tasks over them with
the XOR-fold hash of :mod:`repro.nexus.distribution`.  The pipeline
(Section IV, Figures 2/4/5) becomes:

1. **Input Parser (IP)** — receives the header (2 cycles) and each
   48-bit parameter (2 cycles), *immediately* forwarding every parameter
   to its task graph's New Args. buffer, and finally writes the task
   descriptor to the Task Pool (1 cycle);
2. **Insertion (IN)** — each task graph independently inserts the
   parameters queued at its New Args. buffer (5 cycles per parameter,
   after the buffer's 3-cycle fall-through);
3. **Arbitration (AR)** — the Dependence Counts Arbiter gathers the
   per-task-graph results, concludes the task's final dependence count
   and forwards ready tasks to the Internal Ready Tasks buffer;
4. **Write Back (WB)** — ready task ids are translated through the
   Function Pointers table and handed to the Nexus IO unit (3 cycles),
   after the ready buffer's 3-cycle fall-through.

Finished tasks follow the symmetric path: the Input Parser reads the
task's I/O list back from the Task Pool, redistributes the addresses to
the Finished Args. buffers, each task graph updates its tables and emits
the kicked-off waiters, and the arbiter decrements their dependence
counts, forwarding those reaching zero to the Write Back stage.

Unlike Nexus++, Nexus# supports the ``taskwait on`` pragma, which is what
lets the fine-grained H264dec benchmark scale (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.common.constants import (
    DEFAULT_KICKOFF_CAPACITY,
    DEFAULT_TABLE_SETS,
    DEFAULT_TABLE_WAYS,
    DEFAULT_TASK_POOL_ENTRIES,
    MAX_TASK_GRAPHS,
)
from repro.common.errors import ConfigurationError
from repro.common.units import Frequency
from repro.common.validation import check_positive
from repro.managers.base import FinishOutcome, ReadyNotification, SubmitOutcome, TaskManagerModel
from repro.nexus.arbiter import DependenceCountsArbiter
from repro.nexus.distribution import nexus_hash
from repro.nexus.timing import (
    NexusSharpTiming,
    shared_offset_tables,
    synthesis_frequency_mhz,
)
from repro.sim.resource import SerialResource
from repro.taskgraph.table import AddressTable
from repro.taskgraph.task_pool import TaskPool
from repro.taskgraph.tracker import DependencyTracker
from repro.trace.task import TaskDescriptor


@dataclass(frozen=True)
class NexusSharpConfig:
    """Configuration of a Nexus# instance."""

    #: Number of distributed task graphs (1..32).
    num_task_graphs: int = 6
    #: Manager clock frequency in MHz.  ``None`` selects the synthesis
    #: (test) frequency of Table I for the chosen number of task graphs;
    #: Figure 7(a) style experiments pass an explicit 100.0 instead.
    frequency_mhz: Optional[float] = None
    #: Pipeline latencies.
    timing: NexusSharpTiming = field(default_factory=NexusSharpTiming)
    #: Geometry of each task graph.
    table_sets: int = DEFAULT_TABLE_SETS
    table_ways: int = DEFAULT_TABLE_WAYS
    kickoff_capacity: int = DEFAULT_KICKOFF_CAPACITY
    #: Task pool entries (shared by all task graphs).
    task_pool_entries: int = DEFAULT_TASK_POOL_ENTRIES

    def __post_init__(self) -> None:
        if not 1 <= self.num_task_graphs <= MAX_TASK_GRAPHS:
            raise ConfigurationError(
                f"num_task_graphs must be in [1, {MAX_TASK_GRAPHS}], got {self.num_task_graphs}"
            )
        if self.frequency_mhz is not None:
            check_positive("frequency_mhz", self.frequency_mhz)
        check_positive("table_sets", self.table_sets)
        check_positive("table_ways", self.table_ways)
        check_positive("kickoff_capacity", self.kickoff_capacity)
        check_positive("task_pool_entries", self.task_pool_entries)

    @property
    def effective_frequency_mhz(self) -> float:
        """The frequency the manager actually runs at."""
        if self.frequency_mhz is not None:
            return self.frequency_mhz
        return synthesis_frequency_mhz(self.num_task_graphs)


class NexusSharpManager(TaskManagerModel):
    """Cycle-approximate model of the Nexus# distributed task manager."""

    supports_taskwait_on = True
    worker_overhead_us = 0.0

    def __init__(self, config: Optional[NexusSharpConfig] = None) -> None:
        self.config = config or NexusSharpConfig()
        self.name = f"Nexus# {self.config.num_task_graphs}TG"
        self._frequency = Frequency(self.config.effective_frequency_mhz)
        self._cycle_us = self._frequency.cycle_time_us
        num_tg = self.config.num_task_graphs
        self._tracker = DependencyTracker(
            num_tables=num_tg,
            distribute=lambda address: nexus_hash(address, num_tg),
            table_factory=lambda index: AddressTable(
                num_sets=self.config.table_sets,
                ways=self.config.table_ways,
                kickoff_capacity=self.config.kickoff_capacity,
                name=f"nexus#-TG{index}",
            ),
            task_pool=TaskPool(capacity=self.config.task_pool_entries, name="nexus#-task-pool"),
            distribution_key=("nexus-hash", num_tg),
        )
        timing = self.config.timing
        self._input_parser = SerialResource("nexus#-input-parser")
        # The per-task-graph insertion ports are plain next-free/busy-time
        # arrays: the submit/finish loops touch one port per access, and
        # the serial-reservation arithmetic (start = max(visible, free);
        # end = start + duration) is accumulated inline instead of one
        # SerialResource.reserve call per access.
        self._tg_next_free: List[float] = [0.0] * num_tg
        self._tg_busy_us: List[float] = [0.0] * num_tg
        self._write_back = SerialResource("nexus#-write-back")
        self._arbiter = DependenceCountsArbiter(
            cycles_per_result=timing.arbiter_cycles_per_result,
            conclude_cycles=timing.arbiter_conclude_cycles,
            decrement_cycles=timing.arbiter_decrement_cycles,
            cycle_us=self._cycle_us,
        )
        # Precomputed cycle->µs constants and per-index offset tables
        # (grown on demand): every per-access multiply in the pipeline
        # model becomes a table lookup with bit-identical values.
        cycle_us = self._cycle_us
        self._args_fifo_us = timing.args_fifo_latency_cycles * cycle_us
        self._insert_us = timing.insert_cycles_per_param * cycle_us
        self._insert_conflict_us = (
            (timing.insert_cycles_per_param + timing.set_conflict_stall_cycles) * cycle_us
        )
        # Per-index offset tables, process-shared per (timing, cycle_us):
        # batch lanes and sweep points with the same configuration alias
        # the same monotonically grown lists.
        self._tables = shared_offset_tables(timing, cycle_us)
        self._fwd_us = self._tables.fwd_us
        self._fin_fwd_us = self._tables.fin_fwd_us
        self._input_us = self._tables.input_us
        self._fin_input_us = self._tables.fin_input_us
        self._ready_latency_total_us = 0.0
        self._ready_count = 0

    # -- helpers ---------------------------------------------------------------
    def _cycles(self, cycles: float) -> float:
        return cycles * self._cycle_us

    def _grow_submit_tables(self, count: int) -> None:
        """Extend the (shared) per-parameter-index offset tables."""
        self._tables.grow_sharp_submit(count)

    def _grow_finish_tables(self, count: int) -> None:
        self._tables.grow_sharp_finish(count)

    @property
    def frequency(self) -> Frequency:
        """The manager clock actually in use."""
        return self._frequency

    @property
    def num_task_graphs(self) -> int:
        return self.config.num_task_graphs

    def reset(self) -> None:
        self._tracker.reset()
        self._input_parser.reset()
        num_tg = self.config.num_task_graphs
        self._tg_next_free = [0.0] * num_tg
        self._tg_busy_us = [0.0] * num_tg
        self._write_back.reset()
        self._arbiter.reset()
        self._ready_latency_total_us = 0.0
        self._ready_count = 0

    def prepare_program(self, program) -> None:
        self._tracker.bind_program(program)

    # -- ready-path helper --------------------------------------------------------
    def _write_back_ready(self, task_id: int, concluded_us: float, reference_us: float) -> ReadyNotification:
        """Send a ready task through the Internal Ready Tasks buffer and WB stage."""
        timing = self.config.timing
        wb_available = concluded_us + self._cycles(timing.ready_fifo_latency_cycles)
        _, wb_end = self._write_back.reserve(wb_available, self._cycles(timing.writeback_cycles))
        self._ready_latency_total_us += wb_end - reference_us
        self._ready_count += 1
        return ReadyNotification(task_id, wb_end)

    # -- TaskManagerModel --------------------------------------------------------
    def submit(self, task: TaskDescriptor, time_us: float) -> SubmitOutcome:
        result = self._tracker.insert_task(task)
        accesses = result.accesses
        num_params = task.num_params
        if num_params < 1:
            num_params = 1
        input_us = self._input_us
        if num_params >= len(input_us) or len(accesses) > len(self._fwd_us):
            self._grow_submit_tables(max(num_params, len(accesses)))
            input_us = self._input_us

        # Stage 1: Input Parser.  Parameters are forwarded to their task
        # graphs as they arrive; the descriptor is written to the Task
        # Pool at the end.  (SerialResource.reserve inlined: start =
        # max(earliest, next_free); end = start + duration.)
        parser = self._input_parser
        duration = input_us[num_params]
        next_free = parser._next_free
        ip_start = time_us if time_us > next_free else next_free
        ip_end = ip_start + duration
        parser._next_free = ip_end
        parser_stats = parser.stats
        parser_stats.reservations += 1
        parser_stats.busy_time += duration
        parser_stats.total_wait += ip_start - time_us
        parser_stats.last_busy_until = ip_end

        if not accesses:
            # A task with an empty parameter list is trivially ready; it
            # skips the task graphs entirely and is reported straight from
            # the Input Parser through the ready path.
            ready = (self._write_back_ready(task.task_id, ip_end, time_us),)
            return SubmitOutcome(accept_time_us=ip_end, ready=ready)

        # Stage 2: per-parameter insertion at the owning task graph.  One
        # serial port per task graph, accumulated arithmetically: the
        # reservation is start = max(visible, next_free), end = start +
        # occupancy, exactly what SerialResource.reserve computes.
        fwd_us = self._fwd_us
        fifo_us = self._args_fifo_us
        plain_us = self._insert_us
        conflict_us = self._insert_conflict_us
        tg_next_free = self._tg_next_free
        tg_busy_us = self._tg_busy_us
        insert_ends: List[float] = []
        append_end = insert_ends.append
        index = 0
        for access in accesses:
            visible_us = ip_start + fwd_us[index] + fifo_us
            index += 1
            occupancy_us = conflict_us if access.set_conflict else plain_us
            port = access.table_index
            next_free = tg_next_free[port]
            start = visible_us if visible_us > next_free else next_free
            tg_end = start + occupancy_us
            tg_next_free[port] = tg_end
            tg_busy_us[port] += occupancy_us
            append_end(tg_end)

        # Stage 3: the arbiter gathers one result per parameter, in the
        # order the task graphs produce them.
        insert_ends.sort()
        concluded = self._arbiter.gather(insert_ends)
        ready: tuple[ReadyNotification, ...] = ()
        if result.ready:
            ready = (self._write_back_ready(task.task_id, concluded, time_us),)

        return SubmitOutcome(accept_time_us=ip_end, ready=ready)

    def finish(self, task_id: int, time_us: float) -> FinishOutcome:
        timing = self.config.timing
        result = self._tracker.finish_task(task_id)
        accesses = result.accesses
        num_params = len(accesses)
        if num_params < 1:
            num_params = 1
        fin_input_us = self._fin_input_us
        if num_params >= len(fin_input_us) or len(accesses) > len(self._fin_fwd_us):
            self._grow_finish_tables(max(num_params, len(accesses)))
            fin_input_us = self._fin_input_us

        # The Input Parser reads the finished task's I/O list from the Task
        # Pool and redistributes the addresses to the Finished Args
        # buffers (serial reservation inlined as in submit).
        parser = self._input_parser
        duration = fin_input_us[num_params]
        next_free = parser._next_free
        fp_start = time_us if time_us > next_free else next_free
        fp_end = fp_start + duration
        parser._next_free = fp_end
        parser_stats = parser.stats
        parser_stats.reservations += 1
        parser_stats.busy_time += duration
        parser_stats.total_wait += fp_start - time_us
        parser_stats.last_busy_until = fp_end

        # Each owning task graph updates its entry and emits the kicked-off
        # waiters; the arbiter then decrements their dependence counts.
        fwd_us = self._fin_fwd_us
        fifo_us = self._args_fifo_us
        cycle_us = self._cycle_us
        update_cycles_base = timing.finish_update_cycles_per_param
        kickoff_cycles = timing.kickoff_cycles_per_waiter
        tg_next_free = self._tg_next_free
        tg_busy_us = self._tg_busy_us
        decrement_many = self._arbiter.decrement_many
        last_decrement: Dict[int, float] = {}
        index = 0
        for access in accesses:
            visible_us = fp_start + fwd_us[index] + fifo_us
            index += 1
            kicked = access.kicked_off
            occupancy_us = (update_cycles_base + kickoff_cycles * len(kicked)) * cycle_us
            port = access.table_index
            next_free = tg_next_free[port]
            start = visible_us if visible_us > next_free else next_free
            tg_end = start + occupancy_us
            tg_next_free[port] = tg_end
            tg_busy_us[port] += occupancy_us
            if kicked:
                for waiter, decrement_end in zip(kicked, decrement_many(tg_end, len(kicked))):
                    previous = last_decrement.get(waiter, 0.0)
                    if decrement_end > previous:
                        last_decrement[waiter] = decrement_end
        notifications: List[ReadyNotification] = []
        for ready_task in result.newly_ready:
            concluded = last_decrement.get(ready_task, fp_end)
            notifications.append(self._write_back_ready(ready_task, concluded, time_us))
        return FinishOutcome(ready=tuple(notifications), notify_done_us=fp_end)

    def lane_kernel(self) -> None:
        """Nexus# declines the vectorized batch lane kernel.

        The distributed pipeline is far too history-dependent to
        constant-fold: per-task-graph insertion ports, the Dependence
        Counts Arbiter's result interleaving, set-conflict stalls and
        dummy-entry occupancy all couple a task's cost to every earlier
        task's placement.  Batch lanes fall back to the scalar engine;
        they still benefit from the process-shared latency tables
        (:func:`repro.nexus.timing.shared_offset_tables`).
        """
        return None

    # -- reporting -----------------------------------------------------------------
    def describe(self) -> Mapping[str, object]:
        return {
            "name": self.name,
            "supports_taskwait_on": self.supports_taskwait_on,
            "num_task_graphs": self.config.num_task_graphs,
            "frequency_mhz": self.config.effective_frequency_mhz,
            "table_sets": self.config.table_sets,
            "table_ways": self.config.table_ways,
        }

    def statistics(self) -> Mapping[str, object]:
        per_tg_busy = list(self._tg_busy_us)
        per_tg_conflicts = [table.stats.set_conflicts for table in self._tracker.tables]
        return {
            "tasks_inserted": self._tracker.total_inserted,
            "tasks_finished": self._tracker.total_finished,
            "input_parser_busy_us": self._input_parser.stats.busy_time,
            "write_back_busy_us": self._write_back.stats.busy_time,
            "arbiter_busy_us": self._arbiter.busy_time_us,
            "task_graph_busy_us": per_tg_busy,
            "set_conflicts": per_tg_conflicts,
            "mean_ready_latency_us": (
                self._ready_latency_total_us / self._ready_count if self._ready_count else 0.0
            ),
        }
