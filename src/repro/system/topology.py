"""Core topologies and the runtime core pool.

The paper's testbench models the worker side of the machine as a single
integer — the number of identical free cores.  This module makes the
worker side a first-class, swappable dimension:

* :class:`CoreTopology` — an immutable description of the cores a
  machine owns: one *speed factor* per core (1.0 = the paper's reference
  core; 0.5 executes every task twice as slowly).  Constructors cover the
  homogeneous case, big.LITTLE-style fast/slow sets, and fully custom
  speed vectors.
* :class:`TopologySpec` — a *shape* that builds a concrete topology for
  any core count (``"biglittle:0.5"`` means "half the cores are little
  cores at half speed" regardless of whether the sweep point has 4 or
  256 cores).  Specs are picklable, content-describable (for sweep cache
  keys) and parseable from compact CLI strings.
* :class:`CorePool` — the runtime allocator: tracks which concrete cores
  are idle, always hands out the fastest idle core (ties broken by the
  lowest core id, keeping schedules deterministic), and accumulates
  per-core busy time for the utilisation reports.

With the default homogeneous topology the pool degenerates to the
paper's ``idle_cores`` counter — same dispatch order, same timings — so
golden-trace makespans are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Sequence, Tuple, Union

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class CoreTopology:
    """An immutable set of worker cores with per-core speed factors.

    A task occupying a core with speed factor ``s`` for nominal time
    ``d`` (body plus worker overhead) actually holds it for ``d / s``
    simulated micro-seconds.
    """

    #: Speed factor of each core, indexed by core id.
    speed_factors: Tuple[float, ...]
    #: Descriptive label ("homogeneous", "big_little", "custom").
    kind: str = "homogeneous"

    def __post_init__(self) -> None:
        if not self.speed_factors:
            raise ConfigurationError("a topology needs at least one core")
        if not isinstance(self.speed_factors, tuple):
            object.__setattr__(self, "speed_factors", tuple(self.speed_factors))
        for core, speed in enumerate(self.speed_factors):
            if not speed > 0:
                raise ConfigurationError(
                    f"core {core}: speed factor must be positive, got {speed!r}"
                )

    # -- constructors -------------------------------------------------------
    @classmethod
    def homogeneous(cls, num_cores: int, speed: float = 1.0) -> "CoreTopology":
        """``num_cores`` identical cores (the paper's machine model)."""
        if num_cores <= 0:
            raise ConfigurationError(f"num_cores must be positive, got {num_cores}")
        return cls(speed_factors=(speed,) * num_cores, kind="homogeneous")

    @classmethod
    def big_little(
        cls,
        num_cores: int,
        *,
        big_fraction: float = 0.5,
        big_speed: float = 1.0,
        little_speed: float = 0.5,
    ) -> "CoreTopology":
        """A big.LITTLE-style split: fast cores first, then little cores."""
        if num_cores <= 0:
            raise ConfigurationError(f"num_cores must be positive, got {num_cores}")
        if not 0.0 < big_fraction <= 1.0:
            raise ConfigurationError(f"big_fraction must be in (0, 1], got {big_fraction}")
        num_big = max(1, int(num_cores * big_fraction + 1e-9))
        num_big = min(num_big, num_cores)
        speeds = (big_speed,) * num_big + (little_speed,) * (num_cores - num_big)
        return cls(speed_factors=speeds, kind="big_little")

    @classmethod
    def from_speeds(cls, speeds: Sequence[float]) -> "CoreTopology":
        """A fully custom per-core speed vector."""
        return cls(speed_factors=tuple(float(s) for s in speeds), kind="custom")

    # -- queries ------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self.speed_factors)

    @property
    def is_uniform_unit_speed(self) -> bool:
        """True for the paper's reference machine: every core at speed 1.0."""
        return all(speed == 1.0 for speed in self.speed_factors)

    def describe(self) -> Dict[str, object]:
        """Serialisable identity (results metadata, cache keys)."""
        return {
            "kind": self.kind,
            "num_cores": self.num_cores,
            "speed_factors": list(self.speed_factors),
        }


@dataclass(frozen=True)
class TopologySpec:
    """A topology *shape*, applied to a concrete core count at run time.

    Stored on sweep grid points (which carry the core count as a separate
    axis), so one spec spans the whole ``core_counts`` axis.
    """

    kind: str = "homogeneous"
    #: Homogeneous: speed of every core.
    speed: float = 1.0
    #: big.LITTLE: fraction of big cores and the two speed levels.
    big_fraction: float = 0.5
    big_speed: float = 1.0
    little_speed: float = 0.5
    #: Custom: explicit per-core speeds (the core count must match).
    speeds: Tuple[float, ...] = ()

    def build(self, num_cores: int) -> CoreTopology:
        """Materialise the concrete topology for ``num_cores`` cores."""
        if self.kind == "homogeneous":
            return CoreTopology.homogeneous(num_cores, speed=self.speed)
        if self.kind == "big_little":
            return CoreTopology.big_little(
                num_cores,
                big_fraction=self.big_fraction,
                big_speed=self.big_speed,
                little_speed=self.little_speed,
            )
        if self.kind == "custom":
            if len(self.speeds) != num_cores:
                raise ConfigurationError(
                    f"custom topology lists {len(self.speeds)} core speeds but the "
                    f"machine has {num_cores} cores"
                )
            return CoreTopology.from_speeds(self.speeds)
        raise ConfigurationError(f"unknown topology kind {self.kind!r}")

    def describe(self) -> Dict[str, object]:
        """Canonical serialisable identity (cache keys hash this)."""
        if self.kind == "homogeneous":
            return {"kind": "homogeneous", "speed": self.speed}
        if self.kind == "big_little":
            return {
                "kind": "big_little",
                "big_fraction": self.big_fraction,
                "big_speed": self.big_speed,
                "little_speed": self.little_speed,
            }
        return {"kind": "custom", "speeds": list(self.speeds)}

    def canonical(self) -> str:
        """Round-trippable compact string form (used by sweep points)."""
        if self.kind == "homogeneous":
            if self.speed == 1.0:
                return "homogeneous"
            return f"homogeneous:{self.speed:g}"
        if self.kind == "big_little":
            return (
                f"biglittle:{self.big_fraction:g}:{self.little_speed:g}"
                + (f":{self.big_speed:g}" if self.big_speed != 1.0 else "")
            )
        return "speeds:" + ",".join(f"{s:g}" for s in self.speeds)

    @classmethod
    def parse(cls, text: str) -> "TopologySpec":
        """Parse a compact topology string.

        Recognised forms::

            homogeneous              # the default machine (speed 1.0)
            homogeneous:<speed>
            biglittle                # half big @1.0, half little @0.5
            biglittle:<little_speed>
            biglittle:<big_fraction>:<little_speed>[:<big_speed>]
            speeds:<s0>,<s1>,...     # explicit per-core speeds
        """
        token = text.strip().lower()
        try:
            if token in ("homogeneous", "homo", "flat"):
                return cls()
            if token.startswith("homogeneous:"):
                return cls(speed=float(token.split(":", 1)[1]))
            if token in ("biglittle", "big_little", "big.little"):
                return cls(kind="big_little")
            for prefix in ("biglittle:", "big_little:", "big.little:"):
                if token.startswith(prefix):
                    parts = token[len(prefix):].split(":")
                    if len(parts) == 1:
                        return cls(kind="big_little", little_speed=float(parts[0]))
                    if len(parts) == 2:
                        return cls(kind="big_little", big_fraction=float(parts[0]),
                                   little_speed=float(parts[1]))
                    if len(parts) == 3:
                        return cls(kind="big_little", big_fraction=float(parts[0]),
                                   little_speed=float(parts[1]), big_speed=float(parts[2]))
                    raise ValueError("too many ':' fields")
            if token.startswith("speeds:"):
                speeds = tuple(float(s) for s in token[len("speeds:"):].split(",") if s)
                if not speeds:
                    raise ValueError("empty speed list")
                return cls(kind="custom", speeds=speeds)
        except ValueError as exc:
            raise ConfigurationError(f"malformed topology spec {text!r}: {exc}") from exc
        raise ConfigurationError(
            f"unknown topology spec {text!r}; expected homogeneous[:speed], "
            "biglittle[:fraction][:little_speed][:big_speed] or speeds:<s0>,<s1>,..."
        )


TopologyLike = Union[str, TopologySpec, CoreTopology]


def resolve_topology(topology: TopologyLike, num_cores: int) -> CoreTopology:
    """Normalise any accepted topology form to a concrete :class:`CoreTopology`."""
    if isinstance(topology, CoreTopology):
        if topology.num_cores != num_cores:
            raise ConfigurationError(
                f"topology has {topology.num_cores} cores but the machine is "
                f"configured for {num_cores}"
            )
        return topology
    if isinstance(topology, TopologySpec):
        return topology.build(num_cores)
    if isinstance(topology, str):
        return TopologySpec.parse(topology).build(num_cores)
    raise ConfigurationError(f"cannot interpret {topology!r} as a topology")


def canonical_topology(topology: TopologyLike) -> str:
    """Canonical string form of a topology spec (sweep axis normalisation)."""
    if isinstance(topology, CoreTopology):
        raise ConfigurationError(
            "sweep axes take topology *shapes* (strings or TopologySpec), not a "
            "concrete CoreTopology bound to one core count"
        )
    if isinstance(topology, TopologySpec):
        return topology.canonical()
    return TopologySpec.parse(topology).canonical()


class CorePool:
    """Runtime allocator of the concrete cores of a :class:`CoreTopology`.

    The pool always hands out the *fastest* idle core (ties broken by the
    lowest core id), which is the deterministic generalisation of the
    paper's anonymous free-core counter: on a homogeneous topology the
    chosen core never affects timing, and on a heterogeneous one work
    gravitates to the fast cores first, exactly like a speed-aware RTS.
    """

    __slots__ = ("topology", "speeds", "busy_us", "idle_ranks", "_order", "_rank_of")

    def __init__(self, topology: CoreTopology) -> None:
        self.topology = topology
        speeds = topology.speed_factors
        self.speeds = speeds
        num_cores = len(speeds)
        self.busy_us: List[float] = [0.0] * num_cores
        # Dispatch order: fastest first, then lowest core id.  Ranks are
        # what lives in the idle heap, so heap comparisons are plain ints.
        order = sorted(range(num_cores), key=lambda core: (-speeds[core], core))
        self._order = order
        rank_of = [0] * num_cores
        for rank, core in enumerate(order):
            rank_of[core] = rank
        self._rank_of = rank_of
        #: Min-heap of idle core ranks.  Public *read-only* view so the
        #: machine's hot loop can test emptiness without a method call;
        #: mutate only via :meth:`acquire` / :meth:`release`.
        self.idle_ranks: List[int] = list(range(num_cores))  # already a valid heap

    # -- queries ------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self.speeds)

    @property
    def idle_count(self) -> int:
        return len(self.idle_ranks)

    @property
    def busy_count(self) -> int:
        return len(self.speeds) - len(self.idle_ranks)

    # -- allocation ---------------------------------------------------------
    def acquire(self) -> int:
        """Claim and return the fastest idle core id."""
        if not self.idle_ranks:
            raise ConfigurationError("acquire() with no idle core")
        return self._order[heappop(self.idle_ranks)]

    def release(self, core: int) -> None:
        """Return ``core`` to the idle set."""
        heappush(self.idle_ranks, self._rank_of[core])

    def add_busy(self, core: int, duration_us: float) -> None:
        """Account ``duration_us`` of busy time to ``core``."""
        self.busy_us[core] += duration_us

    def reset(self) -> None:
        """All cores idle, busy counters cleared."""
        self.busy_us = [0.0] * len(self.speeds)
        self.idle_ranks = list(range(len(self.speeds)))
