"""Seeded workload fuzzer: random dynamic spawn trees with controlled shape.

:func:`fuzz_program` generates a random :class:`~repro.trace.dynamic.
DynamicProgram` from a :class:`FuzzSpec` — a fully seeded description of
the tree shape (depth, fan-out), the address-conflict density, and the
barrier behaviour of both the master and the spawned tasks.  It is the
workload side of the differential fuzz suite (``tests/fuzz/``): every
spec replays deterministically, so a failing seed is a reproducible
regression case.

Guarantees (by construction):

* **Deterministic** — the entire tree (requests, addresses, durations,
  barrier placement) is prebuilt depth-first from ``make_rng(seed)``
  when the program is created; bodies only replay prebuilt requests, so
  structure never depends on run interleaving (the contract in
  :mod:`repro.trace.dynamic`).
* **Deadlock-free** — conflict addresses are only ever shared between
  *siblings* (tasks spawned by the same parent): a later sibling may
  read or ``inout`` an earlier sibling's output.  Sibling address waits
  point backwards in insertion order and never involve an ancestor, so
  they cannot close a cycle with ``taskwait`` edges.
* **Joined** — the master program always ends with a full ``taskwait``,
  so dangling children (tasks whose parent finished without joining
  them — generated with ``1 - join_probability``) still drain before
  the program ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.trace.dynamic import (
    Compute,
    DynamicProgram,
    Spawn,
    Taskwait,
    TaskwaitOn,
    TaskRequest,
    task_request,
)
from repro.workloads.addressing import AddressSpace


@dataclass(frozen=True)
class FuzzSpec:
    """Knobs of one fuzzed dynamic program (hashable, replayable)."""

    #: RNG seed; the sole source of randomness.
    seed: int
    #: Maximum spawn-tree depth below the roots (0 = flat programs).
    max_depth: int = 3
    #: Maximum children a task spawns (actual count is drawn per task).
    max_children: int = 3
    #: Number of root tasks the master submits.
    roots: int = 4
    #: Probability that a task reads / inouts an earlier sibling's output.
    conflict_density: float = 0.4
    #: Probability that a ``conflict`` parameter is ``inout`` (else ``in``).
    inout_probability: float = 0.3
    #: Probability a parent joins its children with a final ``taskwait``
    #: (otherwise they dangle until an ancestor barrier or program end).
    join_probability: float = 0.8
    #: Probability of a mid-body ``taskwait`` between two spawns.
    mid_taskwait_probability: float = 0.2
    #: Probability the master inserts a barrier between two roots
    #: (``taskwait on`` one-third of the time, full ``taskwait`` else).
    master_barrier_probability: float = 0.4
    #: Task compute-duration bounds (µs).
    duration_range_us: Tuple[float, float] = (0.5, 20.0)
    #: Hard cap on the number of spawned tasks (bounds runaway trees).
    max_tasks: int = 400
    #: Probability a spawned child is itself allowed to spawn (scaled
    #: down with depth, so trees thin out naturally).
    recurse_probability: float = 0.7

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise ConfigurationError(f"max_depth must be >= 0, got {self.max_depth}")
        if self.max_children < 0:
            raise ConfigurationError(f"max_children must be >= 0, got {self.max_children}")
        if self.roots <= 0:
            raise ConfigurationError(f"roots must be positive, got {self.roots}")
        if self.max_tasks <= 0:
            raise ConfigurationError(f"max_tasks must be positive, got {self.max_tasks}")
        low, high = self.duration_range_us
        if low < 0 or high < low:
            raise ConfigurationError(f"invalid duration range {self.duration_range_us}")
        for name in ("conflict_density", "inout_probability", "join_probability",
                     "mid_taskwait_probability", "master_barrier_probability",
                     "recurse_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    def describe(self) -> dict:
        """Serialisable identity (used for corpus files and metadata)."""
        return {
            "seed": self.seed,
            "max_depth": self.max_depth,
            "max_children": self.max_children,
            "roots": self.roots,
            "conflict_density": self.conflict_density,
            "inout_probability": self.inout_probability,
            "join_probability": self.join_probability,
            "mid_taskwait_probability": self.mid_taskwait_probability,
            "master_barrier_probability": self.master_barrier_probability,
            "duration_range_us": list(self.duration_range_us),
            "max_tasks": self.max_tasks,
            "recurse_probability": self.recurse_probability,
        }


def fuzz_program(spec: FuzzSpec) -> DynamicProgram:
    """Generate the random dynamic program described by ``spec``.

    >>> program = fuzz_program(FuzzSpec(seed=42))
    >>> program.elaborate().num_tasks == program.metadata["num_tasks"]
    True
    >>> fuzz_program(FuzzSpec(seed=42)).elaborate() == program.elaborate()
    True
    """
    rng = make_rng(spec.seed, "fuzz-program")
    space = AddressSpace(seed=spec.seed)
    low, high = spec.duration_range_us
    budget = [spec.max_tasks]

    def draw_duration() -> float:
        return float(rng.uniform(low, high)) if high > low else float(low)

    def build_task(depth: int, sibling_outputs: List[int]) -> Tuple[TaskRequest, int]:
        """One task at ``depth``; returns (request, its output address)."""
        budget[0] -= 1
        output = space.alloc_one()
        inputs: List[int] = []
        inouts: List[int] = []
        for addr in sibling_outputs:
            if rng.random() < spec.conflict_density:
                (inouts if rng.random() < spec.inout_probability else inputs).append(addr)
        duration = draw_duration()
        may_recurse = (
            depth < spec.max_depth
            and spec.max_children > 0
            and budget[0] > 0
            and rng.random() < spec.recurse_probability
        )
        if not may_recurse:
            return task_request(
                "fz_leaf", duration,
                inputs=inputs, outputs=[output], inouts=inouts), output
        num_children = int(rng.integers(1, spec.max_children + 1))
        children: List[TaskRequest] = []
        child_outputs: List[int] = []
        for _ in range(num_children):
            if budget[0] <= 0:
                break
            child, child_output = build_task(depth + 1, child_outputs)
            children.append(child)
            child_outputs.append(child_output)
        # Deterministic body plan drawn at construction time: segment
        # durations around the spawns, optional mid-body joins, and the
        # final join.  The declared duration is the exact compute sum.
        segments = [draw_duration() * 0.25 for _ in range(len(children) + 1)]
        mid_joins = [rng.random() < spec.mid_taskwait_probability
                     for _ in range(len(children))]
        join_at_end = rng.random() < spec.join_probability
        total_compute = float(sum(segments))

        def body(children=tuple(children), segments=tuple(segments),
                 mid_joins=tuple(mid_joins), join_at_end=join_at_end):
            yield Compute(segments[0])
            for index, child in enumerate(children):
                _ = yield Spawn(child)
                if mid_joins[index]:
                    yield Taskwait()
                yield Compute(segments[index + 1])
            if join_at_end:
                yield Taskwait()

        node = task_request(
            "fz_node", total_compute,
            inputs=inputs, outputs=[output], inouts=inouts, body=body)
        return node, output

    roots: List[TaskRequest] = []
    root_outputs: List[int] = []
    barriers: List[Optional[object]] = []
    for _ in range(spec.roots):
        if budget[0] <= 0:
            break
        root, root_output = build_task(0, root_outputs)
        roots.append(root)
        root_outputs.append(root_output)
        if rng.random() < spec.master_barrier_probability:
            if root_outputs and rng.random() < (1.0 / 3.0):
                barriers.append(TaskwaitOn(
                    root_outputs[int(rng.integers(0, len(root_outputs)))]))
            else:
                barriers.append(Taskwait())
        else:
            barriers.append(None)
    num_tasks = spec.max_tasks - budget[0]

    def master(roots=tuple(roots), barriers=tuple(barriers)):
        for root, barrier in zip(roots, barriers):
            _ = yield Spawn(root)
            if barrier is not None:
                yield barrier
        yield Taskwait()

    return DynamicProgram(
        f"fuzz-{spec.seed}", master,
        metadata={"workload": "fuzz", "num_tasks": num_tasks, **spec.describe()},
    )
