"""The event-driven multicore machine simulator.

The machine reproduces the paper's testbench loop (Section V-B):

    "It submits new tasks to Nexus#, receives ready task information from
    it, schedules ready tasks to worker cores and simulates their
    execution, and finally notifies Nexus# of finished tasks."

The master thread walks the trace: every task submission goes to the
manager (whose ``accept_time`` throttles the submission rate — IO
back-pressure for the hardware managers, software creation cost for
Nanos), every ``taskwait`` blocks until all outstanding tasks finish, and
every ``taskwait on`` blocks until the last writer of the given address
finishes — unless the manager does not support the pragma (Nexus++), in
which case it degrades to a full ``taskwait`` exactly as the paper
describes.

The runtime is layered:

* the event loop runs on the shared :class:`repro.sim.engine.Simulator`
  kernel (one event per submission step, ready notification and task
  completion, with completions processed first at equal timestamps);
* ready-task dispatch is delegated to a pluggable
  :class:`repro.system.scheduling.SchedulerPolicy` (FIFO by default,
  reproducing the paper's "free worker cores start executing tasks
  directly after they are reported as ready");
* worker cores live in a :class:`repro.system.topology.CorePool` built
  from a :class:`~repro.system.topology.CoreTopology`, so heterogeneous
  (e.g. big.LITTLE) machines are one config knob away — a task occupying
  a core of speed ``s`` holds it for ``(overhead + duration) / s``;
* per-task times land in a struct-of-arrays
  :class:`repro.system.timeline.TaskTimeline` (preallocated, indexed by
  task id), and each trace is compiled once into flat op/operand arrays
  that are cached on the trace object, so replaying the same trace across
  managers, core counts and policies skips all per-event type dispatch.

With the default configuration (FIFO policy, homogeneous unit-speed
topology) the schedule — and therefore every golden-trace makespan — is
bit-identical to the pre-refactor monolithic loop.

Two replay paths share the layers above:

* :meth:`Machine.run` compiles a materialised trace into flat op arrays
  (cached on the trace) — the fastest path when the trace fits in RAM;
* :meth:`Machine.run_stream` pulls events incrementally from any
  :class:`~repro.trace.stream.TaskStream` through a windowed lookahead
  buffer, keeping live state bounded by the in-flight window — the path
  for million-task workloads (optionally back-pressured via
  ``max_in_flight``).  Default-configuration schedules are bit-identical
  between the two paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.common.errors import SimulationError
from repro.common.validation import check_positive
from repro.managers.base import TaskManagerModel
from repro.sim.engine import Simulator
from repro.system.results import MachineResult
from repro.system.scheduling import PolicyLike, SchedulerPolicy, make_policy
from repro.system.timeline import TaskTimeline
from repro.system.topology import CorePool, CoreTopology, TopologyLike, resolve_topology
from repro.trace.dag import validate_schedule
from repro.trace.dynamic import DynamicProgram
from repro.trace.events import TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent, TraceEvent
from repro.trace.stream import TaskStream, as_stream
from repro.trace.task import TaskDescriptor
from repro.trace.trace import Trace

#: Anything `Machine.run_stream` accepts as a task source.
StreamLike = Union[TaskStream, Trace, Iterable[TraceEvent], DynamicProgram]

#: Default number of trace events buffered ahead of the master thread in
#: streaming mode (amortises chunked-file decode; see `run_stream`).
DEFAULT_LOOKAHEAD_EVENTS = 1024

# Event kinds, ordered by processing priority at equal timestamps: task
# completions first (they free cores and resolve barriers), then ready
# notifications, then master progress.
_PRIORITY_DONE = 0
_PRIORITY_READY = 1
_PRIORITY_MASTER = 2

_KIND_DONE = "task-done"
_KIND_READY = "task-ready"
_KIND_MASTER = "master-step"

# Compiled trace op codes.
_OP_SUBMIT = 0
_OP_WAIT = 1
_OP_WAIT_ON = 2

#: Attribute name under which a trace caches its compiled form.
_COMPILED_ATTR = "_compiled_machine_program"


class _CompiledTrace:
    """Flat, type-dispatch-free representation of a trace's event list.

    One entry per trace event: an op code plus preresolved operands (the
    descriptor, the precomputed written-address tuple, the ``taskwait
    on`` address).  Compiling once per trace removes the per-event
    ``isinstance`` chain and the per-parameter direction checks from the
    master loop; the compiled form is cached on the trace object, so
    sweeps replaying one trace across many grid cells compile it once.
    """

    __slots__ = ("ops", "tasks", "write_addrs", "wait_addrs", "num_tasks",
                 "task_ids", "slot_of", "task_by_slot")

    def __init__(self, trace: Trace) -> None:
        events = trace.events
        count = len(events)
        self.ops: List[int] = [0] * count
        self.tasks: List[Optional[TaskDescriptor]] = [None] * count
        self.write_addrs: List[Tuple[int, ...]] = [()] * count
        self.wait_addrs: List[int] = [0] * count
        task_ids: List[int] = []
        task_by_slot: List[TaskDescriptor] = []
        for index, event in enumerate(events):
            if isinstance(event, TaskSubmitEvent):
                task = event.task
                self.ops[index] = _OP_SUBMIT
                self.tasks[index] = task
                self.write_addrs[index] = task.output_addresses
                task_ids.append(task.task_id)
                task_by_slot.append(task)
            elif isinstance(event, TaskwaitEvent):
                self.ops[index] = _OP_WAIT
            elif isinstance(event, TaskwaitOnEvent):
                self.ops[index] = _OP_WAIT_ON
                self.wait_addrs[index] = event.address
            else:
                raise SimulationError(f"unknown trace event {event!r}")
        self.num_tasks = len(task_ids)
        self.task_ids = task_ids
        self.task_by_slot = task_by_slot
        # Dense ids (TraceBuilder's invariant) index arrays directly;
        # sparse ids (hand-extended traces) go through an explicit map.
        if task_ids == list(range(len(task_ids))):
            self.slot_of: Optional[Dict[int, int]] = None
        else:
            self.slot_of = {task_id: slot for slot, task_id in enumerate(task_ids)}


def _compile_trace(trace: Trace) -> _CompiledTrace:
    """Return the cached compiled form of ``trace`` (compile on first use)."""
    compiled = trace.__dict__.get(_COMPILED_ATTR)
    if compiled is None:
        compiled = _CompiledTrace(trace)
        # Trace is a frozen dataclass; the cache is invisible to equality,
        # hashing and (via Trace.__getstate__) pickling.
        object.__setattr__(trace, _COMPILED_ATTR, compiled)
    return compiled


@dataclass(frozen=True)
class MachineConfig:
    """Configuration of a machine simulation."""

    #: Number of worker cores executing tasks.
    num_cores: int
    #: When true, the resulting schedule is checked against the reference
    #: dependency DAG (slow for very large traces; used by tests).
    validate: bool = False
    #: When true, per-task schedule times are kept in the result.  When
    #: false the machine skips collecting them entirely (no per-task
    #: timeline is allocated), which saves memory on very large sweeps —
    #: unless ``validate`` forces collection.
    keep_schedule: bool = True
    #: Ready-task dispatch discipline: a policy name ("fifo", "sjf",
    #: "ljf", "locality") or a :class:`SchedulerPolicy` instance.
    scheduler: PolicyLike = "fifo"
    #: Worker-core topology: a spec string ("homogeneous",
    #: "biglittle:0.5", "speeds:1,1,0.5,0.5"), a
    #: :class:`~repro.system.topology.TopologySpec`, or a concrete
    #: :class:`~repro.system.topology.CoreTopology` (must match
    #: ``num_cores``).
    topology: TopologyLike = "homogeneous"
    #: Dynamic runs only: when true, a task suspended in a task-level
    #: ``taskwait`` keeps its core blocked until its children drain
    #: (naive tied-task semantics; deadlocks when the spawn tree is
    #: deeper than the core count).  The default releases the core at
    #: the scheduling point, like the OmpSs runtime.
    taskwait_holds_core: bool = False

    def __post_init__(self) -> None:
        check_positive("num_cores", self.num_cores)


class Machine:
    """Simulates one trace on one manager over a configured core topology."""

    def __init__(self, manager: TaskManagerModel, config: MachineConfig) -> None:
        self.manager = manager
        self.config = config
        self.policy: SchedulerPolicy = make_policy(config.scheduler)
        self.topology: CoreTopology = resolve_topology(config.topology, config.num_cores)
        #: Events dispatched by the most recent :meth:`run` (throughput metric).
        self.last_events_processed = 0
        #: Task ids in the order the most recent *dynamic* run dispatched
        #: their ready notifications (the differential fuzz suite pins
        #: this between the two tracking paths); ``()`` after static runs.
        self.last_ready_order: Tuple[int, ...] = ()

    # -- public API -------------------------------------------------------------
    def run(self, trace: Union[Trace, DynamicProgram]) -> MachineResult:
        """Replay ``trace`` and return the resulting schedule and metrics.

        A :class:`~repro.trace.dynamic.DynamicProgram` source runs on the
        dynamic engine with the **compiled** tracking path (a growable
        access program bound to the manager); see :meth:`run_dynamic`.
        """
        if isinstance(trace, DynamicProgram):
            return self.run_dynamic(trace, compiled=True)
        try:
            return self._run_trace(trace)
        except BaseException:
            self._abandon()
            raise

    def _abandon(self) -> None:
        """Clear per-run manager bindings after a failed replay.

        Without this, a run that raises mid-flight leaves the manager's
        dependency tracker bound to the trace's shared
        ``Trace.access_program()`` cache with tasks still in flight —
        poisoning later direct use of the manager (``bind_program``
        refuses to rebind) in the same process.
        """
        try:
            self.manager.abandon_run()
        except Exception:
            # The original exception is what the caller needs to see.
            pass

    def _run_trace(self, trace: Trace) -> MachineResult:
        manager = self.manager
        manager.reset()
        # Hand the manager the trace's compiled access program so its
        # dependency tracker can run over preresolved int arrays (managers
        # without a tracker ignore this).
        manager.prepare_trace(trace)
        policy = self.policy
        policy.reset()
        pool = CorePool(self.topology)
        compiled = _compile_trace(trace)

        sim = Simulator()
        queue = sim.queue
        push = queue.push

        # --- state -------------------------------------------------------------
        ops = compiled.ops
        op_tasks = compiled.tasks
        op_write_addrs = compiled.write_addrs
        op_wait_addrs = compiled.wait_addrs
        num_events = len(ops)
        num_tasks = compiled.num_tasks
        slot_of = compiled.slot_of
        task_by_slot = compiled.task_by_slot

        event_index = 0
        master_time = 0.0
        master_blocked: Optional[Tuple[str, Optional[int]]] = None
        master_done = False
        outstanding = 0

        last_writer: Dict[int, int] = {}
        dispatched = bytearray(num_tasks)
        finished = bytearray(num_tasks)
        finished_count = 0
        core_busy_us = 0.0

        collect = self.config.keep_schedule or self.config.validate
        timeline = TaskTimeline(
            num_tasks,
            task_ids=None if slot_of is None else compiled.task_ids,
        ) if collect else None
        if timeline is not None:
            submit_arr = timeline.submit
            ready_arr = timeline.ready
            start_arr = timeline.start
            finish_arr = timeline.finish
            core_arr = timeline.core

        worker_overhead = manager.worker_overhead_us
        supports_taskwait_on = manager.supports_taskwait_on
        speeds = pool.speeds
        busy_us = pool.busy_us
        acquire = pool.acquire
        release = pool.release
        idle_ranks = pool.idle_ranks  # read-only emptiness view (hot path)
        wants_start_events = policy.wants_start_events
        enqueue = policy.enqueue
        select = policy.select
        policy_pending = policy.__len__
        manager_submit = manager.submit
        manager_finish = manager.finish

        # --- helpers -------------------------------------------------------------
        def start_task(task_id: int, slot: int, now: float) -> None:
            nonlocal core_busy_us
            task = task_by_slot[slot]
            core = acquire()
            nominal = worker_overhead + task.duration_us
            speed = speeds[core]
            duration = nominal if speed == 1.0 else nominal / speed
            end = now + duration
            core_busy_us += duration
            busy_us[core] += duration
            if collect:
                start_arr[slot] = now
                finish_arr[slot] = end
                core_arr[slot] = core
            if wants_start_events:
                policy.on_start(task_id, task, core, now)
            push(end, _KIND_DONE, (task_id, slot, core), _PRIORITY_DONE)

        def barrier_satisfied(now: float) -> bool:
            """Check (and clear) the master's barrier if it is resolved."""
            nonlocal master_blocked, master_time
            if master_blocked is None:
                return False
            kind, waited_task = master_blocked
            if kind == "all":
                if outstanding != 0:
                    return False
            else:
                assert waited_task is not None
                waited_slot = waited_task if slot_of is None else slot_of[waited_task]
                if not finished[waited_slot]:
                    return False
            master_blocked = None
            if now > master_time:
                master_time = now
            return True

        def advance_master(now: float) -> None:
            """Process trace events until a submission, a block, or the end."""
            nonlocal event_index, master_time, master_blocked, master_done, outstanding
            if now > master_time:
                master_time = now
            while event_index < num_events:
                op = ops[event_index]
                if op == _OP_SUBMIT:
                    task = op_tasks[event_index]
                    task_id = task.task_id
                    slot = task_id if slot_of is None else slot_of[task_id]
                    outstanding += 1
                    if collect:
                        submit_arr[slot] = master_time
                    for address in op_write_addrs[event_index]:
                        last_writer[address] = task_id
                    event_index += 1
                    outcome = manager_submit(task, master_time)
                    for notification in outcome.ready:
                        ready_id = notification.task_id
                        ready_time = notification.time_us
                        if collect:
                            ready_arr[ready_id if slot_of is None else slot_of[ready_id]] = ready_time
                        push(ready_time if ready_time > master_time else master_time,
                             _KIND_READY, ready_id, _PRIORITY_READY)
                    next_time = master_time + task.creation_overhead_us
                    if outcome.accept_time_us > next_time:
                        next_time = outcome.accept_time_us
                    if next_time < master_time:
                        raise SimulationError(
                            f"manager {manager.name} accepted task {task_id} in the past"
                        )
                    master_time = next_time
                    if event_index >= num_events:
                        master_done = True
                        return
                    pending = queue.next_time
                    if pending is not None and pending <= master_time:
                        push(master_time, _KIND_MASTER, None, _PRIORITY_MASTER)
                        return
                    # No pending event sorts before the next master step
                    # (equal-time completions/readies outrank the master's
                    # priority, so they only exist when the head is <=
                    # master_time): keep submitting inline instead of
                    # bouncing through the event queue.  Event order — and
                    # therefore the schedule — is provably unchanged.
                    continue
                if op == _OP_WAIT:
                    if outstanding == 0:
                        event_index += 1
                        continue
                    master_blocked = ("all", None)
                    return
                # op == _OP_WAIT_ON
                if not supports_taskwait_on:
                    # Nexus++-style degradation to a full taskwait
                    # (Section III of the paper).
                    if outstanding == 0:
                        event_index += 1
                        continue
                    master_blocked = ("all", None)
                    return
                writer = last_writer.get(op_wait_addrs[event_index])
                if writer is None or finished[writer if slot_of is None else slot_of[writer]]:
                    event_index += 1
                    continue
                master_blocked = ("task", writer)
                return
            master_done = True

        # --- event handlers ------------------------------------------------------
        def on_master(sim: Simulator, event) -> None:
            if master_blocked is None and not master_done:
                advance_master(event[0])

        def on_ready(sim: Simulator, event) -> None:
            task_id = event[4]
            slot = task_id if slot_of is None else slot_of[task_id]
            if dispatched[slot]:
                raise SimulationError(f"task {task_id} reported ready twice")
            dispatched[slot] = 1
            now = event[0]
            if idle_ranks:
                start_task(task_id, slot, now)
            else:
                enqueue(task_id, task_by_slot[slot], now)

        def on_done(sim: Simulator, event) -> None:
            nonlocal outstanding, finished_count
            task_id, slot, core = event[4]
            now = event[0]
            outstanding -= 1
            finished[slot] = 1
            finished_count += 1
            outcome = manager_finish(task_id, now)
            for notification in outcome.ready:
                ready_id = notification.task_id
                ready_time = notification.time_us
                if collect:
                    ready_arr[ready_id if slot_of is None else slot_of[ready_id]] = ready_time
                push(ready_time if ready_time > now else now,
                     _KIND_READY, ready_id, _PRIORITY_READY)
            # The freed core picks up the next queued ready task, if any.
            release(core)
            if policy_pending():
                next_task = select(core, now)
                if next_task is not None:
                    next_slot = next_task if slot_of is None else slot_of[next_task]
                    start_task(next_task, next_slot, now)
            # Barriers resolve on completions (cheap inline guard: the
            # master is usually not blocked).
            if master_blocked is not None and barrier_satisfied(now) and not master_done:
                push(master_time, _KIND_MASTER, None, _PRIORITY_MASTER)

        sim.on(_KIND_MASTER, on_master)
        sim.on(_KIND_READY, on_ready)
        sim.on(_KIND_DONE, on_done)

        # --- main loop ------------------------------------------------------------
        advance_master(0.0)
        sim.run()
        self.last_events_processed = sim.processed_events
        makespan = sim.now if sim.now > master_time else master_time

        # --- consistency checks -----------------------------------------------------
        if finished_count != num_tasks:
            missing = num_tasks - finished_count
            raise SimulationError(
                f"{manager.name} on {trace.name}: {missing} of {num_tasks} tasks never ran "
                "(deadlock or lost ready notification)"
            )
        if not master_done or master_blocked is not None:
            raise SimulationError(
                f"{manager.name} on {trace.name}: master thread did not reach the end of the trace"
            )

        if self.config.validate:
            assert timeline is not None
            validate_schedule(trace, timeline.start_dict(), timeline.finish_dict())

        keep = self.config.keep_schedule and timeline is not None
        return MachineResult(
            trace_name=trace.name,
            manager_name=manager.name,
            num_cores=self.config.num_cores,
            makespan_us=makespan,
            total_work_us=trace.total_work_us,
            num_tasks=num_tasks,
            submit_times=timeline.submit_dict() if keep else {},
            ready_times=timeline.ready_dict() if keep else {},
            start_times=timeline.start_dict() if keep else {},
            finish_times=timeline.finish_dict() if keep else {},
            master_finish_us=master_time,
            core_busy_us=core_busy_us,
            manager_stats=dict(manager.statistics()),
            scheduler=policy.name,
            topology=self.topology.describe(),
            per_core_busy_us=tuple(pool.busy_us),
            task_cores=timeline.core_dict() if keep else {},
        )

    def run_batch(
        self,
        traces: Iterable[Trace],
        *,
        lane_cores: Optional[Sequence[int]] = None,
        slice_events: Optional[int] = None,
    ) -> List[MachineResult]:
        """Replay many traces as lockstep lanes of the batch engine.

        Each trace becomes one lane; ``lane_cores`` optionally overrides
        the core count per lane (defaulting every lane to this machine's
        ``num_cores``), which is how a sweep grid cell — the same
        workload across seeds and core counts — maps onto one batch.
        Lanes whose configuration the vectorized kernel supports (see
        :func:`repro.sim.batch.lane_fallback_reason`) advance in
        lockstep; the rest replay sequentially on the scalar engine
        inside the same call.  Results are **byte-identical** to
        per-trace :meth:`run` calls and returned in lane order; an empty
        batch returns ``[]`` without touching either engine.
        """
        from dataclasses import replace

        from repro.sim.batch import DEFAULT_SLICE_EVENTS, LaneSpec, run_lanes

        traces = list(traces)
        if lane_cores is None:
            cores = [self.config.num_cores] * len(traces)
        else:
            cores = list(lane_cores)
            if len(cores) != len(traces):
                raise SimulationError(
                    f"lane_cores has {len(cores)} entries for {len(traces)} lanes"
                )
        lanes = [
            LaneSpec(
                trace=trace,
                manager=self.manager,
                config=self.config if count == self.config.num_cores
                else replace(self.config, num_cores=count),
            )
            for trace, count in zip(traces, cores)
        ]
        return run_lanes(
            lanes,
            slice_events=DEFAULT_SLICE_EVENTS if slice_events is None else slice_events,
        )

    def run_stream(
        self,
        stream: StreamLike,
        *,
        max_in_flight: Optional[int] = None,
        lookahead: int = DEFAULT_LOOKAHEAD_EVENTS,
    ) -> MachineResult:
        """Replay a task *stream* without materialising the trace.

        The streaming counterpart of :meth:`run`: the master thread pulls
        events incrementally from ``stream`` (a
        :class:`~repro.trace.stream.TaskStream`, a materialised
        :class:`~repro.trace.trace.Trace`, or a bare event iterable)
        through a windowed ``lookahead`` buffer, so a million-task trace
        is simulated without ever holding its task list in memory.
        Scheduler policies see exactly the same queued-ready-task picture
        as in :meth:`run` — dispatch is driven by manager ready
        notifications, which are unaffected by how the master sources its
        events — and with default settings the schedule, and therefore
        the makespan, is **bit-identical** to ``run(materialize(stream))``
        (pinned by ``tests/golden/test_stream_equivalence.py``).

        Memory-boundedness: with ``keep_schedule=False`` the machine's
        live state is O(in-flight tasks + lookahead), never O(total
        tasks).  In-flight count is workload-driven (barriers and
        dependency chains bound it naturally); ``max_in_flight`` adds
        explicit back-pressure — the master stalls once that many
        submitted tasks are outstanding and resumes as completions drain
        — which bounds RSS even for pathological fully-independent
        streams.  Note that a stall changes submission timing, so
        ``max_in_flight`` runs are only comparable to other runs with the
        same cap.

        ``keep_schedule=True`` collects per-task times into dicts (O(total
        tasks) — fine for tests, wrong for million-task runs), and
        ``validate=True`` additionally records the events to check the
        schedule against the reference DAG.

        .. note:: This loop deliberately mirrors :meth:`run` (which keeps
           its compiled-array hot path) with dict-backed state; any
           behavioural change to one loop must be applied to both, and is
           guarded by the golden equivalence tests plus the
           scheduler/topology parity matrix in
           ``tests/system/test_run_stream.py``.

        A :class:`~repro.trace.dynamic.DynamicProgram` source runs on the
        dynamic engine with the **dynamic** (access-by-access) tracking
        path — the streaming counterpart of :meth:`run`'s compiled
        dispatch; both paths are byte-identical on deterministic
        programs (``lookahead`` does not apply, ``max_in_flight``
        back-pressures the master's spawns).
        """
        if isinstance(stream, DynamicProgram):
            return self.run_dynamic(stream, compiled=False, max_in_flight=max_in_flight)
        try:
            return self._run_stream(stream, max_in_flight=max_in_flight, lookahead=lookahead)
        except BaseException:
            self._abandon()
            raise

    def _run_stream(
        self,
        stream: StreamLike,
        *,
        max_in_flight: Optional[int],
        lookahead: int,
    ) -> MachineResult:
        if max_in_flight is not None and max_in_flight <= 0:
            raise SimulationError(f"max_in_flight must be positive, got {max_in_flight}")
        if lookahead <= 0:
            raise SimulationError(f"lookahead must be positive, got {lookahead}")
        stream = as_stream(stream)
        manager = self.manager
        manager.reset()
        policy = self.policy
        policy.reset()
        pool = CorePool(self.topology)

        sim = Simulator()
        queue = sim.queue
        push = queue.push

        # --- event source ------------------------------------------------------
        source = stream.iter_events()
        buffer: deque = deque()
        source_done = False

        def refill() -> bool:
            """Top the lookahead buffer up; False when the source is dry."""
            nonlocal source_done
            if not source_done:
                take = lookahead - len(buffer)
                for event in source:
                    buffer.append(event)
                    take -= 1
                    if take <= 0:
                        break
                else:
                    source_done = True
            return bool(buffer)

        # --- state -------------------------------------------------------------
        master_time = 0.0
        master_blocked: Optional[Tuple[str, Optional[int]]] = None
        master_done = False
        outstanding = 0
        num_tasks = 0
        total_work_us = 0.0
        finished_count = 0
        core_busy_us = 0.0

        # Per-task state lives in dicts/sets bounded by the in-flight
        # window: every entry is removed when its task finishes.
        task_of: Dict[int, TaskDescriptor] = {}
        unfinished: set = set()
        dispatched: set = set()
        writes_of: Dict[int, Tuple[int, ...]] = {}
        last_writer: Dict[int, int] = {}

        validate = self.config.validate
        collect = self.config.keep_schedule or validate
        submit_times: Dict[int, float] = {}
        ready_times: Dict[int, float] = {}
        start_times: Dict[int, float] = {}
        finish_times: Dict[int, float] = {}
        task_cores: Dict[int, int] = {}
        recorded_events: List[TraceEvent] = []  # only fed when validate

        worker_overhead = manager.worker_overhead_us
        supports_taskwait_on = manager.supports_taskwait_on
        speeds = pool.speeds
        busy_us = pool.busy_us
        acquire = pool.acquire
        release = pool.release
        idle_ranks = pool.idle_ranks
        wants_start_events = policy.wants_start_events
        enqueue = policy.enqueue
        select = policy.select
        policy_pending = policy.__len__
        manager_submit = manager.submit
        manager_finish = manager.finish

        # --- helpers -------------------------------------------------------------
        def start_task(task_id: int, now: float) -> None:
            nonlocal core_busy_us
            task = task_of[task_id]
            core = acquire()
            nominal = worker_overhead + task.duration_us
            speed = speeds[core]
            duration = nominal if speed == 1.0 else nominal / speed
            end = now + duration
            core_busy_us += duration
            busy_us[core] += duration
            if collect:
                start_times[task_id] = now
                finish_times[task_id] = end
                task_cores[task_id] = core
            if wants_start_events:
                policy.on_start(task_id, task, core, now)
            push(end, _KIND_DONE, (task_id, core), _PRIORITY_DONE)

        def barrier_satisfied(now: float) -> bool:
            """Check (and clear) the master's barrier if it is resolved."""
            nonlocal master_blocked, master_time
            if master_blocked is None:
                return False
            kind, waited_task = master_blocked
            if kind == "all":
                if outstanding != 0:
                    return False
            elif kind == "task":
                if waited_task in unfinished:
                    return False
            else:  # kind == "window": back-pressure stall
                assert max_in_flight is not None
                if outstanding >= max_in_flight:
                    return False
            master_blocked = None
            if now > master_time:
                master_time = now
            return True

        def advance_master(now: float) -> None:
            """Consume stream events until a submission, a block, or the end."""
            nonlocal master_time, master_blocked, master_done, outstanding
            nonlocal num_tasks, total_work_us
            if now > master_time:
                master_time = now
            while True:
                if max_in_flight is not None and outstanding >= max_in_flight:
                    master_blocked = ("window", None)
                    return
                if not buffer and not refill():
                    master_done = True
                    return
                event = buffer.popleft()
                if validate:
                    recorded_events.append(event)
                if isinstance(event, TaskSubmitEvent):
                    task = event.task
                    task_id = task.task_id
                    if task_id in unfinished:
                        raise SimulationError(
                            f"task id {task_id} submitted while still in flight "
                            f"in stream {stream.name!r}"
                        )
                    outstanding += 1
                    num_tasks += 1
                    total_work_us += task.duration_us
                    unfinished.add(task_id)
                    task_of[task_id] = task
                    if collect:
                        submit_times[task_id] = master_time
                    write_addrs = task.output_addresses
                    if write_addrs:
                        writes_of[task_id] = write_addrs
                        for address in write_addrs:
                            last_writer[address] = task_id
                    outcome = manager_submit(task, master_time)
                    for notification in outcome.ready:
                        ready_id = notification.task_id
                        ready_time = notification.time_us
                        if collect:
                            ready_times[ready_id] = ready_time
                        push(ready_time if ready_time > master_time else master_time,
                             _KIND_READY, ready_id, _PRIORITY_READY)
                    next_time = master_time + task.creation_overhead_us
                    if outcome.accept_time_us > next_time:
                        next_time = outcome.accept_time_us
                    if next_time < master_time:
                        raise SimulationError(
                            f"manager {manager.name} accepted task {task_id} in the past"
                        )
                    master_time = next_time
                    if not buffer and not refill():
                        master_done = True
                        return
                    pending = queue.next_time
                    if pending is not None and pending <= master_time:
                        push(master_time, _KIND_MASTER, None, _PRIORITY_MASTER)
                        return
                    # Same inline-submission fast path as `run` (see the
                    # comment there): event order is provably unchanged.
                    continue
                if isinstance(event, TaskwaitEvent) or (
                    isinstance(event, TaskwaitOnEvent) and not supports_taskwait_on
                ):
                    # Nexus++-style degradation of `taskwait on` to a full
                    # taskwait (Section III of the paper).
                    if outstanding == 0:
                        continue
                    master_blocked = ("all", None)
                    return
                if not isinstance(event, TaskwaitOnEvent):
                    raise SimulationError(f"unknown trace event {event!r}")
                writer = last_writer.get(event.address)
                if writer is None:
                    # Never written, or the last writer already finished
                    # (its entry is pruned on completion).
                    continue
                master_blocked = ("task", writer)
                return

        # --- event handlers ------------------------------------------------------
        def on_master(sim: Simulator, event) -> None:
            if master_blocked is None and not master_done:
                advance_master(event[0])

        def on_ready(sim: Simulator, event) -> None:
            task_id = event[4]
            if task_id in dispatched:
                raise SimulationError(f"task {task_id} reported ready twice")
            dispatched.add(task_id)
            now = event[0]
            if idle_ranks:
                start_task(task_id, now)
            else:
                enqueue(task_id, task_of[task_id], now)

        def on_done(sim: Simulator, event) -> None:
            nonlocal outstanding, finished_count
            task_id, core = event[4]
            now = event[0]
            outstanding -= 1
            finished_count += 1
            unfinished.discard(task_id)
            dispatched.discard(task_id)
            del task_of[task_id]
            write_addrs = writes_of.pop(task_id, None)
            if write_addrs:
                for address in write_addrs:
                    if last_writer.get(address) == task_id:
                        del last_writer[address]
            outcome = manager_finish(task_id, now)
            for notification in outcome.ready:
                ready_id = notification.task_id
                ready_time = notification.time_us
                if collect:
                    ready_times[ready_id] = ready_time
                push(ready_time if ready_time > now else now,
                     _KIND_READY, ready_id, _PRIORITY_READY)
            # The freed core picks up the next queued ready task, if any.
            release(core)
            if policy_pending():
                next_task = select(core, now)
                if next_task is not None:
                    start_task(next_task, now)
            # Barriers (and back-pressure stalls) resolve on completions.
            if master_blocked is not None and barrier_satisfied(now) and not master_done:
                push(master_time, _KIND_MASTER, None, _PRIORITY_MASTER)

        sim.on(_KIND_MASTER, on_master)
        sim.on(_KIND_READY, on_ready)
        sim.on(_KIND_DONE, on_done)

        # --- main loop ------------------------------------------------------------
        advance_master(0.0)
        sim.run()
        self.last_events_processed = sim.processed_events
        makespan = sim.now if sim.now > master_time else master_time

        # --- consistency checks -----------------------------------------------------
        if finished_count != num_tasks:
            missing = num_tasks - finished_count
            raise SimulationError(
                f"{manager.name} on {stream.name}: {missing} of {num_tasks} tasks never ran "
                "(deadlock or lost ready notification)"
            )
        if not master_done or master_blocked is not None:
            raise SimulationError(
                f"{manager.name} on {stream.name}: master thread did not reach "
                "the end of the stream"
            )

        if validate:
            replayed = Trace(name=stream.name, events=tuple(recorded_events),
                             metadata=dict(stream.metadata))
            validate_schedule(replayed, dict(start_times), dict(finish_times))

        keep = self.config.keep_schedule
        return MachineResult(
            trace_name=stream.name,
            manager_name=manager.name,
            num_cores=self.config.num_cores,
            makespan_us=makespan,
            total_work_us=total_work_us,
            num_tasks=num_tasks,
            submit_times=submit_times if keep else {},
            ready_times=ready_times if keep else {},
            start_times=start_times if keep else {},
            finish_times=finish_times if keep else {},
            master_finish_us=master_time,
            core_busy_us=core_busy_us,
            manager_stats=dict(manager.statistics()),
            scheduler=policy.name,
            topology=self.topology.describe(),
            per_core_busy_us=tuple(pool.busy_us),
            task_cores=task_cores if keep else {},
        )

    def run_dynamic(
        self,
        program: DynamicProgram,
        *,
        compiled: bool = True,
        max_in_flight: Optional[int] = None,
    ) -> MachineResult:
        """Replay a dynamic task program (spawns and taskwaits at runtime).

        Tasks may be created by the master thread *and* by running tasks,
        so nothing about the task set is known at t=0; the engine lives
        in :mod:`repro.system.dynamic` (semantics documented there).

        ``compiled=True`` binds a fresh growable compiled access program
        to the manager (the tracker's preresolved-int hot path, extended
        task by task); ``compiled=False`` uses the tracker's dynamic
        access-by-access path.  Both produce byte-identical schedules on
        deterministic programs — pinned by the fuzz corpus in
        ``tests/fuzz/``.
        """
        from repro.system.dynamic import run_dynamic

        try:
            return run_dynamic(self, program, compiled=compiled,
                               max_in_flight=max_in_flight)
        except BaseException:
            self._abandon()
            raise


def simulate(
    trace: Trace,
    manager: TaskManagerModel,
    num_cores: int,
    *,
    validate: bool = False,
    keep_schedule: bool = True,
    scheduler: PolicyLike = "fifo",
    topology: TopologyLike = "homogeneous",
) -> MachineResult:
    """Convenience wrapper: run ``trace`` on ``manager`` with ``num_cores``.

    >>> from repro.managers.ideal import IdealManager
    >>> from repro.trace.trace import TraceBuilder
    >>> builder = TraceBuilder("two-independent")
    >>> _ = builder.add_task("a", duration_us=10.0, outputs=[0x1000])
    >>> _ = builder.add_task("b", duration_us=10.0, outputs=[0x1040])
    >>> builder.add_taskwait()
    >>> result = simulate(builder.build(), IdealManager(), num_cores=2)
    >>> result.makespan_us
    10.0
    >>> result.num_tasks
    2
    """
    machine = Machine(
        manager,
        MachineConfig(
            num_cores=num_cores,
            validate=validate,
            keep_schedule=keep_schedule,
            scheduler=scheduler,
            topology=topology,
        ),
    )
    return machine.run(trace)


def simulate_batch(
    traces: Iterable[Trace],
    manager: TaskManagerModel,
    num_cores: int,
    *,
    lane_cores: Optional[Sequence[int]] = None,
    validate: bool = False,
    keep_schedule: bool = True,
    scheduler: PolicyLike = "fifo",
    topology: TopologyLike = "homogeneous",
) -> List[MachineResult]:
    """Convenience wrapper around :meth:`Machine.run_batch`.

    >>> from repro.managers.ideal import IdealManager
    >>> from repro.trace.trace import TraceBuilder
    >>> builder = TraceBuilder("two-independent")
    >>> _ = builder.add_task("a", duration_us=10.0, outputs=[0x1000])
    >>> _ = builder.add_task("b", duration_us=10.0, outputs=[0x1040])
    >>> builder.add_taskwait()
    >>> trace = builder.build()
    >>> results = simulate_batch([trace, trace], IdealManager(), num_cores=2,
    ...                          lane_cores=[2, 1])
    >>> [r.makespan_us for r in results]
    [10.0, 20.0]
    """
    machine = Machine(
        manager,
        MachineConfig(
            num_cores=num_cores,
            validate=validate,
            keep_schedule=keep_schedule,
            scheduler=scheduler,
            topology=topology,
        ),
    )
    return machine.run_batch(traces, lane_cores=lane_cores)


def simulate_stream(
    stream: StreamLike,
    manager: TaskManagerModel,
    num_cores: int,
    *,
    validate: bool = False,
    keep_schedule: bool = False,
    scheduler: PolicyLike = "fifo",
    topology: TopologyLike = "homogeneous",
    max_in_flight: Optional[int] = None,
    lookahead: int = DEFAULT_LOOKAHEAD_EVENTS,
) -> MachineResult:
    """Convenience wrapper around :meth:`Machine.run_stream`.

    Unlike :func:`simulate`, ``keep_schedule`` defaults to **False**:
    collecting per-task times is O(total tasks), which defeats the point
    of streaming million-task traces.
    """
    machine = Machine(
        manager,
        MachineConfig(
            num_cores=num_cores,
            validate=validate,
            keep_schedule=keep_schedule,
            scheduler=scheduler,
            topology=topology,
        ),
    )
    return machine.run_stream(stream, max_in_flight=max_in_flight, lookahead=lookahead)


def simulate_dynamic(
    program: DynamicProgram,
    manager: TaskManagerModel,
    num_cores: int,
    *,
    compiled: bool = True,
    validate: bool = False,
    keep_schedule: bool = True,
    scheduler: PolicyLike = "fifo",
    topology: TopologyLike = "homogeneous",
    taskwait_holds_core: bool = False,
    max_in_flight: Optional[int] = None,
) -> MachineResult:
    """Convenience wrapper around :meth:`Machine.run_dynamic`.

    >>> from repro.managers.ideal import IdealManager
    >>> from repro.trace.dynamic import Compute, DynamicProgram, Spawn, Taskwait, task_request
    >>> def child(addr):
    ...     return task_request("leaf", 10.0, outputs=[addr])
    >>> def master():
    ...     _ = yield Spawn(child(0x1000))
    ...     _ = yield Spawn(child(0x1040))
    ...     yield Taskwait()
    >>> result = simulate_dynamic(DynamicProgram("pair", master), IdealManager(), num_cores=2)
    >>> result.makespan_us
    10.0
    >>> result.num_tasks
    2
    """
    machine = Machine(
        manager,
        MachineConfig(
            num_cores=num_cores,
            validate=validate,
            keep_schedule=keep_schedule,
            scheduler=scheduler,
            topology=topology,
            taskwait_holds_core=taskwait_holds_core,
        ),
    )
    return machine.run_dynamic(program, compiled=compiled, max_in_flight=max_in_flight)
