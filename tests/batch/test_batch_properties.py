"""Structural properties of the batch backend: lane isolation and edges.

Beyond the differential suite (which checks *equivalence*), these tests
pin down the batch engine's contract:

* **straggler isolation** — a lane that finishes almost immediately, or
  one that runs an order of magnitude longer than its siblings, must not
  perturb any other lane's result relative to a solo run;
* **edge cases** — empty batches, zero-task traces and single-task
  traces go through the same code paths without special-casing;
* **memory discipline** — ``keep_schedule=False`` lanes must never
  allocate per-lane timelines (that is the whole point of the flag on
  very large sweeps).
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.batch as batch_module
from repro.sim.batch import LaneSpec, run_lanes
from repro.system.machine import Machine, MachineConfig
from repro.trace.trace import TraceBuilder
from repro.workloads.fuzz import FuzzSpec, fuzz_program

from batch_manager_factories import BATCH_TEST_MANAGERS, KERNEL_MANAGERS


def _spec(seed: int, *, duration_scale: float = 1.0) -> FuzzSpec:
    return FuzzSpec(
        seed=seed,
        max_depth=2,
        max_children=3,
        roots=4,
        conflict_density=0.4,
        duration_range_us=(0.0, 30.0 * duration_scale),
        max_tasks=80,
    )


def _trace(spec: FuzzSpec):
    return fuzz_program(spec).elaborate()


# ---------------------------------------------------------------------------
# Straggler isolation
# ---------------------------------------------------------------------------

@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       manager_key=st.sampled_from(sorted(BATCH_TEST_MANAGERS)))
@settings(max_examples=10, deadline=None)
def test_long_straggler_does_not_perturb_siblings(seed, manager_key):
    """One lane with 10x-longer tasks keeps draining long after its
    siblings retire; their results must equal their solo runs exactly."""
    factory = BATCH_TEST_MANAGERS[manager_key]
    siblings = [_trace(_spec(seed)), _trace(_spec(seed ^ 0x5A5A5A))]
    straggler = _trace(_spec(seed, duration_scale=10.0))
    config = MachineConfig(num_cores=4, validate=True)

    solo = [Machine(factory(), config).run(trace) for trace in siblings]
    batch = run_lanes([
        LaneSpec(trace=siblings[0], manager=factory(), config=config),
        LaneSpec(trace=straggler, manager=factory(), config=config),
        LaneSpec(trace=siblings[1], manager=factory(), config=config),
    ])
    assert batch[0] == solo[0]
    assert batch[2] == solo[1]
    # And the straggler itself equals its own solo run.
    assert batch[1] == Machine(factory(), config).run(straggler)


@pytest.mark.parametrize("manager_key", sorted(BATCH_TEST_MANAGERS))
def test_early_finisher_does_not_perturb_siblings(manager_key):
    """A lane that retires after a single event slice leaves the
    still-running lanes bit-identical to their solo runs."""
    factory = BATCH_TEST_MANAGERS[manager_key]
    quick = TraceBuilder("quick")
    quick.add_task("only", duration_us=0.25, outputs=[0x10])
    quick_trace = quick.build()
    long_traces = [_trace(_spec(77)), _trace(_spec(78))]
    config = MachineConfig(num_cores=3, validate=True)

    solo = [Machine(factory(), config).run(trace) for trace in long_traces]
    batch = run_lanes(
        [LaneSpec(trace=quick_trace, manager=factory(), config=config)]
        + [LaneSpec(trace=t, manager=factory(), config=config) for t in long_traces],
        slice_events=1,  # retire the quick lane at the first opportunity
    )
    assert batch[1] == solo[0]
    assert batch[2] == solo[1]
    assert batch[0] == Machine(factory(), config).run(quick_trace)


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------

def test_empty_batch_returns_empty_list():
    assert run_lanes([]) == []


@pytest.mark.parametrize("manager_key", sorted(BATCH_TEST_MANAGERS))
def test_zero_task_trace_matches_scalar(manager_key):
    factory = BATCH_TEST_MANAGERS[manager_key]
    trace = TraceBuilder("empty").build()
    config = MachineConfig(num_cores=2)

    scalar = Machine(factory(), config).run(trace)
    (batch,) = run_lanes([LaneSpec(trace=trace, manager=factory(), config=config)])
    assert batch == scalar
    assert batch.makespan_us == 0.0


@pytest.mark.parametrize("manager_key", sorted(BATCH_TEST_MANAGERS))
def test_single_task_trace_matches_scalar(manager_key):
    factory = BATCH_TEST_MANAGERS[manager_key]
    builder = TraceBuilder("single")
    builder.add_task("t0", duration_us=5.0, outputs=[0x10])
    trace = builder.build()
    config = MachineConfig(num_cores=1, validate=True)

    scalar = Machine(factory(), config).run(trace)
    (batch,) = run_lanes([LaneSpec(trace=trace, manager=factory(), config=config)])
    assert batch == scalar


# ---------------------------------------------------------------------------
# Memory discipline: keep_schedule=False must not build timelines
# ---------------------------------------------------------------------------

class _ForbiddenTimeline:
    """Stands in for TaskTimeline when no lane may materialize one."""

    @staticmethod
    def from_columns(*args, **kwargs):
        raise AssertionError(
            "keep_schedule=False lane built a TaskTimeline — the batch "
            "backend must skip per-lane schedule collection entirely"
        )


@pytest.mark.parametrize("manager_key", KERNEL_MANAGERS)
def test_keep_schedule_false_allocates_no_timelines(manager_key, monkeypatch):
    factory = BATCH_TEST_MANAGERS[manager_key]
    traces = [_trace(_spec(s)) for s in (301, 302, 303)]
    config = MachineConfig(num_cores=4, keep_schedule=False)

    reference = [Machine(factory(), config).run(trace) for trace in traces]

    monkeypatch.setattr(batch_module, "TaskTimeline", _ForbiddenTimeline)
    batch = run_lanes([
        LaneSpec(trace=trace, manager=factory(), config=config)
        for trace in traces
    ])

    assert batch == reference
    for result in batch:
        assert result.start_times == {}
        assert result.finish_times == {}
        assert result.task_cores == {}
