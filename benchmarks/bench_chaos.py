#!/usr/bin/env python3
"""Chaos benchmark: what fault recovery costs, and that it stays correct.

Two sections over the :mod:`repro.distributed` fabric:

* **recovery** — one microbench grid run three ways: serial (the byte
  oracle), through a fault-free 2-worker fabric (the overhead
  baseline), and through the same fabric under the seeded ``soak``
  fault plan (frame drops/duplicates/corruption, store damage, one
  guaranteed injected worker crash, stragglers).  Reports the chaotic
  run's wall-clock overhead over the fault-free fabric run and the
  cells re-executed (`frontier.total_dispatches - total`: dispatches
  the faults wasted).  **Gates**: the chaotic JSONL must be
  byte-identical to serial, and the run must complete with every result
  accounted for — no hung frames, no lost cells.
* **time-to-recover** — from the scheduler's event timeline: the gap
  between the first worker death and the respawn of that worker's slot
  (seed 2015 makes ``local-0`` crash-eligible at epoch 0, so the kill
  is guaranteed, not probabilistic).

Run with::

    PYTHONPATH=src python benchmarks/bench_chaos.py [--quick] [--check]

Writes ``BENCH_chaos.json`` (schema 1, repo root by default).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import SweepRunner  # noqa: E402
from repro.experiments.spec import SweepSpec  # noqa: E402

#: The soak seed: local-0 is crash-eligible at epoch 0, so every run
#: contains exactly the "one worker SIGKILL mid-sweep" scenario.
CHAOS_SPEC = "soak:2015"


def _grid(quick: bool) -> SweepSpec:
    return SweepSpec(
        workloads=["microbench"],
        managers=["ideal", "nanos"],
        core_counts=[1, 2, 4, 8],
        seeds=tuple(range(60 if quick else 250)),
        scale=0.01,
    )


def _timed_run(runner: SweepRunner, spec: SweepSpec, jsonl: Path) -> float:
    start = time.perf_counter()
    runner.run(spec, jsonl_path=jsonl)
    return time.perf_counter() - start


def _recovery_window(events: List[Dict[str, object]]) -> Optional[float]:
    """Seconds from the first worker death to that slot's respawn."""
    for event in events:
        if event["event"] == "respawn":
            respawned = event["worker"]
            deaths = [e["t"] for e in events
                      if e["event"] == "death" and e["worker"] == respawned
                      and e["t"] <= event["t"]]
            if deaths:
                return float(event["t"]) - float(deaths[-1])  # type: ignore[arg-type]
    return None


def run_benchmark(quick: bool) -> Dict[str, object]:
    spec = _grid(quick)
    cells = spec.num_points()
    work = Path(tempfile.mkdtemp(prefix="bench-chaos-"))
    try:
        serial_s = _timed_run(SweepRunner(), spec, work / "serial.jsonl")

        clean_runner = SweepRunner(transport="sockets", workers=2,
                                   cache_dir=work / "clean-store")
        clean_s = _timed_run(clean_runner, spec, work / "clean.jsonl")

        chaos_runner = SweepRunner(transport="sockets", workers=2,
                                   cache_dir=work / "chaos-store",
                                   chaos=CHAOS_SPEC)
        chaos_s = _timed_run(chaos_runner, spec, work / "chaos.jsonl")

        oracle = (work / "serial.jsonl").read_bytes()
        byte_identical = ((work / "chaos.jsonl").read_bytes() == oracle
                          and (work / "clean.jsonl").read_bytes() == oracle)

        scheduler = chaos_runner.last_scheduler
        assert scheduler is not None
        redundant = scheduler.frontier.total_dispatches - cells
        all_results_in = scheduler.results_received == cells
        recover_s = _recovery_window(scheduler.events)
        kinds = [event["event"] for event in scheduler.events]

        return {
            "benchmark": "chaos",
            "schema": 1,
            "config": {
                "quick": quick,
                "chaos": CHAOS_SPEC,
                "workers": 2,
                "cells": cells,
                "host_cpus": os.cpu_count(),
            },
            "recovery": {
                "serial_seconds": round(serial_s, 6),
                "fault_free_seconds": round(clean_s, 6),
                "chaotic_seconds": round(chaos_s, 6),
                "overhead_ratio": round(chaos_s / clean_s, 3),
                "cells_reexecuted": redundant,
                "worker_deaths": kinds.count("death"),
                "respawns": kinds.count("respawn"),
                "note": "overhead_ratio compares the chaotic run to the "
                        "fault-free fabric run on the same grid; "
                        "cells_reexecuted counts dispatches beyond one "
                        "per cell (requeues + speculation)",
            },
            "time_to_recover": {
                "seconds": None if recover_s is None else round(recover_s, 4),
                "note": "first worker death -> respawn of that slot, from "
                        "the scheduler's event timeline",
            },
            "gates": {
                "byte_identical": byte_identical,
                "zero_hung_frames": all_results_in,
                "worker_kill_observed": "death" in kinds and "respawn" in kinds,
            },
            "meets_target": (byte_identical and all_results_in
                             and "respawn" in kinds),
        }
    finally:
        shutil.rmtree(work, ignore_errors=True)


def check_report(report: Dict[str, object]) -> List[str]:
    """Return the list of gate violations in ``report`` (empty = pass)."""
    failures: List[str] = []
    gates = report["gates"]
    if not gates["byte_identical"]:  # type: ignore[index]
        failures.append("chaotic JSONL differs from the serial oracle")
    if not gates["zero_hung_frames"]:  # type: ignore[index]
        failures.append("not every result was collected (hung frame or lost cell)")
    if not gates["worker_kill_observed"]:  # type: ignore[index]
        failures.append("the seeded worker kill did not occur (stale seed?)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small grid (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a correctness gate fails")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_chaos.json"))
    args = parser.parse_args()

    report = run_benchmark(quick=args.quick)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")

    print(f"wrote {output}")
    recovery = report["recovery"]
    print(
        f"recovery: {report['config']['cells']} cells; serial "
        f"{recovery['serial_seconds']:.3f}s, fault-free fabric "
        f"{recovery['fault_free_seconds']:.3f}s, chaotic "
        f"{recovery['chaotic_seconds']:.3f}s "
        f"({recovery['overhead_ratio']:.2f}x overhead); "
        f"{recovery['cells_reexecuted']} cells re-executed, "
        f"{recovery['worker_deaths']} deaths, "
        f"{recovery['respawns']} respawns"
    )
    window = report["time_to_recover"]["seconds"]
    print(f"time to recover after worker kill: "
          f"{'n/a' if window is None else f'{window:.3f}s'}")

    failures = check_report(report)
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
