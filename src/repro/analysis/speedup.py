"""Scalability sweeps: speedup as a function of the number of cores.

The paper's Figures 7, 8 and 9 all plot speedup over the single-core
zero-overhead execution time ("All speedup results are calculated against
the single core execution time of the ideal curve") for a set of managers
and core counts.  :func:`run_scalability` produces exactly those series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence

from repro.analysis.factories import ManagerFactory
from repro.analysis.formatting import format_speedup_series
from repro.common.constants import PAPER_CORE_COUNTS
from repro.common.errors import ConfigurationError
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - the runner is imported lazily below
    from repro.experiments.runner import SweepRunner


@dataclass
class ScalabilityCurve:
    """Speedup of one manager across core counts on one trace."""

    manager_name: str
    trace_name: str
    core_counts: tuple[int, ...]
    speedups: tuple[float, ...]
    makespans_us: tuple[float, ...]

    @property
    def max_speedup(self) -> float:
        """Maximum speedup over the swept core counts (Table IV metric)."""
        return max(self.speedups) if self.speedups else 0.0

    def speedup_at(self, cores: int) -> float:
        """Speedup at a specific core count (must have been swept)."""
        try:
            return self.speedups[self.core_counts.index(cores)]
        except ValueError as exc:
            raise ConfigurationError(f"core count {cores} was not part of the sweep") from exc

    def as_mapping(self) -> Dict[int, float]:
        return dict(zip(self.core_counts, self.speedups))


@dataclass
class ScalabilityStudy:
    """All manager curves for one trace."""

    trace_name: str
    core_counts: tuple[int, ...]
    curves: Dict[str, ScalabilityCurve] = field(default_factory=dict)

    def series(self) -> Dict[str, tuple[float, ...]]:
        return {name: curve.speedups for name, curve in self.curves.items()}

    def render(self, title: Optional[str] = None) -> str:
        return format_speedup_series(title or self.trace_name, self.core_counts, self.series())

    def max_speedups(self) -> Dict[str, float]:
        return {name: curve.max_speedup for name, curve in self.curves.items()}


def run_scalability(
    trace: Trace,
    managers: Mapping[str, ManagerFactory],
    core_counts: Sequence[int] = PAPER_CORE_COUNTS,
    *,
    max_cores: Optional[Mapping[str, int]] = None,
    validate: bool = False,
    runner: Optional[SweepRunner] = None,
    schedulers: Sequence[str] = ("fifo",),
    topologies: Sequence[str] = ("homogeneous",),
) -> ScalabilityStudy:
    """Sweep speedup vs. core count for every manager on ``trace``.

    Parameters
    ----------
    trace:
        The workload to replay.
    managers:
        Mapping of display name to manager factory.
    core_counts:
        Core counts to sweep (the paper uses powers of two up to 256).
    max_cores:
        Optional per-manager limit (the paper only runs Nanos up to the 32
        physical cores of the trace machine); sweeps above the limit are
        skipped and the curve is truncated.
    validate:
        When true, every simulated schedule is checked against the
        reference dependency DAG (slow; used in tests).
    runner:
        The :class:`SweepRunner` to execute on.  ``None`` uses a fresh
        serial runner with no cache; pass a configured one for parallel
        (``n_jobs``) or incremental (``cache``) sweeps.
    schedulers / topologies:
        Ready-task dispatch policies and core-topology shapes to sweep
        (see :mod:`repro.system.scheduling` / :mod:`repro.system.
        topology`); when an axis has more than one entry, each manager
        grows one suffixed curve per combination.
    """
    # Imported lazily: repro.experiments sits on top of repro.analysis
    # (its specs resolve manager names via analysis.factories), so a
    # module-level import here would be circular.
    from repro.experiments.runner import SweepRunner
    from repro.experiments.spec import SweepSpec

    spec = SweepSpec(
        workloads=(trace,),
        managers=managers,
        core_counts=core_counts,
        max_cores=max_cores,
        validate=validate,
        schedulers=schedulers,
        topologies=topologies,
        name=f"scalability:{trace.name}",
    )
    outcome = (runner or SweepRunner()).run(spec)
    return outcome.study(trace.name)
