"""Tests for repro.common.units."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import (
    Frequency,
    cycles_to_seconds,
    cycles_to_us,
    seconds_to_cycles,
    us_to_cycles,
    us_to_seconds,
)


class TestConversions:
    def test_cycles_to_us_at_100mhz(self):
        assert cycles_to_us(100, 100.0) == pytest.approx(1.0)

    def test_cycles_to_us_at_50mhz(self):
        assert cycles_to_us(100, 50.0) == pytest.approx(2.0)

    def test_cycles_to_seconds(self):
        assert cycles_to_seconds(1_000_000, 100.0) == pytest.approx(0.01)

    def test_us_to_cycles_roundtrip(self):
        assert us_to_cycles(cycles_to_us(123.0, 55.56), 55.56) == pytest.approx(123.0)

    def test_seconds_to_cycles_roundtrip(self):
        assert seconds_to_cycles(cycles_to_seconds(42.0, 83.33), 83.33) == pytest.approx(42.0)

    def test_us_to_seconds(self):
        assert us_to_seconds(1_000_000) == pytest.approx(1.0)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            cycles_to_us(10, 0.0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            us_to_cycles(10, -5.0)


class TestFrequency:
    def test_cycle_time_us(self):
        assert Frequency(100.0).cycle_time_us == pytest.approx(0.01)

    def test_cycle_time_s(self):
        assert Frequency(1.0).cycle_time_s == pytest.approx(1e-6)

    def test_hz(self):
        assert Frequency(55.56).hz == pytest.approx(55.56e6)

    def test_cycles_to_us_method(self):
        assert Frequency(50.0).cycles_to_us(100) == pytest.approx(2.0)

    def test_us_to_cycles_method(self):
        assert Frequency(50.0).us_to_cycles(2.0) == pytest.approx(100.0)

    def test_scaled(self):
        assert Frequency(100.0).scaled(0.5).mhz == pytest.approx(50.0)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            Frequency(0.0)

    def test_frequency_is_hashable(self):
        assert len({Frequency(100.0), Frequency(100.0), Frequency(50.0)}) == 2
