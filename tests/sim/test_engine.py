"""Tests for the discrete-event engine."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Event, EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_ties_broken_by_priority_then_fifo(self):
        q = EventQueue()
        q.push(1.0, "late", priority=2)
        q.push(1.0, "first", priority=0)
        q.push(1.0, "second", priority=0)
        assert [q.pop().kind for _ in range(3)] == ["first", "second", "late"]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, "x")
        assert q and len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(2.0, "x")
        assert q.peek().kind == "x"
        assert len(q) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, "x")

    def test_drain_yields_in_order(self):
        q = EventQueue()
        for t in (3.0, 1.0, 2.0):
            q.push(t, f"t{t}")
        assert [e.time for e in q.drain()] == [1.0, 2.0, 3.0]

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, "x")
        q.clear()
        assert len(q) == 0


class TestSimulator:
    def test_dispatch_and_time_advance(self):
        sim = Simulator()
        seen = []
        sim.on("tick", lambda s, e: seen.append((s.now, e.payload)))
        sim.schedule(1.0, "tick", "a")
        sim.schedule(2.5, "tick", "b")
        end = sim.run()
        assert seen == [(1.0, "a"), (2.5, "b")]
        assert end == pytest.approx(2.5)

    def test_handler_can_schedule_more_events(self):
        sim = Simulator()
        counter = {"n": 0}

        def handler(s, e):
            counter["n"] += 1
            if counter["n"] < 5:
                s.schedule(1.0, "tick")

        sim.on("tick", handler)
        sim.schedule(0.0, "tick")
        sim.run()
        assert counter["n"] == 5
        assert sim.processed_events == 5

    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        sim.on("tick", lambda s, e: None)
        sim.schedule(1.0, "tick")
        sim.schedule(10.0, "tick")
        end = sim.run(until=5.0)
        assert end == pytest.approx(5.0)
        assert len(sim.queue) == 1

    def test_run_until_advances_time_when_queue_drains_early(self):
        sim = Simulator()
        sim.on("tick", lambda s, e: None)
        sim.schedule(2.0, "tick")
        end = sim.run(until=10.0)
        assert end == pytest.approx(10.0)
        assert sim.now == pytest.approx(10.0)
        assert sim.processed_events == 1

    def test_run_until_on_empty_queue_advances_to_horizon(self):
        sim = Simulator()
        end = sim.run(until=7.5)
        assert end == pytest.approx(7.5)
        assert sim.now == pytest.approx(7.5)

    def test_run_until_in_the_past_does_not_rewind(self):
        sim = Simulator()
        sim.on("tick", lambda s, e: None)
        sim.schedule(5.0, "tick")
        sim.run()
        assert sim.now == pytest.approx(5.0)
        end = sim.run(until=1.0)
        assert end == pytest.approx(5.0)
        assert sim.now == pytest.approx(5.0)

    def test_run_max_events_stop_does_not_advance_to_horizon(self):
        sim = Simulator()
        sim.on("tick", lambda s, e: None)
        for i in range(5):
            sim.schedule(float(i), "tick")
        end = sim.run(until=100.0, max_events=2)
        assert sim.processed_events == 2
        assert end == pytest.approx(1.0)
        assert len(sim.queue) == 3

    def test_run_until_leaves_future_events_queued(self):
        sim = Simulator()
        sim.on("tick", lambda s, e: None)
        sim.schedule(1.0, "tick")
        sim.schedule(20.0, "tick")
        end = sim.run(until=5.0)
        assert end == pytest.approx(5.0)
        assert len(sim.queue) == 1
        # Resuming past the horizon picks the remaining event back up.
        assert sim.run() == pytest.approx(20.0)

    def test_max_events(self):
        sim = Simulator()
        sim.on("tick", lambda s, e: None)
        for i in range(10):
            sim.schedule(float(i), "tick")
        sim.run(max_events=3)
        assert sim.processed_events == 3

    def test_missing_handler_raises(self):
        sim = Simulator()
        sim.schedule(1.0, "unknown")
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, "tick")

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.on("tick", lambda s, e: None)
        sim.schedule(5.0, "tick")
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, "tick")

    def test_reset(self):
        sim = Simulator()
        sim.on("tick", lambda s, e: None)
        sim.schedule(1.0, "tick")
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.processed_events == 0


class TestEventDataclass:
    def test_ordering_ignores_payload(self):
        early = Event(time=1.0, priority=0, sequence=0, kind="a", payload=object())
        late = Event(time=2.0, priority=0, sequence=1, kind="b", payload=object())
        assert early < late

    def test_queue_events_with_incomparable_payloads_order_fine(self):
        q = EventQueue()
        q.push(1.0, "a", payload=object())
        q.push(1.0, "b", payload=object())  # same time+priority: sequence decides
        assert [q.pop().kind for _ in range(2)] == ["a", "b"]


class TestNextTime:
    def test_next_time_of_empty_queue_is_none(self):
        assert EventQueue().next_time is None

    def test_next_time_tracks_the_head(self):
        q = EventQueue()
        q.push(5.0, "late")
        assert q.next_time == 5.0
        q.push(2.0, "early")
        assert q.next_time == 2.0
        q.pop()
        assert q.next_time == 5.0
