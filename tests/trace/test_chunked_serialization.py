"""Chunked JSONL trace serialization: round trips at chunk boundaries,
lazy readers, and truncation detection."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.common.errors import TraceError
from repro.trace.serialization import (
    TraceWriter,
    iter_trace_events,
    load_trace,
    open_trace_stream,
    read_stream_header,
    save_trace,
    trace_digest,
    write_trace_stream,
)
from repro.trace.stream import materialize
from repro.workloads.synthetic import generate_fork_join, generate_random_dag


@pytest.fixture(scope="module")
def trace():
    """A trace with all three event kinds and non-trivial size."""
    return generate_random_dag(40, max_predecessors=3, seed=20150525)


class TestChunkBoundaryRoundTrip:
    def test_round_trip_at_chunk_boundaries(self, trace, tmp_path):
        n = len(trace.events)
        for chunk_size in (1, n - 1, n, n + 1):
            path = tmp_path / f"chunk-{chunk_size}.jsonl"
            write_trace_stream(trace, path, chunk_size=chunk_size)
            loaded = materialize(open_trace_stream(path))
            assert trace_digest(loaded) == trace_digest(trace), f"chunk_size={chunk_size}"
            assert loaded.name == trace.name
            assert dict(loaded.metadata) == dict(trace.metadata)

    def test_gzip_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        write_trace_stream(trace, path, chunk_size=7)
        assert trace_digest(materialize(open_trace_stream(path))) == trace_digest(trace)
        # sanity: the file really is gzip
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert json.loads(handle.readline())["kind"] == "trace-stream"

    def test_barrier_events_survive(self, tmp_path):
        fj = generate_fork_join(2, 3, seed=5)
        path = tmp_path / "fj.jsonl"
        write_trace_stream(fj, path, chunk_size=2)
        assert trace_digest(materialize(open_trace_stream(path))) == trace_digest(fj)


class TestLazyReader:
    def test_stream_is_replayable(self, trace, tmp_path):
        path = tmp_path / "replay.jsonl"
        write_trace_stream(trace, path, chunk_size=8)
        stream = open_trace_stream(path)
        assert list(stream.iter_events()) == list(stream.iter_events())

    def test_header_read_eagerly_events_lazily(self, trace, tmp_path):
        path = tmp_path / "lazy.jsonl"
        write_trace_stream(trace, path, chunk_size=8)
        stream = open_trace_stream(path)
        assert stream.name == trace.name
        iterator = stream.iter_events()
        first = next(iterator)
        assert first == trace.events[0]

    def test_load_trace_reads_both_formats(self, trace, tmp_path):
        doc_path = save_trace(trace, tmp_path / "doc.json")
        stream_path = write_trace_stream(trace, tmp_path / "stream.jsonl")
        assert trace_digest(load_trace(doc_path)) == trace_digest(trace)
        assert trace_digest(load_trace(stream_path)) == trace_digest(trace)

    def test_load_trace_detects_stream_with_oversized_header(self, trace, tmp_path):
        """A header line longer than the sniff window must still be
        recognised as the chunked format."""
        path = tmp_path / "bigmeta.jsonl"
        metadata = dict(trace.metadata)
        metadata["notes"] = "x" * 100_000
        with TraceWriter(path, trace.name, metadata, chunk_size=16) as writer:
            writer.extend(trace.iter_events())
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert tuple(loaded.events) == trace.events

    def test_document_metadata_cannot_spoof_the_sniffer(self, trace, tmp_path):
        """A document trace whose metadata mimics the stream marker must
        still load through the document path."""
        spoofed = type(trace)(name="spoof", events=trace.events,
                              metadata={"kind": "trace-stream", "pad": "y" * 100_000})
        path = save_trace(spoofed, tmp_path / "spoof.json")
        assert trace_digest(load_trace(path)) == trace_digest(spoofed)


class TestWriterBehaviour:
    def test_writer_counts(self, trace, tmp_path):
        path = tmp_path / "counts.jsonl"
        with TraceWriter(path, trace.name, dict(trace.metadata), chunk_size=5) as writer:
            writer.extend(trace.iter_events())
        assert writer.num_events == len(trace.events)
        assert writer.num_tasks == trace.num_tasks

    def test_write_after_close_rejected(self, trace, tmp_path):
        writer = TraceWriter(tmp_path / "closed.jsonl", "t")
        writer.close()
        with pytest.raises(TraceError):
            writer.write(trace.events[0])

    def test_invalid_configuration_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            TraceWriter(tmp_path / "x.jsonl", "")
        with pytest.raises(TraceError):
            TraceWriter(tmp_path / "x.jsonl", "t", chunk_size=0)


class TestCorruptionDetection:
    def _write(self, trace, path, chunk_size=8):
        write_trace_stream(trace, path, chunk_size=chunk_size)
        return path

    def test_missing_footer_detected(self, trace, tmp_path):
        path = self._write(trace, tmp_path / "trunc.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        with pytest.raises(TraceError, match="footer"):
            list(iter_trace_events(path))

    def test_dropped_chunk_detected(self, trace, tmp_path):
        path = self._write(trace, tmp_path / "dropped.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        del lines[1]  # remove the first event chunk, keep the footer
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(TraceError, match="disagree"):
            list(iter_trace_events(path))

    def test_failed_writer_leaves_no_footer(self, trace, tmp_path):
        path = tmp_path / "crashed.jsonl"
        with pytest.raises(RuntimeError):
            with TraceWriter(path, "t") as writer:
                writer.write(trace.events[0])
                raise RuntimeError("simulated crash")
        with pytest.raises(TraceError, match="footer"):
            list(iter_trace_events(path))

    def test_document_trace_is_not_a_stream(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "doc.json")
        with pytest.raises(TraceError, match="kind"):
            read_stream_header(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="does not exist"):
            open_trace_stream(tmp_path / "nope.jsonl")
