"""Regenerate (or verify) the golden traces and their expected makespans.

Run from the repository root after an *intentional* behaviour change::

    PYTHONPATH=src python tests/golden/regenerate.py

The script writes one small, seeded trace per workload generator to
``tests/golden/data/`` and records the exact makespan of each trace
under every golden manager in ``expected_makespans.json``.  Dynamic
(insert-while-running) programs get the same treatment: their serial
elaboration is committed as ``dyn_<key>.json.gz`` and their
*dynamic-run* makespans are pinned per manager.  The paired tests
(``test_golden_traces.py`` / ``test_dynamic_goldens.py``) replay the
committed artefacts and compare *exactly* — any diff in a regeneration
is a change to the simulated science and must be explained in the PR
that commits it.

``--check`` recomputes everything in memory and compares against the
committed files without writing, exiting non-zero on any drift — the CI
guard that the committed goldens and the generators cannot diverge
silently::

    PYTHONPATH=src python tests/golden/regenerate.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.system.machine import Machine, MachineConfig, simulate
from repro.trace.serialization import save_trace, trace_digest

from golden_config import (
    GOLDEN_MANAGERS,
    GOLDEN_SEED,
    golden_dynamic_programs,
    golden_traces,
)

DATA_DIR = Path(__file__).parent / "data"
EXPECTED_PATH = Path(__file__).parent / "expected_makespans.json"
GOLDEN_CORES = 8


def compute_expected() -> dict:
    """Build the full expected-makespans document (traces + dynamic)."""
    traces: dict[str, dict[str, object]] = {}
    for key, trace in golden_traces().items():
        makespans = {}
        for manager_key, factory in GOLDEN_MANAGERS.items():
            result = simulate(trace, factory(), num_cores=GOLDEN_CORES, validate=True)
            makespans[manager_key] = result.makespan_us
        traces[key] = {
            "trace_digest": trace_digest(trace),
            "num_tasks": trace.num_tasks,
            "total_work_us": trace.total_work_us,
            "makespans_us": makespans,
        }
    dynamic: dict[str, dict[str, object]] = {}
    for key, program in golden_dynamic_programs().items():
        elaboration = program.elaborate()
        makespans = {}
        for manager_key, factory in GOLDEN_MANAGERS.items():
            machine = Machine(factory(), MachineConfig(num_cores=GOLDEN_CORES, validate=True))
            makespans[manager_key] = machine.run(program).makespan_us
        dynamic[key] = {
            "elaboration_digest": trace_digest(elaboration),
            "num_tasks": elaboration.num_tasks,
            "total_work_us": elaboration.total_work_us,
            "makespans_us": makespans,
        }
    return {"seed": GOLDEN_SEED, "cores": GOLDEN_CORES,
            "traces": traces, "dynamic": dynamic}


def regenerate() -> int:
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    for key, trace in golden_traces().items():
        path = save_trace(trace, DATA_DIR / f"{key}.json.gz")
        print(f"{key:24s} {trace.num_tasks:5d} tasks -> {path.name}")
    for key, program in golden_dynamic_programs().items():
        elaboration = program.elaborate()
        path = save_trace(elaboration, DATA_DIR / f"dyn_{key}.json.gz")
        print(f"{key:24s} {elaboration.num_tasks:5d} tasks -> {path.name} (dynamic)")
    EXPECTED_PATH.write_text(
        json.dumps(compute_expected(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {EXPECTED_PATH}")
    return 0


def check_batch_equivalence(computed: dict) -> list[str]:
    """Replay every golden trace through the batched lane backend — one
    full 8-lane batch per golden manager — and compare each lane's
    makespan against the regenerated expected values.  Guards the batch
    engine's byte-identity contract at the same choke point that guards
    the goldens themselves."""
    from repro.sim.batch import LaneSpec, run_lanes

    failures: list[str] = []
    traces = golden_traces()
    keys = sorted(traces)
    config = MachineConfig(num_cores=GOLDEN_CORES)
    for manager_key, factory in GOLDEN_MANAGERS.items():
        lanes = run_lanes([
            LaneSpec(trace=traces[key], manager=factory(), config=config)
            for key in keys
        ])
        for key, lane in zip(keys, lanes):
            expected = computed["traces"][key]["makespans_us"][manager_key]
            if lane.makespan_us != expected:
                failures.append(
                    f"batch backend [{manager_key}/{key}]: batched makespan "
                    f"{lane.makespan_us!r} != scalar {expected!r}")
    return failures


def check() -> int:
    """Fail (non-zero) when committed goldens drift from the generators."""
    from repro.trace.serialization import load_trace

    failures: list[str] = []
    expected = json.loads(EXPECTED_PATH.read_text(encoding="utf-8"))
    computed = compute_expected()
    if expected != computed:
        for section in ("traces", "dynamic"):
            want, got = expected.get(section, {}), computed.get(section, {})
            for key in sorted(set(want) | set(got)):
                if want.get(key) != got.get(key):
                    failures.append(
                        f"expected_makespans.json [{section}/{key}]: committed "
                        f"{want.get(key)} != regenerated {got.get(key)}")
        for scalar in ("seed", "cores"):
            if expected.get(scalar) != computed.get(scalar):
                failures.append(f"expected_makespans.json [{scalar}] drifted")
    committed_files = {
        **{f"{key}.json.gz": trace for key, trace in golden_traces().items()},
        **{f"dyn_{key}.json.gz": program.elaborate()
           for key, program in golden_dynamic_programs().items()},
    }
    for filename, fresh in committed_files.items():
        path = DATA_DIR / filename
        if not path.exists():
            failures.append(f"missing committed trace {filename}")
            continue
        if trace_digest(load_trace(path)) != trace_digest(fresh):
            failures.append(f"committed trace {filename} drifted from its generator")
    failures.extend(check_batch_equivalence(computed))
    if failures:
        print("golden drift detected:")
        for failure in failures:
            print(f"  - {failure}")
        print("intentional change? regenerate with: "
              "PYTHONPATH=src python tests/golden/regenerate.py")
        return 1
    print(f"goldens clean: {len(committed_files)} traces, "
          f"{len(computed['traces'])} static + {len(computed['dynamic'])} dynamic "
          "makespan sets match; batched lane replay identical under "
          f"{len(GOLDEN_MANAGERS)} managers")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify committed goldens instead of rewriting them")
    args = parser.parse_args()
    return check() if args.check else regenerate()


if __name__ == "__main__":
    sys.exit(main())
