"""Property-based tests (hypothesis) on the core invariants.

These tests generate random task programs and check the library's
fundamental guarantees for every manager model: dependencies are never
violated, every task runs exactly once, makespans are bounded by the
critical path below and the serial time above, and the hardware
distribution function behaves like a function.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.managers.ideal import IdealManager
from repro.managers.nanos import NanosManager
from repro.nexus.distribution import nexus_hash
from repro.nexus.nexuspp import NexusPlusPlusManager
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.system.machine import simulate
from repro.taskgraph.tracker import DependencyTracker
from repro.trace.dag import build_dependency_graph, validate_schedule
from repro.trace.serialization import trace_from_json, trace_to_json
from repro.trace.trace import Trace, TraceBuilder
from repro.workloads.synthetic import generate_random_dag

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

MANAGER_FACTORIES = [
    IdealManager,
    NanosManager,
    NexusPlusPlusManager,
    lambda: NexusSharpManager(NexusSharpConfig(num_task_graphs=3, frequency_mhz=100.0)),
    lambda: NexusSharpManager(NexusSharpConfig(num_task_graphs=6)),
]


@st.composite
def small_task_program(draw) -> Trace:
    """A random task program with data dependencies and occasional barriers."""
    num_tasks = draw(st.integers(min_value=1, max_value=30))
    num_addresses = draw(st.integers(min_value=1, max_value=12))
    addresses = [0x1000 + 64 * i for i in range(num_addresses)]
    builder = TraceBuilder("hypothesis-program")
    for index in range(num_tasks):
        n_params = draw(st.integers(min_value=1, max_value=min(4, num_addresses)))
        chosen = draw(
            st.lists(st.sampled_from(addresses), min_size=n_params, max_size=n_params, unique=True)
        )
        directions = draw(
            st.lists(st.sampled_from(["in", "out", "inout"]), min_size=n_params, max_size=n_params)
        )
        inputs = [a for a, d in zip(chosen, directions) if d == "in"]
        outputs = [a for a, d in zip(chosen, directions) if d == "out"]
        inouts = [a for a, d in zip(chosen, directions) if d == "inout"]
        duration = draw(st.floats(min_value=0.5, max_value=100.0, allow_nan=False))
        builder.add_task(f"task{index % 5}", duration_us=duration,
                         inputs=inputs, outputs=outputs, inouts=inouts)
        if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
            builder.add_taskwait()
        elif draw(st.integers(0, 14)) == 0:
            builder.add_taskwait_on(draw(st.sampled_from(addresses)))
    builder.add_taskwait()
    return builder.build()


COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# ---------------------------------------------------------------------------
# Distribution-hash properties
# ---------------------------------------------------------------------------


class TestDistributionProperties:
    @given(address=st.integers(min_value=0, max_value=(1 << 48) - 1),
           num_tg=st.integers(min_value=1, max_value=32))
    @settings(max_examples=200, deadline=None)
    def test_hash_in_range_and_deterministic(self, address, num_tg):
        value = nexus_hash(address, num_tg)
        assert 0 <= value < num_tg
        assert value == nexus_hash(address, num_tg)

    @given(address=st.integers(min_value=0, max_value=(1 << 48) - 1),
           high_bits=st.integers(min_value=0, max_value=(1 << 28) - 1),
           num_tg=st.integers(min_value=1, max_value=32))
    @settings(max_examples=100, deadline=None)
    def test_hash_ignores_high_address_bits(self, address, high_bits, num_tg):
        low = address & ((1 << 20) - 1)
        assert nexus_hash(low, num_tg) == nexus_hash(low | (high_bits << 20), num_tg)


# ---------------------------------------------------------------------------
# Scheduling properties
# ---------------------------------------------------------------------------


class TestSchedulingProperties:
    @given(trace=small_task_program(),
           manager_index=st.integers(min_value=0, max_value=len(MANAGER_FACTORIES) - 1),
           cores=st.integers(min_value=1, max_value=16))
    @settings(**COMMON_SETTINGS)
    def test_schedule_respects_dependencies_and_runs_every_task_once(self, trace, manager_index, cores):
        manager = MANAGER_FACTORIES[manager_index]()
        result = simulate(trace, manager, cores)
        assert len(result.finish_times) == trace.num_tasks
        validate_schedule(trace, result.start_times, result.finish_times)

    @given(trace=small_task_program(), cores=st.integers(min_value=1, max_value=16))
    @settings(**COMMON_SETTINGS)
    def test_ideal_makespan_bounded_by_critical_path_and_serial_time(self, trace, cores):
        graph = build_dependency_graph(trace)
        result = simulate(trace, IdealManager(), cores)
        assert result.makespan_us >= graph.critical_path_length() - 1e-6
        assert result.makespan_us <= graph.total_work() + 1e-6

    @given(trace=small_task_program())
    @settings(**COMMON_SETTINGS)
    def test_single_core_ideal_equals_total_work(self, trace):
        result = simulate(trace, IdealManager(), 1)
        assert result.makespan_us == pytest.approx(trace.total_work_us)

    @given(trace=small_task_program(), cores=st.integers(min_value=1, max_value=8))
    @settings(**COMMON_SETTINGS)
    def test_hardware_manager_never_beats_ideal(self, trace, cores):
        ideal = simulate(trace, IdealManager(), cores).makespan_us
        sharp = simulate(
            trace, NexusSharpManager(NexusSharpConfig(num_task_graphs=4, frequency_mhz=100.0)), cores
        ).makespan_us
        assert sharp >= ideal - 1e-6


# ---------------------------------------------------------------------------
# Tracker properties
# ---------------------------------------------------------------------------


class TestTrackerProperties:
    @given(trace=small_task_program(), num_tables=st.integers(min_value=1, max_value=8))
    @settings(**COMMON_SETTINGS)
    def test_tracker_releases_every_task_exactly_once(self, trace, num_tables):
        tracker = DependencyTracker(num_tables=num_tables, distribute=lambda a: a % num_tables)
        graph = build_dependency_graph(trace)
        released = set()
        for task in trace.tasks():
            if tracker.insert_task(task).ready:
                released.add(task.task_id)
        for task_id in graph.submission_order:
            assert task_id in released
            for newly in tracker.finish_task(task_id).newly_ready:
                assert newly not in released
                released.add(newly)
        assert released == set(graph.submission_order)

    @given(trace=small_task_program())
    @settings(**COMMON_SETTINGS)
    def test_dependence_counts_never_negative(self, trace):
        # DependenceCountsTable raises SimulationError internally if a
        # count ever went below zero; running the whole trace is the test.
        tracker = DependencyTracker()
        order = []
        for task in trace.tasks():
            if tracker.insert_task(task).ready:
                order.append(task.task_id)
        index = 0
        while index < len(order):
            for newly in tracker.finish_task(order[index]).newly_ready:
                order.append(newly)
            index += 1
        assert len(order) == trace.num_tasks


# ---------------------------------------------------------------------------
# Serialization properties
# ---------------------------------------------------------------------------


class TestSerializationProperties:
    @given(trace=small_task_program())
    @settings(**COMMON_SETTINGS)
    def test_json_roundtrip_is_identity(self, trace):
        restored = trace_from_json(trace_to_json(trace))
        assert restored.name == trace.name
        assert len(restored) == len(trace)
        assert list(restored.tasks()) == list(trace.tasks())
        assert restored.total_work_us == pytest.approx(trace.total_work_us)
