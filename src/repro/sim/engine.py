"""Event queue and simulation driver.

The engine is intentionally minimal: a binary heap of :class:`Event`
records with deterministic ``(time, priority, sequence)`` ordering.  It
is the shared kernel of the simulation: the layered machine runtime in
:mod:`repro.system.machine` drives its main loop on it, and manager
models use it only indirectly (they reason about resource timelines
instead of scheduling fine-grained events, which keeps large traces
tractable).

Because the machine loop dispatches one :class:`Event` per task
submission, ready notification and completion, the engine is a genuine
hot path: events are plain tuples (``NamedTuple``) so creation and heap
comparisons run at C speed, and :meth:`Simulator.run` keeps a fast path
free of per-event horizon checks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, NamedTuple, Optional

from repro.common.errors import SimulationError


class Event(NamedTuple):
    """A single scheduled event.

    Ordering is by ``(time, priority, sequence)``.  Queue-issued events
    have a unique per-queue ``sequence``, so the trailing ``kind`` and
    ``payload`` fields never decide an ordering in practice — the order
    stays total and deterministic even when payloads are not mutually
    comparable.
    """

    time: float
    priority: int
    sequence: int
    kind: str
    payload: Any = None


_tuple_new = tuple.__new__


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None`` when empty."""
        heap = self._heap
        return heap[0][0] if heap else None

    def push(self, time: float, kind: str, payload: Any = None, priority: int = 0) -> Event:
        """Schedule an event and return it."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        # tuple.__new__ skips the namedtuple's Python-level __new__ —
        # one event is created per simulated task step, so this matters.
        event = _tuple_new(Event, (time, priority, next(self._counter), kind, payload))
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop() from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise SimulationError("peek() into an empty event queue")
        return self._heap[0]

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()

    def drain(self) -> Iterator[Event]:
        """Yield events in time order until the queue is empty."""
        while self._heap:
            yield self.pop()


class Simulator:
    """A small callback-driven simulation loop.

    Handlers are registered per event kind; :meth:`run` pops events in
    time order and dispatches them.  The simulator tracks the current
    simulation time and enforces that it never moves backwards.
    """

    __slots__ = ("queue", "now", "_handlers", "_processed", "_running")

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self._handlers: dict[str, Callable[[Simulator, Event], None]] = {}
        self._processed: int = 0
        self._running = False

    # -- configuration ----------------------------------------------------
    def on(self, kind: str, handler: Callable[["Simulator", Event], None]) -> None:
        """Register ``handler`` for events of ``kind`` (overwrites silently)."""
        self._handlers[kind] = handler

    def schedule(self, delay: float, kind: str, payload: Any = None, priority: int = 0) -> Event:
        """Schedule an event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        return self.queue.push(self.now + delay, kind, payload, priority)

    def schedule_at(self, time: float, kind: str, payload: Any = None, priority: int = 0) -> Event:
        """Schedule an event at an absolute time (must not be in the past)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} before current time {self.now}")
        return self.queue.push(time, kind, payload, priority)

    # -- execution ---------------------------------------------------------
    @property
    def processed_events(self) -> int:
        """Number of events dispatched so far."""
        return self._processed

    def step(self) -> Optional[Event]:
        """Process a single event; return it, or ``None`` if queue empty."""
        if not self.queue:
            return None
        event = self.queue.pop()
        if event.time < self.now - 1e-12:
            raise SimulationError(
                f"event {event.kind!r} at t={event.time} is in the past (now={self.now})"
            )
        self.now = max(self.now, event.time)
        handler = self._handlers.get(event.kind)
        if handler is None:
            raise SimulationError(f"no handler registered for event kind {event.kind!r}")
        handler(self, event)
        self._processed += 1
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time at which the run stopped.  When an
        ``until`` horizon is given and the queue drains (or the next event
        lies beyond it), time advances to the horizon — the simulated
        world idled up to ``until``; a horizon already in the past leaves
        the clock untouched (time never moves backwards).  A stop caused
        by ``max_events`` does *not* advance to the horizon: the run was
        cut short mid-simulation, not idled out.
        """
        self._running = True
        try:
            if until is None and max_events is None:
                self._run_to_exhaustion()
                return self.now
            return self._run_bounded(until, max_events)
        finally:
            self._running = False

    def _run_to_exhaustion(self) -> None:
        """Hot path: drain the queue with no per-event horizon checks.

        The monotonic-time guard of :meth:`step` is kept (a handler that
        pushes an absolute event below ``now`` must fail loudly, exactly
        as it does on the bounded path) — it costs one comparison on the
        branch where time does not advance.
        """
        heap = self.queue._heap
        handlers = self._handlers
        handlers_get = handlers.get
        pop = heapq.heappop
        while heap:
            event = pop(heap)
            time = event[0]
            if time > self.now:
                self.now = time
            elif time < self.now - 1e-12:
                raise SimulationError(
                    f"event {event[3]!r} at t={time} is in the past (now={self.now})"
                )
            handler = handlers_get(event[3])
            if handler is None:
                raise SimulationError(f"no handler registered for event kind {event[3]!r}")
            handler(self, event)
            self._processed += 1

    def _run_bounded(self, until: Optional[float], max_events: Optional[int]) -> float:
        dispatched = 0
        stopped_by_max_events = False
        while self.queue:
            if until is not None and self.queue.peek().time > until:
                break
            if max_events is not None and dispatched >= max_events:
                stopped_by_max_events = True
                break
            self.step()
            dispatched += 1
        if until is not None and not stopped_by_max_events:
            self.now = max(self.now, until)
        return self.now

    def reset(self) -> None:
        """Clear all pending events and rewind time to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self.queue.clear()
        self.now = 0.0
        self._processed = 0
