"""Scalability sweeps: speedup as a function of the number of cores.

The paper's Figures 7, 8 and 9 all plot speedup over the single-core
zero-overhead execution time ("All speedup results are calculated against
the single core execution time of the ideal curve") for a set of managers
and core counts.  :func:`run_scalability` produces exactly those series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.analysis.factories import ManagerFactory
from repro.analysis.formatting import format_speedup_series
from repro.common.constants import PAPER_CORE_COUNTS
from repro.common.errors import ConfigurationError
from repro.system.machine import simulate
from repro.system.results import MachineResult
from repro.trace.trace import Trace


@dataclass
class ScalabilityCurve:
    """Speedup of one manager across core counts on one trace."""

    manager_name: str
    trace_name: str
    core_counts: tuple[int, ...]
    speedups: tuple[float, ...]
    makespans_us: tuple[float, ...]

    @property
    def max_speedup(self) -> float:
        """Maximum speedup over the swept core counts (Table IV metric)."""
        return max(self.speedups) if self.speedups else 0.0

    def speedup_at(self, cores: int) -> float:
        """Speedup at a specific core count (must have been swept)."""
        try:
            return self.speedups[self.core_counts.index(cores)]
        except ValueError as exc:
            raise ConfigurationError(f"core count {cores} was not part of the sweep") from exc

    def as_mapping(self) -> Dict[int, float]:
        return dict(zip(self.core_counts, self.speedups))


@dataclass
class ScalabilityStudy:
    """All manager curves for one trace."""

    trace_name: str
    core_counts: tuple[int, ...]
    curves: Dict[str, ScalabilityCurve] = field(default_factory=dict)

    def series(self) -> Dict[str, tuple[float, ...]]:
        return {name: curve.speedups for name, curve in self.curves.items()}

    def render(self, title: Optional[str] = None) -> str:
        return format_speedup_series(title or self.trace_name, self.core_counts, self.series())

    def max_speedups(self) -> Dict[str, float]:
        return {name: curve.max_speedup for name, curve in self.curves.items()}


def run_scalability(
    trace: Trace,
    managers: Mapping[str, ManagerFactory],
    core_counts: Sequence[int] = PAPER_CORE_COUNTS,
    *,
    max_cores: Optional[Mapping[str, int]] = None,
    validate: bool = False,
) -> ScalabilityStudy:
    """Sweep speedup vs. core count for every manager on ``trace``.

    Parameters
    ----------
    trace:
        The workload to replay.
    managers:
        Mapping of display name to manager factory.
    core_counts:
        Core counts to sweep (the paper uses powers of two up to 256).
    max_cores:
        Optional per-manager limit (the paper only runs Nanos up to the 32
        physical cores of the trace machine); sweeps above the limit are
        skipped and the curve is truncated.
    validate:
        When true, every simulated schedule is checked against the
        reference dependency DAG (slow; used in tests).
    """
    if not core_counts:
        raise ConfigurationError("core_counts must not be empty")
    study = ScalabilityStudy(trace_name=trace.name, core_counts=tuple(core_counts))
    for name, factory in managers.items():
        limit = None if max_cores is None else max_cores.get(name)
        swept_counts: List[int] = []
        speedups: List[float] = []
        makespans: List[float] = []
        for cores in core_counts:
            if limit is not None and cores > limit:
                continue
            manager = factory()
            result: MachineResult = simulate(
                trace, manager, cores, validate=validate, keep_schedule=False
            )
            swept_counts.append(cores)
            speedups.append(result.speedup_vs_serial)
            makespans.append(result.makespan_us)
        study.curves[name] = ScalabilityCurve(
            manager_name=name,
            trace_name=trace.name,
            core_counts=tuple(swept_counts),
            speedups=tuple(speedups),
            makespans_us=tuple(makespans),
        )
    return study
