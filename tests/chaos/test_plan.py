"""Unit tests for the deterministic fault plan."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.chaos.plan import (
    CHAOS_ENV,
    FRAME_FAULTS,
    FaultPlan,
    FaultProfile,
    PROFILES,
    parse_chaos,
    plan_from_env,
)


def sequences(plan, n=400):
    """Every decision the plan makes over the first ``n`` events."""
    return {
        "frame": [plan.decide_frame("s", i) for i in range(n)],
        "cache": [plan.decide_cache("c", i, "put") for i in range(n)],
        "cell": [plan.decide_cell("w", i) for i in range(n)],
        "serve": [plan.decide_serve(i) for i in range(n)],
    }


class TestFaultProfile:
    def test_rates_are_validated(self):
        with pytest.raises(ConfigurationError):
            FaultProfile(frame_drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultProfile(straggle_s=-1.0)

    def test_named_profiles_are_valid(self):
        assert {"none", "soak", "wire", "store", "workers", "serve"} <= \
            set(PROFILES)

    def test_unknown_profile_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos profile"):
            FaultPlan(0, "tsunami")


class TestDeterminism:
    def test_same_seed_reproduces_the_same_fault_sequence_twice(self):
        """The chaos-soak acceptance gate: rebuilding the plan from the
        same ``(seed, profile)`` pair replays the byte-same schedule."""
        first = sequences(FaultPlan(2015, "soak"))
        second = sequences(FaultPlan(2015, "soak"))
        assert first == second
        assert first != sequences(FaultPlan(2016, "soak"))

    def test_scopes_draw_independent_streams(self):
        plan = FaultPlan(3, "wire")
        a = [plan.decide_frame("worker:a:e0", i) for i in range(300)]
        b = [plan.decide_frame("worker:b:e0", i) for i in range(300)]
        assert a != b
        # Re-asking for scope a after touching scope b changes nothing.
        assert a == [plan.decide_frame("worker:a:e0", i) for i in range(300)]

    def test_epoch_changes_the_stream(self):
        plan = FaultPlan(3, "wire")
        e0 = [plan.decide_frame("worker:a:e0", i) for i in range(300)]
        e1 = [plan.decide_frame("worker:a:e1", i) for i in range(300)]
        assert e0 != e1

    def test_none_profile_never_fires(self):
        plan = FaultPlan(123, "none")
        seq = sequences(plan)
        assert all(v is None for v in seq["frame"])
        assert all(v is None for v in seq["cache"])
        assert all(v is None for v in seq["cell"])
        assert not any(seq["serve"])


class TestDecisions:
    def test_frame_fault_order_is_fixed_first_match_wins(self):
        plan = FaultPlan(0, "none", frame_drop_rate=1.0,
                         frame_corrupt_rate=1.0)
        assert plan.decide_frame("s", 0) == "drop"
        assert FRAME_FAULTS[0] == "drop"

    def test_reset_fires_only_past_the_frame_threshold(self):
        plan = FaultPlan(0, "none", reset_after_frames=5, reset_rate=1.0)
        assert [plan.decide_frame("s", i) for i in range(5)] == [None] * 5
        assert plan.decide_frame("s", 5) == "reset"
        assert plan.decide_frame("s", 6) == "reset"

    def test_crash_fires_at_the_exact_cell_when_eligible(self):
        plan = FaultPlan(0, "none", crash_after_cells=3, crash_rate=1.0)
        assert [plan.decide_cell("w", i) for i in range(6)] == \
            [None, None, None, "crash", None, None]

    def test_ineligible_scope_never_crashes(self):
        plan = FaultPlan(0, "none", crash_after_cells=3, crash_rate=0.0)
        assert all(plan.decide_cell("w", i) is None for i in range(10))

    def test_cache_ops_draw_separate_faults(self):
        plan = FaultPlan(0, "none", cache_slow_read_rate=1.0)
        assert plan.decide_cache("c", 0, "get") == "slow-read"
        assert plan.decide_cache("c", 0, "put") is None


class TestTransport:
    def test_named_profile_roundtrip(self):
        plan = FaultPlan(2015, "soak")
        clone = FaultPlan.from_doc(plan.to_doc())
        assert sequences(clone) == sequences(plan)

    def test_custom_profile_roundtrip_ships_full_rates(self):
        plan = FaultPlan(9, "none", frame_drop_rate=0.25, straggle_rate=0.5)
        doc = plan.to_doc()
        assert doc["profile"] == "custom" and "rates" in doc
        clone = FaultPlan.from_doc(doc)
        assert clone.profile.frame_drop_rate == 0.25
        assert sequences(clone) == sequences(plan)


class TestParsing:
    def test_profile_seed_form(self):
        plan = parse_chaos("wire:77")
        assert plan.seed == 77 and plan.profile_name == "wire"

    def test_bare_seed_uses_soak(self):
        plan = parse_chaos("2015")
        assert plan.seed == 2015 and plan.profile_name == "soak"

    def test_bare_profile_uses_seed_zero(self):
        plan = parse_chaos("store")
        assert plan.seed == 0 and plan.profile_name == "store"

    def test_bare_negative_seed_uses_soak(self):
        """Regression: "-5" fails str.isdigit() and used to be misrouted
        into the profile branch (unknown chaos profile '-5')."""
        plan = parse_chaos("-5")
        assert plan.seed == -5 and plan.profile_name == "soak"

    def test_bare_explicitly_positive_seed_uses_soak(self):
        plan = parse_chaos("+7")
        assert plan.seed == 7 and plan.profile_name == "soak"

    def test_profile_with_negative_seed(self):
        plan = parse_chaos("wire:-5")
        assert plan.seed == -5 and plan.profile_name == "wire"

    def test_negative_seed_matches_directly_built_plan(self):
        assert sequences(parse_chaos("-5")) == sequences(FaultPlan(-5, "soak"))

    @pytest.mark.parametrize("value", [None, "", "  ", "none", "off", "0"])
    def test_disabled_forms(self, value):
        assert parse_chaos(value) is None

    def test_existing_plan_passes_through(self):
        plan = FaultPlan(1, "soak")
        assert parse_chaos(plan) is plan

    def test_bad_seed_is_rejected(self):
        with pytest.raises(ConfigurationError, match="profile:seed"):
            parse_chaos("soak:lots")

    def test_env_knob(self):
        assert plan_from_env({}) is None
        plan = plan_from_env({CHAOS_ENV: "soak:42"})
        assert plan.seed == 42 and plan.profile_name == "soak"
