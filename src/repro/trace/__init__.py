"""Task and trace model.

The paper's evaluation is *trace driven*: each benchmark is reduced to a
sequence of task descriptors (function identifier, parameter list with
access direction and memory address, measured execution time) plus the
barrier pragmas (`taskwait`, `taskwait on`) the master thread executes
between task submissions.  This package defines that representation:

* :class:`repro.trace.task.TaskDescriptor` — a single task instance.
* :class:`repro.trace.task.Parameter` / :class:`repro.trace.task.Direction`
  — one entry of a task's input/output list.
* :class:`repro.trace.trace.Trace` — an ordered program: task submissions
  interleaved with barrier events, exactly what the RTS testbench replays.
* :mod:`repro.trace.dag` — derives the task dependency DAG from the
  parameter addresses using OmpSs semantics (RAW, WAR and WAW hazards on
  the same address), computes critical paths and checks schedules.
* :mod:`repro.trace.stats` — per-trace statistics matching Table II.
* :mod:`repro.trace.serialization` — a JSON-lines on-disk format.
"""

from repro.trace.task import Direction, Parameter, TaskDescriptor
from repro.trace.events import TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent, TraceEvent
from repro.trace.trace import Trace, TraceBuilder
from repro.trace.dag import DependencyGraph, build_dependency_graph, validate_schedule
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.serialization import load_trace, save_trace, trace_from_json, trace_to_json

__all__ = [
    "Direction",
    "Parameter",
    "TaskDescriptor",
    "TraceEvent",
    "TaskSubmitEvent",
    "TaskwaitEvent",
    "TaskwaitOnEvent",
    "Trace",
    "TraceBuilder",
    "DependencyGraph",
    "build_dependency_graph",
    "validate_schedule",
    "TraceStatistics",
    "compute_statistics",
    "load_trace",
    "save_trace",
    "trace_from_json",
    "trace_to_json",
]
