#!/usr/bin/env python3
"""Distributed sweep-fabric benchmark: dispatch overhead, scaling, warm re-runs.

Three sections, all over the :mod:`repro.distributed` fabric:

* **dispatch overhead** — a many-cell microbench grid executed serially
  versus through the full socket fabric (scheduler + frame protocol)
  with one *in-thread* worker, so the measured delta is pure fabric cost
  (framing, scheduling, result assembly) and not interpreter start-up.
  The per-cell overhead is the headline number and carries the
  **sub-millisecond gate**: chunked dispatch plus the once-per-worker
  job-table handshake must keep the fabric's tax per grid cell under
  1 ms, or distributing a sweep of cheap cells would be pointless.
* **scaling** — a sparselu grid run serially and with 1 / 2 / 4 local
  worker processes.  Wall times include worker start-up (that is what a
  user pays); the section reports speedups rather than gating them,
  since start-up and machine load dominate at CI sizes.
* **warm re-run** — the same sparselu grid over the shared
  content-addressed store: a cold 2-worker run publishes every cell,
  then a warm run is timed.  Gate: the warm run must execute **zero**
  simulations (the store answers everything) — and it never spawns a
  worker fleet at all.

Run with::

    PYTHONPATH=src python benchmarks/bench_sweep_fabric.py [--quick] [--check]

Writes ``BENCH_sweep_fabric.json`` (schema 1, repo root by default).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distributed.scheduler import SweepScheduler  # noqa: E402
from repro.distributed.worker import run_worker  # noqa: E402
from repro.experiments.runner import SweepRunner, intern_jobs  # noqa: E402
from repro.experiments.spec import SweepSpec  # noqa: E402

BENCH_SEED = 2015

#: Per-cell fabric overhead gate (milliseconds).
DISPATCH_OVERHEAD_CEILING_MS = 1.0

#: Local worker fleets measured by the scaling section.
SCALING_FLEETS = (1, 2, 4)


def _dispatch_spec(quick: bool) -> SweepSpec:
    # Many cheap cells: per-cell fabric cost is resolved against a
    # baseline where simulation time is negligible.
    return SweepSpec(
        workloads=["microbench"],
        managers=["ideal"],
        core_counts=[1, 2],
        seeds=tuple(range(200 if quick else 1000)),
        scale=0.01,
    )


def _scaling_spec(quick: bool):
    scale = 0.03 if quick else 0.1
    spec = SweepSpec(
        workloads=["sparselu"],
        managers=["ideal"],
        core_counts=[1, 2, 4, 8],
        seeds=(1, 2) if quick else (1, 2, 3, 4),
        scale=scale,
    )
    return spec, scale


def _time_serial(spec: SweepSpec) -> float:
    start = time.perf_counter()
    SweepRunner().run(spec)
    return time.perf_counter() - start


def _time_in_thread_fabric(spec: SweepSpec) -> float:
    """Full socket fabric, one in-thread worker: pure dispatch cost.

    The worker runs :func:`run_worker` in a thread of this process, so
    the serial-vs-fabric delta contains no interpreter start-up — only
    frames, scheduling, and result assembly.
    """
    jobs, table = intern_jobs(list(enumerate(spec.points())))
    scheduler = SweepScheduler(jobs, table, workers=0, external_workers=1,
                               timeout=600)
    start = time.perf_counter()
    box: Dict[str, object] = {}
    thread = threading.Thread(
        target=lambda: box.setdefault("pairs", scheduler.run()))
    thread.start()
    while scheduler.address is None and thread.is_alive():
        time.sleep(0.001)
    code = run_worker(*scheduler.address, worker_id="bench-0")
    thread.join()
    elapsed = time.perf_counter() - start
    if code != 0 or len(box.get("pairs", ())) != len(jobs):  # pragma: no cover
        raise RuntimeError("fabric benchmark run did not complete cleanly")
    return elapsed


def run_dispatch_section(quick: bool) -> Dict[str, object]:
    spec = _dispatch_spec(quick)
    cells = len(list(spec.points()))
    serial_s = _time_serial(spec)
    fabric_s = _time_in_thread_fabric(spec)
    overhead_ms = (fabric_s - serial_s) / cells * 1000.0
    return {
        "grid": {"workload": "microbench", "cells": cells, "scale": 0.01},
        "serial_seconds": round(serial_s, 6),
        "fabric_seconds": round(fabric_s, 6),
        "per_cell_overhead_ms": round(overhead_ms, 4),
        "ceiling_ms": DISPATCH_OVERHEAD_CEILING_MS,
        "meets_ceiling": overhead_ms < DISPATCH_OVERHEAD_CEILING_MS,
        "note": "fabric side uses one in-thread worker: the delta is frame "
                "protocol + scheduler bookkeeping, not interpreter start-up",
    }


def run_scaling_section(quick: bool) -> Dict[str, object]:
    spec, scale = _scaling_spec(quick)
    cells = len(list(spec.points()))
    serial_s = _time_serial(spec)
    fleets: Dict[str, object] = {}
    for workers in SCALING_FLEETS:
        runner = SweepRunner(transport="sockets", workers=workers)
        start = time.perf_counter()
        outcome = runner.run(spec)
        elapsed = time.perf_counter() - start
        assert outcome.executed == cells
        fleets[str(workers)] = {
            "seconds": round(elapsed, 6),
            "speedup_vs_serial": round(serial_s / elapsed, 3),
        }
    return {
        "grid": {
            "workload": "sparselu",
            "cells": cells,
            "scale": scale,
            "cores": list(spec.core_counts),
        },
        "serial_seconds": round(serial_s, 6),
        "fleets": fleets,
        "note": "wall times include worker start-up; reported, not gated — "
                "a fleet can only beat serial when the host has spare "
                "cores (see config.host_cpus: a single-CPU host "
                "time-slices every worker over one core)",
    }


def run_warm_section(quick: bool) -> Dict[str, object]:
    spec, scale = _scaling_spec(quick)
    cells = len(list(spec.points()))
    store = Path(tempfile.mkdtemp(prefix="bench-fabric-store-"))
    try:
        cold_runner = SweepRunner(transport="sockets", workers=2,
                                  cache_dir=store)
        start = time.perf_counter()
        cold = cold_runner.run(spec)
        cold_s = time.perf_counter() - start
        warm_runner = SweepRunner(transport="sockets", workers=2,
                                  cache_dir=store)
        start = time.perf_counter()
        warm = warm_runner.run(spec)
        warm_s = time.perf_counter() - start
        return {
            "grid": {"workload": "sparselu", "cells": cells, "scale": scale},
            "cold_seconds": round(cold_s, 6),
            "cold_executed": cold.executed,
            "warm_seconds": round(warm_s, 6),
            "warm_executed": warm.executed,
            "warm_cache_hits": warm.cache_hits,
            "warm_cells_per_sec": round(cells / warm_s),
            "warm_spawned_workers": warm_runner.last_scheduler is not None,
            "meets_zero_sim": warm.executed == 0
                              and warm_runner.last_scheduler is None,
        }
    finally:
        shutil.rmtree(store, ignore_errors=True)


def run_benchmark(quick: bool) -> Dict[str, object]:
    dispatch = run_dispatch_section(quick)
    scaling = run_scaling_section(quick)
    warm = run_warm_section(quick)
    return {
        "benchmark": "sweep_fabric",
        "schema": 1,
        "config": {
            "quick": quick,
            "seed": BENCH_SEED,
            "transport": "sockets (repro.distributed fabric)",
            "host_cpus": os.cpu_count(),
        },
        "dispatch_overhead": dispatch,
        "scaling": scaling,
        "warm_rerun": warm,
        "meets_target": dispatch["meets_ceiling"] and warm["meets_zero_sim"],
    }


def check_report(report: Dict[str, object]) -> List[str]:
    """Return the list of gate violations in ``report`` (empty = pass)."""
    failures: List[str] = []
    dispatch = report["dispatch_overhead"]
    if not dispatch["meets_ceiling"]:  # type: ignore[index]
        failures.append(
            f"per-cell dispatch overhead {dispatch['per_cell_overhead_ms']:.3f} ms "  # type: ignore[index]
            f"at or above the {dispatch['ceiling_ms']:.1f} ms ceiling"  # type: ignore[index]
        )
    warm = report["warm_rerun"]
    if not warm["meets_zero_sim"]:  # type: ignore[index]
        failures.append(
            f"warm re-run executed {warm['warm_executed']} cells "  # type: ignore[index]
            "(expected 0: the shared store must answer everything)"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small grids (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the dispatch-overhead ceiling "
                             "or the warm-rerun zero-simulation gate fails")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_sweep_fabric.json"))
    args = parser.parse_args()

    report = run_benchmark(quick=args.quick)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")

    print(f"wrote {output}")
    dispatch = report["dispatch_overhead"]
    print(
        f"dispatch overhead: {dispatch['grid']['cells']} cells, "
        f"serial {dispatch['serial_seconds']:.3f}s, "
        f"fabric {dispatch['fabric_seconds']:.3f}s -> "
        f"{dispatch['per_cell_overhead_ms']:.3f} ms/cell "
        f"(ceiling {dispatch['ceiling_ms']:.1f} ms)"
    )
    scaling = report["scaling"]
    for workers, row in scaling["fleets"].items():
        print(
            f"scaling: {workers} worker(s) over {scaling['grid']['cells']} "
            f"sparselu cells: {row['seconds']:.3f}s "
            f"({row['speedup_vs_serial']:.2f}x vs serial "
            f"{scaling['serial_seconds']:.3f}s)"
        )
    warm = report["warm_rerun"]
    print(
        f"warm re-run: cold {warm['cold_seconds']:.3f}s "
        f"({warm['cold_executed']} executed) -> warm {warm['warm_seconds']:.3f}s "
        f"({warm['warm_executed']} executed, {warm['warm_cache_hits']} hits, "
        f"{warm['warm_cells_per_sec']} cells/s, "
        f"workers spawned: {warm['warm_spawned_workers']})"
    )

    failures = check_report(report)
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
