"""The :class:`TaskProgram` recorder — Python stand-in for the OmpSs pragmas.

A :class:`TaskProgram` owns an address space and a trace builder.  Task
functions are declared with the :meth:`TaskProgram.task` decorator, which
mirrors the ``#pragma omp task input(...) inout(...)`` annotation; every
*call* of a decorated function records one task submission, exactly like
the Mercurium source-to-source compiler turns annotated calls into
runtime calls.  ``taskwait`` / ``taskwait on`` map to the corresponding
methods.  :meth:`TaskProgram.build` freezes the recording into a
:class:`repro.trace.Trace` that any manager model can replay.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.common.errors import ConfigurationError, TraceError
from repro.runtime.data import DataHandle, DataMatrix
from repro.trace.task import Direction, Parameter
from repro.trace.trace import Trace, TraceBuilder
from repro.workloads.addressing import AddressSpace

DurationSpec = Union[float, Callable[..., float]]


class TaskFunction:
    """A task-annotated function; calling it records a task submission."""

    def __init__(
        self,
        program: "TaskProgram",
        func: Callable,
        inputs: Sequence[str],
        outputs: Sequence[str],
        inouts: Sequence[str],
        duration_us: DurationSpec,
        execute: bool,
    ) -> None:
        self.program = program
        self.func = func
        self.name = func.__name__
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.inouts = tuple(inouts)
        self.duration_us = duration_us
        self.execute = execute
        self.calls = 0
        functools.update_wrapper(self, func)
        # Map parameter names to directions once, validating the clauses.
        import inspect

        signature = inspect.signature(func)
        self._positional = [p.name for p in signature.parameters.values()]
        self._directions: Dict[str, Direction] = {}
        for name in inputs:
            self._directions[name] = Direction.IN
        for name in outputs:
            if name in self._directions:
                raise ConfigurationError(f"parameter {name!r} listed in more than one clause")
            self._directions[name] = Direction.OUT
        for name in inouts:
            if name in self._directions:
                raise ConfigurationError(f"parameter {name!r} listed in more than one clause")
            self._directions[name] = Direction.INOUT
        unknown = set(self._directions) - set(self._positional)
        if unknown:
            raise ConfigurationError(
                f"task {self.name!r} annotates unknown parameters: {sorted(unknown)}"
            )

    def __call__(self, *args, **kwargs):
        bound: Dict[str, object] = {}
        for value, name in zip(args, self._positional):
            bound[name] = value
        bound.update(kwargs)
        params: List[Parameter] = []
        for name, direction in self._directions.items():
            value = bound.get(name)
            if value is None:
                continue  # border cells / optional dependencies contribute nothing
            if not isinstance(value, DataHandle):
                raise TraceError(
                    f"task {self.name!r}: argument {name!r} must be a DataHandle or None, "
                    f"got {type(value).__name__}"
                )
            params.append(Parameter(address=value.address, direction=direction, size=value.size))
        duration = self.duration_us(*args, **kwargs) if callable(self.duration_us) else self.duration_us
        if duration < 0:
            raise TraceError(f"task {self.name!r} produced a negative duration {duration}")
        self.program._builder.add_task(self.name, duration_us=float(duration), params=params)
        self.calls += 1
        if self.execute:
            return self.func(*args, **kwargs)
        return None


class TaskProgram:
    """Records an OmpSs-like task program into a trace."""

    def __init__(self, name: str, seed: Optional[int] = None) -> None:
        self.name = name
        self._space = AddressSpace(seed=seed)
        self._builder = TraceBuilder(name, metadata={"source": "runtime-api"})
        self._functions: Dict[str, TaskFunction] = {}

    # -- data declaration -----------------------------------------------------
    def data(self, name: str, size: int = 0) -> DataHandle:
        """Declare one task-visible datum and return its handle."""
        return DataHandle(name=name, address=self._space.alloc_one(), size=size)

    def array(self, name: str, count: int, size: int = 0) -> List[DataHandle]:
        """Declare a 1-D array of ``count`` data handles."""
        if count <= 0:
            raise ConfigurationError(f"array {name!r} must have a positive length, got {count}")
        addresses = self._space.alloc(count)
        return [DataHandle(name=f"{name}[{i}]", address=a, size=size) for i, a in enumerate(addresses)]

    def matrix(self, name: str, rows: int, cols: int, size: int = 0) -> DataMatrix:
        """Declare a 2-D matrix of data handles (like Listing 1's ``X``)."""
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(f"matrix {name!r} must have positive dimensions, got {rows}x{cols}")
        handles = [
            [DataHandle(name=f"{name}[{r}][{c}]", address=a, size=size) for c, a in enumerate(self._space.alloc(cols))]
            for r in range(rows)
        ]
        return DataMatrix(name, handles)

    # -- task declaration --------------------------------------------------------
    def task(
        self,
        *,
        inputs: Sequence[str] = (),
        outputs: Sequence[str] = (),
        inouts: Sequence[str] = (),
        duration_us: DurationSpec = 1.0,
        execute: bool = False,
    ) -> Callable[[Callable], TaskFunction]:
        """Decorator equivalent of ``#pragma omp task input(...) ...``.

        Parameters
        ----------
        inputs / outputs / inouts:
            Names of the decorated function's parameters carrying the
            respective access direction.  Parameters not listed carry no
            dependency (scalars, firstprivate values).
        duration_us:
            Either a constant task duration or a callable evaluated on the
            call arguments (useful when the cost depends on the data).
        execute:
            When true, the decorated function body is also executed at
            recording time (for programs that compute real results).
        """

        def decorator(func: Callable) -> TaskFunction:
            task_function = TaskFunction(
                self, func, inputs=inputs, outputs=outputs, inouts=inouts,
                duration_us=duration_us, execute=execute,
            )
            self._functions[task_function.name] = task_function
            return task_function

        return decorator

    # -- barriers ----------------------------------------------------------------
    def taskwait(self) -> None:
        """Record a full ``taskwait`` barrier."""
        self._builder.add_taskwait()

    def taskwait_on(self, handle: DataHandle) -> None:
        """Record a ``taskwait on(handle)`` barrier."""
        if not isinstance(handle, DataHandle):
            raise TraceError(f"taskwait_on expects a DataHandle, got {type(handle).__name__}")
        self._builder.add_taskwait_on(handle.address)

    # -- results ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of task submissions recorded so far."""
        return self._builder.num_tasks

    def functions(self) -> Dict[str, TaskFunction]:
        """The task functions declared on this program."""
        return dict(self._functions)

    def build(self, precompile: bool = False) -> Trace:
        """Freeze the recorded program into an immutable trace.

        With ``precompile=True`` the trace's compiled access program (the
        interned, deduplicated per-task address lists the dependency
        engine runs on) is built eagerly instead of on first simulation,
        which front-loads the one-time compile cost for latency-sensitive
        callers.
        """
        trace = self._builder.build()
        if precompile:
            trace.access_program()
        return trace
