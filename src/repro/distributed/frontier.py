"""The sweep frontier: scheduler-side ownership ledger of grid cells.

:class:`SweepFrontier` tracks every not-yet-finished cell of a sweep and
answers the three questions the scheduler asks:

* *what should this worker run next?* — :meth:`next_chunk` pops the next
  **locality-aware chunk**: cells are grouped into contiguous runs that
  share a locality key (the workload identity, in grid order), so one
  worker replays many cells of one trace back-to-back and its
  per-process trace memo / compiled-program caches stay warm.
* *who can spare work for an idle worker?* — :meth:`steal` moves the
  tail half of the most-loaded worker's unfinished assignment to the
  idle one (the classic steal-from-the-back policy: the victim keeps the
  cells it is about to execute, the thief gets the far end).
* *what did a dead worker leave behind?* — :meth:`fail_worker` requeues
  its unfinished cells at the *front* of the queue (they are the oldest
  work in flight) with a bounded per-cell attempt budget, so a crashing
  cell cannot ping-pong between workers forever.

The frontier is plain bookkeeping — it never touches sockets and is not
itself thread-safe; the scheduler serializes access under its one lock.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Sequence, Set

from repro.common.errors import SimulationError


class SweepFrontier:
    """Ownership ledger for the cells of one distributed sweep.

    Parameters
    ----------
    cells:
        Cell identifiers (grid indices), in deterministic grid order.
    groups:
        Optional parallel sequence of locality keys; contiguous runs of
        equal keys are never split across a chunk boundary unless longer
        than ``chunk_size``.  ``None`` treats the whole grid as one run.
    chunk_size:
        Maximum cells handed out per :meth:`next_chunk`.
    max_attempts:
        Dispatch budget per cell.  A cell whose every dispatch ends in a
        dead worker is requeued at most ``max_attempts - 1`` times;
        exceeding the budget raises :class:`~repro.common.errors.
        SimulationError` (a cell that kills every worker it touches is a
        bug, not bad luck).
    """

    def __init__(
        self,
        cells: Sequence[int],
        groups: Optional[Sequence[Hashable]] = None,
        *,
        chunk_size: int = 16,
        max_attempts: int = 3,
    ) -> None:
        if chunk_size < 1:
            raise SimulationError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_attempts < 1:
            raise SimulationError(f"max_attempts must be >= 1, got {max_attempts}")
        if groups is not None and len(groups) != len(cells):
            raise SimulationError(
                f"{len(cells)} cells but {len(groups)} locality keys")
        self.total = len(cells)
        self.max_attempts = max_attempts
        self.chunk_size = chunk_size
        self._queue: Deque[List[int]] = deque(self._chunked(cells, groups))
        self._assigned: Dict[str, List[int]] = {}
        self._attempts: Dict[int, int] = {}
        self._done: Set[int] = set()

    def _chunked(
        self, cells: Sequence[int], groups: Optional[Sequence[Hashable]]
    ) -> List[List[int]]:
        chunks: List[List[int]] = []
        current: List[int] = []
        current_key: Hashable = object()
        for position, cell in enumerate(cells):
            key = groups[position] if groups is not None else None
            if current and (key != current_key or len(current) >= self.chunk_size):
                chunks.append(current)
                current = []
            current_key = key
            current.append(cell)
        if current:
            chunks.append(current)
        return chunks

    # -- dispatch ----------------------------------------------------------
    def next_chunk(self, worker: str) -> List[int]:
        """Assign and return the next chunk for ``worker`` (may be empty)."""
        if not self._queue:
            return []
        chunk = self._queue.popleft()
        for cell in chunk:
            self._attempts[cell] = self._attempts.get(cell, 0) + 1
        self._assigned.setdefault(worker, []).extend(chunk)
        return chunk

    def steal(self, victim: str, thief: str) -> List[int]:
        """Move the tail half of ``victim``'s unfinished cells to ``thief``.

        Returns the stolen cells (possibly empty — a victim with fewer
        than two unfinished cells keeps what it has; it will finish them
        sooner than a steal round-trip would).
        """
        remaining = self._assigned.get(victim, [])
        if len(remaining) < 2:
            return []
        keep = (len(remaining) + 1) // 2
        stolen = remaining[keep:]
        del remaining[keep:]
        for cell in stolen:
            self._attempts[cell] = self._attempts.get(cell, 0) + 1
        self._assigned.setdefault(thief, []).extend(stolen)
        return stolen

    def steal_victim(self, thief: str) -> Optional[str]:
        """The most-loaded worker worth stealing from, or ``None``."""
        best: Optional[str] = None
        best_load = 1  # a single unfinished cell is not worth stealing
        for worker, remaining in self._assigned.items():
            if worker != thief and len(remaining) > best_load:
                best, best_load = worker, len(remaining)
        return best

    # -- progress ----------------------------------------------------------
    def complete(self, worker: Optional[str], cell: int) -> bool:
        """Record ``cell`` as finished; ``True`` if it was newly done.

        Duplicate completions are expected and harmless: a steal can
        race a victim that already started the stolen cell, and the
        deterministic engine makes both results byte-identical.
        """
        if cell in self._done:
            self._discard(worker, cell)
            return False
        self._done.add(cell)
        self._discard(worker, cell)
        return True

    def _discard(self, worker: Optional[str], cell: int) -> None:
        # The completing worker's list is the likely home, but a raced
        # duplicate may live in another worker's assignment.
        candidates = [worker] if worker in self._assigned else []
        candidates += [w for w in self._assigned if w != worker]
        for candidate in candidates:
            remaining = self._assigned.get(candidate, ())
            if cell in remaining:
                remaining.remove(cell)
                return

    def fail_worker(self, worker: str) -> List[int]:
        """Requeue a dead worker's unfinished cells; return them.

        Raises :class:`SimulationError` when any cell has exhausted its
        ``max_attempts`` dispatch budget.
        """
        remaining = [c for c in self._assigned.pop(worker, []) if c not in self._done]
        exhausted = [c for c in remaining if self._attempts.get(c, 0) >= self.max_attempts]
        if exhausted:
            raise SimulationError(
                f"grid cells {exhausted[:5]}{'...' if len(exhausted) > 5 else ''} "
                f"died with {self.max_attempts} workers in a row "
                f"(max_attempts={self.max_attempts}); giving up")
        # Front of the queue: requeued cells are the oldest work in
        # flight, and the next idle worker should pick them up first.
        for start in range(len(remaining), 0, -self.chunk_size):
            self._queue.appendleft(remaining[max(0, start - self.chunk_size):start])
        return remaining

    def remaining_for(self, worker: str) -> int:
        """Unfinished cells currently assigned to ``worker``."""
        return len(self._assigned.get(worker, ()))

    @property
    def done_count(self) -> int:
        return len(self._done)

    @property
    def is_done(self) -> bool:
        return len(self._done) >= self.total

    @property
    def has_queued(self) -> bool:
        return bool(self._queue)
