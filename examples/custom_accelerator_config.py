#!/usr/bin/env python3
"""Design-space exploration: how many task graphs should Nexus# have?

The paper picks 6 task graphs as the sweet spot (Section VI): beyond
that, the extra hardware lowers the synthesis frequency (Table I) faster
than the added parallelism helps.  This example reproduces that
trade-off: it sweeps the number of task graphs, reports the FPGA
resources and frequency from the Table I model, and measures the
resulting performance on the fine-grained h264dec workload — both at a
flat 100 MHz (pure architecture scaling) and at the achievable frequency
(the realistic design point).

Run with::

    python examples/custom_accelerator_config.py
"""

from repro import NexusSharpConfig, NexusSharpManager, simulate
from repro.analysis.formatting import render_table
from repro.fpga import estimate_nexus_sharp
from repro.workloads import generate_h264dec


def main() -> None:
    trace = generate_h264dec(grouping=1, num_frames=10, scale=0.04, seed=1)
    num_cores = 32
    rows = []
    for num_tg in (1, 2, 3, 4, 6, 8, 12):
        resources = estimate_nexus_sharp(num_tg)
        flat = simulate(
            trace,
            NexusSharpManager(NexusSharpConfig(num_task_graphs=num_tg, frequency_mhz=100.0)),
            num_cores,
        )
        realistic = simulate(
            trace,
            NexusSharpManager(NexusSharpConfig(num_task_graphs=num_tg)),
            num_cores,
        )
        rows.append([
            num_tg,
            f"{resources.lut_pct:.0f}%",
            f"{resources.block_ram_pct:.0f}%",
            f"{resources.test_frequency_mhz:.1f}",
            "yes" if resources.fits else "NO",
            f"{flat.speedup_vs_serial:.2f}x",
            f"{realistic.speedup_vs_serial:.2f}x",
        ])
    print(render_table(
        ["task graphs", "LUTs", "BRAMs", "freq (MHz)", "fits ZC706",
         f"speedup @100MHz ({num_cores} cores)", "speedup @synthesis freq"],
        rows,
        title=f"Nexus# design-space sweep on {trace.name} (scaled)",
    ))
    print()
    print("The knee of the curve — the paper's choice of 6 task graphs — is where")
    print("the synthesis-frequency column stops improving despite more hardware.")


if __name__ == "__main__":
    main()
