"""The "No Overhead" (ideal) manager.

This reproduces the paper's first simulation set: "This simulates the
execution of an application without any overhead, to determine the lower
bound for the execution time of the benchmarks.  In this simulation, the
simulation time does not advance while dependencies are resolved"
(Section V-B).  Dependency bookkeeping is still performed — tasks only
become ready when their producers finish — but it costs zero simulated
time, so the resulting curve shows when the *application's* parallelism,
not the task manager, is the limiting factor.
"""

from __future__ import annotations

from typing import Mapping

from repro.managers.base import (
    FinishOutcome,
    LaneKernelSpec,
    ReadyNotification,
    SubmitOutcome,
    TaskManagerModel,
)
from repro.taskgraph.tracker import DependencyTracker
from repro.trace.task import TaskDescriptor


class IdealManager(TaskManagerModel):
    """Zero-overhead dependency resolution (the paper's ideal curve)."""

    name = "Ideal"
    supports_taskwait_on = True
    worker_overhead_us = 0.0

    def __init__(self) -> None:
        self._tracker = DependencyTracker(num_tables=1, distribution_key=("central",))

    def reset(self) -> None:
        self._tracker.reset()

    def prepare_program(self, program) -> None:
        self._tracker.bind_program(program)

    def submit(self, task: TaskDescriptor, time_us: float) -> SubmitOutcome:
        result = self._tracker.insert_task(task)
        ready = (ReadyNotification(task.task_id, time_us),) if result.ready else ()
        return SubmitOutcome(accept_time_us=time_us, ready=ready)

    def finish(self, task_id: int, time_us: float) -> FinishOutcome:
        result = self._tracker.finish_task(task_id)
        ready = tuple(ReadyNotification(t, time_us) for t in result.newly_ready)
        return FinishOutcome(ready=ready, notify_done_us=time_us)

    def lane_kernel(self) -> LaneKernelSpec:
        """The ideal manager is pure dependency bookkeeping: zero cost,
        ready times equal to the submit/finish times — exactly the batch
        engine's ``"ideal"`` kernel."""
        return LaneKernelSpec(kind="ideal")

    def statistics(self) -> Mapping[str, object]:
        return {
            "tasks_inserted": self._tracker.total_inserted,
            "tasks_finished": self._tracker.total_finished,
        }
