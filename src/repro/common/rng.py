"""Deterministic random-number helpers.

Every stochastic component of the reproduction (task-duration jitter in
the workload generators, synthetic DAG construction, address
randomisation) draws from a :class:`numpy.random.Generator` created
through this module, so a single integer seed reproduces a whole
experiment bit-for-bit.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

#: The library-wide default seed used when an experiment does not specify
#: one explicitly.  Chosen arbitrarily but fixed forever.
DEFAULT_SEED: int = 0x5EC5_0000 + 2015  # Nexus# was published in 2015.

SeedLike = Union[int, np.random.Generator, None]


def derive_seed(base_seed: int, *labels: Union[str, int]) -> int:
    """Derive a child seed from a base seed and a sequence of labels.

    The derivation is stable across processes and Python versions (it
    uses SHA-256 of the textual representation), so components that need
    independent random streams — e.g. the duration jitter of two
    different benchmarks — can each derive their own seed from the
    experiment seed without accidentally sharing a stream.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little")


def make_rng(seed: SeedLike = None, *labels: Union[str, int]) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from a flexible seed spec.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
        existing generator (returned unchanged when no labels are given).
    labels:
        Optional labels mixed into the seed via :func:`derive_seed`, used
        to give sub-components independent streams.
    """
    if isinstance(seed, np.random.Generator):
        if not labels:
            return seed
        # Derive a child generator deterministically from the parent.
        child_seed = int(seed.integers(0, 2**63 - 1))
        return np.random.default_rng(derive_seed(child_seed, *labels))
    base = DEFAULT_SEED if seed is None else int(seed)
    if labels:
        base = derive_seed(base, *labels)
    return np.random.default_rng(base)


def spawn_rngs(seed: SeedLike, count: int, label: str = "stream") -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [make_rng(seed, label, index) for index in range(count)]


def resolve_seed(seed: Optional[int]) -> int:
    """Return the effective integer seed for ``seed`` (``None`` → default)."""
    return DEFAULT_SEED if seed is None else int(seed)
