"""Task-manager models.

Every scheme the paper compares implements the common
:class:`repro.managers.base.TaskManagerModel` interface so that the
multicore machine simulator (:mod:`repro.system`) can drive any of them
interchangeably:

* :class:`repro.managers.ideal.IdealManager` — the paper's "No Overhead"
  simulation (zero-cost dependency resolution).
* :class:`repro.managers.nanos.NanosManager` — an analytical model of the
  Nanos software runtime (master-side task creation plus a lock-protected
  dependency-resolution critical section).
* :class:`repro.managers.software.VandierendonckManager` — an optimistic
  software task-graph manager modelled after the 400-cycles-per-task
  figure the paper quotes from Vandierendonck et al. [17].
* :class:`repro.nexus.nexuspp.NexusPlusPlusManager` — the centralised
  hardware baseline (imported from :mod:`repro.nexus`).
* :class:`repro.nexus.nexussharp.NexusSharpManager` — the paper's
  contribution (imported from :mod:`repro.nexus`).
"""

from repro.managers.base import (
    FinishOutcome,
    ReadyNotification,
    SubmitOutcome,
    TaskManagerModel,
)
from repro.managers.ideal import IdealManager
from repro.managers.nanos import NanosConfig, NanosManager
from repro.managers.software import VandierendonckConfig, VandierendonckManager

__all__ = [
    "TaskManagerModel",
    "ReadyNotification",
    "SubmitOutcome",
    "FinishOutcome",
    "IdealManager",
    "NanosManager",
    "NanosConfig",
    "VandierendonckManager",
    "VandierendonckConfig",
]
