"""Recursive dynamic workload generators and the workload fuzzer."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.managers.ideal import IdealManager
from repro.system.machine import simulate, simulate_dynamic
from repro.trace.serialization import trace_digest
from repro.workloads.fuzz import FuzzSpec, fuzz_program
from repro.workloads.recursive import (
    fib_program,
    nqueens_program,
    recursive_sort_program,
    strassen_program,
)
from repro.workloads.registry import (
    DYNAMIC_PROGRAMS,
    STREAMS,
    get_dynamic_program,
    get_workload,
    get_workload_stream,
    is_dynamic_workload,
    list_workloads,
)

SMALL_PROGRAMS = {
    "fib": lambda seed: fib_program(6, seed=seed),
    "nqueens": lambda seed: nqueens_program(5, seed=seed),
    "recursive-sort": lambda seed: recursive_sort_program(8, seed=seed),
    "strassen": lambda seed: strassen_program(1, seed=seed),
}


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(SMALL_PROGRAMS))
    def test_metadata_counts_match_elaboration(self, name):
        program = SMALL_PROGRAMS[name](seed=11)
        assert program.elaborate().num_tasks == program.metadata["num_tasks"]

    @pytest.mark.parametrize("name", sorted(SMALL_PROGRAMS))
    def test_deterministic_per_seed(self, name):
        a = SMALL_PROGRAMS[name](seed=11).elaborate()
        b = SMALL_PROGRAMS[name](seed=11).elaborate()
        c = SMALL_PROGRAMS[name](seed=12).elaborate()
        assert trace_digest(a) == trace_digest(b)
        assert trace_digest(a) != trace_digest(c)

    @pytest.mark.parametrize("name", sorted(SMALL_PROGRAMS))
    def test_dynamic_run_validates(self, name):
        program = SMALL_PROGRAMS[name](seed=11)
        result = simulate_dynamic(program, IdealManager(), num_cores=4, validate=True)
        assert result.num_tasks == program.metadata["num_tasks"]

    @pytest.mark.parametrize("name", sorted(SMALL_PROGRAMS))
    def test_elaboration_replays_statically(self, name):
        trace = SMALL_PROGRAMS[name](seed=11).elaborate()
        result = simulate(trace, IdealManager(), num_cores=4, validate=True)
        assert result.num_tasks == trace.num_tasks

    @pytest.mark.parametrize("n,solutions", [(4, 2), (5, 10), (6, 4)])
    def test_nqueens_counts_solutions(self, n, solutions):
        assert nqueens_program(n, seed=1).metadata["num_solutions"] == solutions

    def test_fib_rejects_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            fib_program(-1)
        with pytest.raises(ConfigurationError):
            fib_program(5, scale=0.0)
        with pytest.raises(ConfigurationError):
            recursive_sort_program(0)
        with pytest.raises(ConfigurationError):
            strassen_program(0)
        with pytest.raises(ConfigurationError):
            nqueens_program(0)


class TestRegistry:
    def test_dynamic_workloads_registered(self):
        for name in ("fib", "nqueens", "recursive-sort", "strassen"):
            assert name in DYNAMIC_PROGRAMS
            assert name in STREAMS
            assert name in list_workloads()
            assert is_dynamic_workload(name)
        assert not is_dynamic_workload("c-ray")

    def test_get_workload_materialises_elaboration(self):
        trace = get_workload("fib", seed=3)
        program = get_dynamic_program("fib", seed=3)
        assert trace_digest(trace) == trace_digest(program.elaborate())

    def test_depth_knob(self):
        assert get_dynamic_program("fib", depth=5).metadata["n"] == 5
        assert get_dynamic_program("nqueens", depth=4).metadata["n"] == 4
        assert get_dynamic_program("recursive-sort", depth=3).metadata["num_blocks"] == 8
        assert get_dynamic_program("strassen", depth=1).metadata["depth"] == 1
        stream = get_workload_stream("fib", depth=5)
        assert stream.metadata["n"] == 5

    def test_depth_for_static_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload_stream("c-ray", depth=3)

    def test_unknown_dynamic_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown dynamic workload"):
            get_dynamic_program("no-such")


class TestFuzzer:
    def test_budget_cap_respected(self):
        spec = FuzzSpec(seed=1, max_depth=6, max_children=6, roots=10,
                        recurse_probability=1.0, max_tasks=50)
        program = fuzz_program(spec)
        assert program.metadata["num_tasks"] <= 50
        assert program.elaborate().num_tasks == program.metadata["num_tasks"]

    def test_deterministic_per_seed(self):
        spec = FuzzSpec(seed=9)
        assert trace_digest(fuzz_program(spec).elaborate()) == \
            trace_digest(fuzz_program(FuzzSpec(seed=9)).elaborate())
        assert trace_digest(fuzz_program(spec).elaborate()) != \
            trace_digest(fuzz_program(FuzzSpec(seed=10)).elaborate())

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FuzzSpec(seed=1, max_depth=-1)
        with pytest.raises(ConfigurationError):
            FuzzSpec(seed=1, roots=0)
        with pytest.raises(ConfigurationError):
            FuzzSpec(seed=1, conflict_density=1.5)
        with pytest.raises(ConfigurationError):
            FuzzSpec(seed=1, duration_range_us=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            FuzzSpec(seed=1, max_tasks=0)

    def test_describe_round_trips_through_metadata(self):
        spec = FuzzSpec(seed=77, max_depth=2, conflict_density=0.25)
        program = fuzz_program(spec)
        for key, value in spec.describe().items():
            assert program.metadata[key] == value
