"""Unit tests for the circuit breaker guarding the fabric backend."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.resilience.circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(threshold=3, cooldown=10.0):
    clock = FakeClock()
    return CircuitBreaker(failure_threshold=threshold, cooldown=cooldown,
                          clock=clock), clock


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown=0.0)

    def test_opens_after_consecutive_failures(self):
        breaker, _ = make(threshold=3)
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never three in a row

    def test_half_open_allows_exactly_one_probe(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # everyone else keeps waiting
        assert not breaker.allow()

    def test_probe_success_closes(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and breaker.trips == 2
        clock.now = 19.9
        assert not breaker.allow()
        clock.now = 20.0
        assert breaker.allow()  # the next probe window

    def test_to_json(self):
        breaker, _ = make(threshold=1)
        breaker.record_success()
        breaker.record_failure()
        doc = breaker.to_json()
        assert doc == {"state": "open", "trips": 1,
                       "failures": 1, "successes": 1}
