"""Seeded, fully deterministic fault plans.

A :class:`FaultPlan` is a *pure function* from ``(scope, event index)``
to a fault decision — no global RNG, no shared mutable state.  Every
injection shim (a wrapped frame stream, a wrapped result cache, a
worker's execution loop, the serving batcher) owns a **scope** string
(``"frame:worker-3:e2"``, ``"cache:worker-1"``, ...) and asks the plan
what to do at its Nth event.  Because decisions are hashes of
``(seed, scope, index, fault kind)``:

* the same seed reproduces the same fault sequence, run after run,
  regardless of thread interleaving or wall-clock timing;
* distinct scopes draw independent fault streams, so adding a worker
  never perturbs the faults another worker sees;
* there is nothing to synchronise — a worker process can reconstruct
  its exact fault stream from the ``(seed, profile)`` pair the
  scheduler ships in the ``setup`` frame.

Profiles bundle the per-fault rates; ``parse_chaos("soak:2015")`` and
the ``REPRO_CHAOS`` environment knob (used by the CI soak) build plans
from a compact string form.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional, Union

from repro.common.errors import ConfigurationError

#: Frame-fault kinds, checked in this fixed order (first match wins) so
#: a decision sequence is stable across versions of the checking code.
FRAME_FAULTS = ("drop", "duplicate", "corrupt", "truncate", "delay", "reset")


@dataclass(frozen=True)
class FaultProfile:
    """Per-fault rates and parameters of one chaos profile.

    All ``*_rate`` fields are probabilities in ``[0, 1]`` evaluated
    independently per event; ``0`` disables the fault.
    """

    # -- wire faults (ChaosFrameStream, per sent frame) --------------------
    frame_drop_rate: float = 0.0
    frame_duplicate_rate: float = 0.0
    frame_corrupt_rate: float = 0.0
    frame_truncate_rate: float = 0.0
    frame_delay_rate: float = 0.0
    frame_delay_s: float = 0.02
    #: Abruptly close the connection after this many sent frames
    #: (0 = never); eligibility is drawn per scope with ``reset_rate``.
    reset_after_frames: int = 0
    reset_rate: float = 0.0
    # -- store faults (ChaosResultCache) -----------------------------------
    cache_bitflip_rate: float = 0.0
    cache_torn_tmp_rate: float = 0.0
    cache_slow_read_rate: float = 0.0
    cache_slow_read_s: float = 0.02
    # -- worker execution faults (per executed cell) -----------------------
    #: Hard-exit (SIGKILL-equivalent ``os._exit``) at this executed-cell
    #: count (0 = never); eligibility drawn per scope with ``crash_rate``.
    crash_after_cells: int = 0
    crash_rate: float = 0.0
    straggle_rate: float = 0.0
    straggle_s: float = 0.5
    #: Go silent (stop heartbeats, keep the socket open) at this
    #: executed-cell count (0 = never); eligibility via ``hang_rate``.
    hang_after_cells: int = 0
    hang_rate: float = 0.0
    # -- serving faults (per admitted request) -----------------------------
    serve_error_rate: float = 0.0

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{spec.name} must be in [0, 1], got {value}")
            if spec.name.endswith(("_s", "_cells", "_frames")) and value < 0:
                raise ConfigurationError(
                    f"{spec.name} must be >= 0, got {value}")


#: Named profiles.  ``soak`` is the CI/chaos-soak default: every fault
#: class fires at a rate the resilience layer is expected to absorb
#: with byte-identical output and no hangs.
PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(),
    # Mild-but-complete: wire drops/corruption, store damage, one-in-a-
    # few workers crashing once, occasional stragglers.
    "soak": FaultProfile(
        frame_drop_rate=0.01,
        frame_duplicate_rate=0.01,
        frame_corrupt_rate=0.0015,
        frame_delay_rate=0.02,
        frame_delay_s=0.01,
        cache_bitflip_rate=0.02,
        cache_torn_tmp_rate=0.02,
        cache_slow_read_rate=0.02,
        cache_slow_read_s=0.005,
        crash_after_cells=40,
        crash_rate=0.4,
        straggle_rate=0.004,
        straggle_s=0.4,
    ),
    # Wire-only: every frame fault, hot.
    "wire": FaultProfile(
        frame_drop_rate=0.05,
        frame_duplicate_rate=0.05,
        frame_corrupt_rate=0.01,
        frame_truncate_rate=0.005,
        frame_delay_rate=0.1,
        frame_delay_s=0.01,
        reset_after_frames=200,
        reset_rate=0.5,
    ),
    # Store-only: bit rot, torn temp files, slow disks.
    "store": FaultProfile(
        cache_bitflip_rate=0.1,
        cache_torn_tmp_rate=0.1,
        cache_slow_read_rate=0.1,
        cache_slow_read_s=0.01,
    ),
    # Worker-only: crashes, stragglers, silent hangs.
    "workers": FaultProfile(
        crash_after_cells=25,
        crash_rate=0.5,
        straggle_rate=0.01,
        straggle_s=0.5,
        hang_after_cells=60,
        hang_rate=0.25,
    ),
    # Serving-only: deterministic engine exceptions per admitted request.
    "serve": FaultProfile(serve_error_rate=0.1),
}


class FaultPlan:
    """Deterministic per-seed schedule of faults (see module docstring)."""

    def __init__(self, seed: int, profile: Union[str, FaultProfile] = "soak",
                 **overrides: Any) -> None:
        if isinstance(profile, str):
            self.profile_name = profile
            try:
                profile = PROFILES[profile]
            except KeyError:
                raise ConfigurationError(
                    f"unknown chaos profile {self.profile_name!r} "
                    f"(known: {', '.join(sorted(PROFILES))})") from None
        else:
            self.profile_name = "custom"
        if overrides:
            profile = replace(profile, **overrides)
            self.profile_name = "custom"
        self.seed = int(seed)
        self.profile = profile

    # -- the decision primitive --------------------------------------------
    def fraction(self, scope: str, index: int, salt: str) -> float:
        """Deterministic uniform fraction in ``[0, 1)`` for one event."""
        digest = hashlib.blake2b(
            f"{self.seed}|{scope}|{index}|{salt}".encode("utf-8"),
            digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def _fires(self, rate: float, scope: str, index: int, salt: str) -> bool:
        return rate > 0.0 and self.fraction(scope, index, salt) < rate

    # -- per-seam decisions ------------------------------------------------
    def decide_frame(self, scope: str, index: int) -> Optional[str]:
        """Fault (if any) for the ``index``-th frame sent on ``scope``.

        Returns one of :data:`FRAME_FAULTS` or ``None``; the kinds are
        checked in fixed order with independent salts, first match wins.
        """
        p = self.profile
        rates = (p.frame_drop_rate, p.frame_duplicate_rate,
                 p.frame_corrupt_rate, p.frame_truncate_rate,
                 p.frame_delay_rate, 0.0)
        for kind, rate in zip(FRAME_FAULTS, rates):
            if kind == "reset":
                continue
            if self._fires(rate, scope, index, kind):
                return kind
        if (p.reset_after_frames and index >= p.reset_after_frames
                and self._fires(p.reset_rate, scope, 0, "reset-eligible")):
            return "reset"
        return None

    def decide_cache(self, scope: str, index: int, op: str) -> Optional[str]:
        """Fault for the ``index``-th ``op`` (``"get"``/``"put"``) on a store."""
        p = self.profile
        if op == "put":
            if self._fires(p.cache_bitflip_rate, scope, index, "bitflip"):
                return "bitflip"
            if self._fires(p.cache_torn_tmp_rate, scope, index, "torn-tmp"):
                return "torn-tmp"
        elif op == "get":
            if self._fires(p.cache_slow_read_rate, scope, index, "slow-read"):
                return "slow-read"
        return None

    def decide_cell(self, scope: str, index: int) -> Optional[str]:
        """Fault before executing the ``index``-th cell on one worker."""
        p = self.profile
        if (p.crash_after_cells and index == p.crash_after_cells
                and self._fires(p.crash_rate, scope, 0, "crash-eligible")):
            return "crash"
        if (p.hang_after_cells and index == p.hang_after_cells
                and self._fires(p.hang_rate, scope, 0, "hang-eligible")):
            return "hang"
        if self._fires(p.straggle_rate, scope, index, "straggle"):
            return "straggle"
        return None

    def decide_serve(self, index: int) -> bool:
        """Whether the ``index``-th admitted serving request blows up."""
        return self._fires(self.profile.serve_error_rate, "serve", index, "error")

    # -- transport ---------------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe form for the fabric's ``setup`` frame."""
        doc: Dict[str, Any] = {"seed": self.seed, "profile": self.profile_name}
        if self.profile_name == "custom":
            doc["rates"] = {spec.name: getattr(self.profile, spec.name)
                            for spec in fields(self.profile)}
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "FaultPlan":
        if doc.get("profile") == "custom":
            return cls(int(doc["seed"]), FaultProfile(**doc["rates"]))
        return cls(int(doc["seed"]), str(doc.get("profile", "soak")))

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, profile={self.profile_name!r})"


def parse_chaos(value: Union[str, "FaultPlan", None]) -> Optional[FaultPlan]:
    """Build a plan from the compact ``"profile:seed"`` string form.

    ``"soak:2015"`` → the soak profile with seed 2015; a bare
    ``"2015"`` uses the default (soak) profile; ``""``/``"none"``/
    ``None`` disable chaos.  Seeds may be signed (``"-5"``,
    ``"wire:-5"``).  An existing plan passes through.
    """
    if value is None or isinstance(value, FaultPlan):
        return value
    text = value.strip()
    if not text or text.lower() in ("none", "off", "0"):
        return None
    profile, sep, seed = text.partition(":")
    if not sep:
        # A bare token is a seed whenever it parses as a (possibly
        # signed) integer -- str.isdigit() would misroute "-5" into the
        # profile branch and report a confusing unknown-profile error.
        try:
            int(profile)
        except ValueError:
            seed = "0"
        else:
            profile, seed = "soak", profile
    try:
        seed_value = int(seed)
    except ValueError:
        raise ConfigurationError(
            f"chaos spec must be 'profile:seed', got {value!r}") from None
    return FaultPlan(seed_value, profile or "soak")


#: Environment knob consulted by SweepRunner and the serving layer when
#: no explicit plan is given — what the CI soak job sets.
CHAOS_ENV = "REPRO_CHAOS"


def plan_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[FaultPlan]:
    """Build a plan from ``REPRO_CHAOS`` (e.g. ``soak:2015``), if set."""
    environ = os.environ if environ is None else environ
    return parse_chaos(environ.get(CHAOS_ENV))
