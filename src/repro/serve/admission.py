"""Bounded-queue admission control for the serving layer.

The serving analogue of the ``max_in_flight`` window in
:meth:`Machine.run_stream <repro.system.machine.Machine.run_stream>`:
instead of letting a bursty client fill an unbounded queue (and turn
every later request's latency into the backlog's), the controller admits
at most ``max_pending`` simulation cells at a time.  Past that, the
server answers **429** with a ``Retry-After`` estimated from the
measured service rate — clients back off for about as long as the
backlog actually needs, not a magic constant.

The controller is intentionally not thread-safe: all accounting happens
on the server's single event loop.  (Executor threads only *run*
simulations; admission and release bookkeeping stays on the loop.)
"""

from __future__ import annotations

import time
from typing import Callable


class Saturated(Exception):
    """The bounded queue is full; carries the suggested retry delay."""

    def __init__(self, retry_after: float, pending: int, max_pending: int) -> None:
        super().__init__(
            f"serving queue is saturated ({pending}/{max_pending} cells pending); "
            f"retry after {retry_after:.0f}s"
        )
        self.retry_after = retry_after
        self.pending = pending
        self.max_pending = max_pending


class AdmissionController:
    """Admit up to ``max_pending`` simulation cells; reject the rest.

    Parameters
    ----------
    max_pending:
        Upper bound on cells admitted but not yet finished.  A multi-cell
        request (a sweep) is admitted atomically: all of its uncached
        cells or none, so a half-admitted sweep can never wedge the
        queue.
    clock:
        Injectable monotonic clock (tests drive the rate estimate with a
        fake one).
    """

    #: Retry-After clamp (seconds): never tell a client to come back
    #: instantly (it would hammer a saturated server) nor to give up on
    #: the day (the backlog drains at simulation speed, not hours).
    MIN_RETRY_AFTER = 1.0
    MAX_RETRY_AFTER = 60.0

    def __init__(self, max_pending: int, clock: Callable[[], float] = time.monotonic) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self.pending = 0
        self.rejected = 0
        self._clock = clock
        #: Exponentially-weighted cells/second over finished blocks;
        #: ``None`` until the first block completes.
        self._rate: float | None = None

    # -- admission ---------------------------------------------------------
    def try_acquire(self, cells: int = 1) -> None:
        """Admit ``cells`` or raise :class:`Saturated` (all-or-nothing)."""
        if cells < 0:
            raise ValueError(f"cells must be >= 0, got {cells}")
        if self.pending + cells > self.max_pending:
            self.rejected += 1
            raise Saturated(self.retry_after(cells), self.pending, self.max_pending)
        self.pending += cells

    def release(self, cells: int, elapsed: float | None = None) -> None:
        """Return ``cells`` to the queue budget, folding the observed
        service rate (``cells / elapsed``) into the Retry-After estimate."""
        self.pending = max(0, self.pending - cells)
        if elapsed is not None and elapsed > 0 and cells > 0:
            observed = cells / elapsed
            self._rate = observed if self._rate is None else (
                0.7 * self._rate + 0.3 * observed)

    # -- estimates ---------------------------------------------------------
    @property
    def service_rate(self) -> float | None:
        """Smoothed cells/second, or ``None`` before any block finished."""
        return self._rate

    def retry_after(self, cells: int = 1) -> float:
        """Seconds until the backlog plausibly has room for ``cells``."""
        if cells > self.max_pending:
            # The request exceeds the whole queue budget: no amount of
            # draining makes it fit, so a drain estimate is meaningless.
            # Answer the ceiling rather than an optimistic lower figure.
            return self.MAX_RETRY_AFTER
        if self._rate is None or self._rate <= 0:
            return self.MIN_RETRY_AFTER
        # Time to drain enough of the backlog that this request fits.
        overflow = self.pending + cells - self.max_pending
        if overflow <= 0:
            return self.MIN_RETRY_AFTER
        return min(max(overflow / self._rate, self.MIN_RETRY_AFTER),
                   self.MAX_RETRY_AFTER)
