"""Gaussian elimination with partial pivoting (Table III / Figure 9).

The paper uses this micro-benchmark "to validate the dummy tasks/entries
approach": the number of tasks that depend on one memory segment grows
with the matrix size (all row-update tasks of an elimination step read
the same pivot row), so the kick-off lists must grow dynamically.  It is
also, deliberately, a *worst case* for the Nexus# distribution: because a
whole wave of tasks shares one input address, only one task graph
receives work at a time (Figure 3(B)), so adding task graphs cannot help.

Structure (Figure 6), for an ``n x n`` matrix:

* ``T_i^i`` — pivot selection/normalisation of row ``i`` (``inout row_i``);
* ``T_i^j`` (j > i) — eliminate column ``i`` of row ``j`` using the pivot
  row (``in row_i, inout row_j``).

Task count: ``n(n+1)/2 - 1`` (Table III).  Per-task work is
``n - i + 1`` FLOPs, giving the average of ``(2n+1)/3 ≈ 2n/3`` FLOPs
reported in Table III; execution time assumes 2-GFLOPS worker cores
(Section VI), i.e. ``FLOPs / 2000`` µs.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.constants import GAUSSIAN_CORE_GFLOPS
from repro.common.errors import ConfigurationError
from repro.trace.events import TraceEvent
from repro.trace.stream import EventEmitter, TraceStream, materialize
from repro.trace.trace import Trace
from repro.workloads.addressing import AddressSpace

#: Matrix sizes evaluated in Table III / Figure 9.
PAPER_MATRIX_SIZES = (250, 500, 1000, 3000)


def gaussian_task_count(matrix_size: int) -> int:
    """Number of tasks for an ``n x n`` elimination (Table III formula)."""
    if matrix_size < 2:
        raise ConfigurationError(f"matrix_size must be >= 2, got {matrix_size}")
    return matrix_size * (matrix_size + 1) // 2 - 1


def gaussian_avg_flops(matrix_size: int) -> float:
    """Average task weight in FLOPs (Table III: ~2n/3)."""
    if matrix_size < 2:
        raise ConfigurationError(f"matrix_size must be >= 2, got {matrix_size}")
    n = matrix_size
    total = 0
    for i in range(1, n):
        # One pivot task plus (n - i) update tasks, each of weight (n-i+1).
        total += (n - i + 1) * (n - i + 1)
    return total / gaussian_task_count(n)


def stream_gaussian_elimination(
    matrix_size: int = 250,
    *,
    core_gflops: float = GAUSSIAN_CORE_GFLOPS,
    seed: Optional[int] = None,
) -> TraceStream:
    """Stream the Gaussian-elimination trace (see
    :func:`generate_gaussian_elimination`).

    Live generator state is the O(n) row-address list — small next to the
    O(n²/2) task count.
    """
    if matrix_size < 2:
        raise ConfigurationError(f"matrix_size must be >= 2, got {matrix_size}")
    if core_gflops <= 0:
        raise ConfigurationError(f"core_gflops must be positive, got {core_gflops}")
    n = matrix_size

    def events() -> Iterator[TraceEvent]:
        space = AddressSpace(seed=seed)
        emit = EventEmitter()
        row_addresses = space.alloc(n)
        flops_to_us = 1.0 / (core_gflops * 1000.0)  # FLOPs -> µs at core_gflops GFLOP/s
        for i in range(1, n):  # elimination steps (the last row needs no step)
            weight_flops = n - i + 1
            duration_us = weight_flops * flops_to_us
            pivot_row = row_addresses[i - 1]
            # Pivot task T_i^i.
            yield emit.task("pivot", duration_us=duration_us, inouts=[pivot_row])
            # Update tasks T_i^j for all rows below the pivot.
            for j in range(i + 1, n + 1):
                yield emit.task(
                    "eliminate",
                    duration_us=duration_us,
                    inputs=[pivot_row],
                    inouts=[row_addresses[j - 1]],
                )
        yield emit.taskwait()

    return TraceStream(
        f"gaussian-{n}",
        events,
        metadata={
            "matrix_size": n,
            "core_gflops": core_gflops,
            "num_tasks": gaussian_task_count(n),
            "avg_flops": gaussian_avg_flops(n),
        },
    )


def generate_gaussian_elimination(
    matrix_size: int = 250,
    *,
    core_gflops: float = GAUSSIAN_CORE_GFLOPS,
    seed: Optional[int] = None,
) -> Trace:
    """Generate the Gaussian-elimination trace for an ``n x n`` matrix.

    Parameters
    ----------
    matrix_size:
        Matrix dimension ``n`` (250/500/1000/3000 in the paper).
    core_gflops:
        Worker-core throughput used to convert FLOPs to micro-seconds
        (2 GFLOPS in the paper).
    seed:
        Unused (the workload is fully deterministic); accepted for
        interface uniformity with the other generators.
    """
    return materialize(stream_gaussian_elimination(
        matrix_size, core_gflops=core_gflops, seed=seed))
