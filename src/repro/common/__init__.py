"""Shared low-level utilities for the Nexus# reproduction.

This package contains the pieces every other subpackage relies on:

* :mod:`repro.common.errors` — the exception hierarchy.
* :mod:`repro.common.constants` — hardware constants (address width,
  default clock frequencies, table geometries) taken from the paper.
* :mod:`repro.common.units` — conversions between cycles, seconds and
  the micro-second task durations used by the traces.
* :mod:`repro.common.rng` — deterministic random-number helpers so that
  every workload generator and every simulation is reproducible.
* :mod:`repro.common.validation` — small argument-checking helpers used
  throughout the public API.
"""

from repro.common.constants import (
    ADDRESS_BITS,
    ADDRESS_MASK,
    CACHE_LINE_BYTES,
    DEFAULT_FREQUENCY_MHZ,
    MAX_TASK_GRAPHS,
)
from repro.common.errors import (
    CapacityError,
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.common.rng import derive_seed, make_rng
from repro.common.units import (
    Frequency,
    cycles_to_seconds,
    cycles_to_us,
    seconds_to_cycles,
    us_to_cycles,
    us_to_seconds,
)
from repro.common.validation import (
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_MASK",
    "CACHE_LINE_BYTES",
    "DEFAULT_FREQUENCY_MHZ",
    "MAX_TASK_GRAPHS",
    "CapacityError",
    "ConfigurationError",
    "ReproError",
    "SimulationError",
    "TraceError",
    "derive_seed",
    "make_rng",
    "Frequency",
    "cycles_to_seconds",
    "cycles_to_us",
    "seconds_to_cycles",
    "us_to_cycles",
    "us_to_seconds",
    "check_non_negative",
    "check_positive",
    "check_power_of_two",
    "check_probability",
]
