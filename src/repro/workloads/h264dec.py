"""h264dec: H.264 macroblock wavefront decoding workload (Starbench).

This is the paper's headline workload (Listing 1, Figure 7, Figure 8b):
decoding macroblocks of a Full-HD frame where each macroblock depends on
its *left* and *upper-right* neighbours, giving wavefront parallelism.
The decoder can group ``g x g`` macroblocks into one task; the finer the
grouping, the harder the workload is for the task manager (Table II:
4.6 µs average tasks for 1x1, 189.9 µs for 8x8).

Structure generated per frame of a 1920x1088 stream:

* a grid of ``ceil(120/g) x ceil(68/g)`` decode tasks with the Listing-1
  dependency pattern (``input(left, upright) inout(this)``) plus a read
  of the co-located block of the previous frame (motion-compensation
  reference), giving 2-4 input dependencies per task;
* frames are submitted back to back; before reusing a frame buffer the
  master executes ``taskwait on`` for the last block of the frame that
  previously occupied it.  Managers supporting the pragma (Nexus#) keep
  several frames in flight; managers that do not (Nexus++) degrade it to
  a full ``taskwait`` and lose the inter-frame overlap — the effect the
  paper highlights.

The paper's traces contain roughly 1.7x more tasks than pure macroblock
counts (the real decoder also spawns entropy-decode and deblocking
helper tasks); the substitution keeps the macroblock wavefront only and
is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.common.constants import H264_FRAME_HEIGHT, H264_FRAME_WIDTH, H264_MACROBLOCK_PIXELS
from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.trace.events import TraceEvent
from repro.trace.stream import EventEmitter, TraceStream, materialize
from repro.trace.trace import Trace
from repro.workloads.addressing import AddressSpace

#: Average task durations per macroblock grouping (Table II).
PAPER_AVG_TASK_US = {1: 4.6, 2: 15.3, 4: 55.6, 8: 189.9}
#: Task counts reported in Table II (for reference / reporting only).
PAPER_NUM_TASKS = {1: 139961, 2: 35921, 4: 9333, 8: 2686}


@dataclass(frozen=True)
class H264Geometry:
    """Macroblock-grid geometry of the decoded stream."""

    frame_width: int = H264_FRAME_WIDTH
    frame_height: int = H264_FRAME_HEIGHT
    macroblock: int = H264_MACROBLOCK_PIXELS

    @property
    def mb_cols(self) -> int:
        return -(-self.frame_width // self.macroblock)

    @property
    def mb_rows(self) -> int:
        return -(-self.frame_height // self.macroblock)

    def task_grid(self, grouping: int) -> tuple[int, int]:
        """(rows, cols) of the task grid for ``grouping x grouping`` blocks."""
        return (-(-self.mb_rows // grouping), -(-self.mb_cols // grouping))


def stream_h264dec(
    grouping: int = 1,
    num_frames: int = 10,
    seed: Optional[int] = None,
    *,
    scale: float = 1.0,
    geometry: Optional[H264Geometry] = None,
    avg_task_us: Optional[float] = None,
    frame_buffers: int = 4,
    duration_cv: float = 0.30,
    inter_frame_dependency: bool = True,
) -> TraceStream:
    """Stream an h264dec trace (see :func:`generate_h264dec`).

    Live generator state is the O(frame_buffers x task-grid) address
    map — independent of ``num_frames``, so arbitrarily long streams
    decode with the footprint of the decoded-picture buffer, like a real
    decoder.
    """
    if grouping <= 0:
        raise ConfigurationError(f"grouping must be positive, got {grouping}")
    if num_frames <= 0:
        raise ConfigurationError(f"num_frames must be positive, got {num_frames}")
    if frame_buffers <= 0:
        raise ConfigurationError(f"frame_buffers must be positive, got {frame_buffers}")
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    if geometry is None:
        if scale != 1.0:
            factor = scale ** 0.5
            geometry = H264Geometry(
                frame_width=max(H264_MACROBLOCK_PIXELS, int(H264_FRAME_WIDTH * factor)),
                frame_height=max(H264_MACROBLOCK_PIXELS, int(H264_FRAME_HEIGHT * factor)),
            )
        else:
            geometry = H264Geometry()
    if avg_task_us is None:
        if grouping in PAPER_AVG_TASK_US:
            avg_task_us = PAPER_AVG_TASK_US[grouping]
        else:
            # Work scales with the number of macroblocks in a task.
            avg_task_us = PAPER_AVG_TASK_US[1] * grouping * grouping

    rows, cols = geometry.task_grid(grouping)
    name = f"h264dec-{grouping}x{grouping}-{num_frames}f"
    mean_task_us = avg_task_us

    def events() -> Iterator[TraceEvent]:
        rng = make_rng(seed, "h264dec", grouping)
        space = AddressSpace(seed=seed)
        emit = EventEmitter()

        # One address per task-grid block per frame buffer.  Buffers are
        # recycled every `frame_buffers` frames, exactly like a real
        # decoder's decoded-picture buffer.
        buffer_blocks = [space.alloc_grid(rows, cols) for _ in range(frame_buffers)]

        for frame in range(num_frames):
            buffer_index = frame % frame_buffers
            blocks = buffer_blocks[buffer_index]
            prev_blocks = buffer_blocks[(frame - 1) % frame_buffers] if frame > 0 else None
            if frame >= frame_buffers:
                # Wait for the frame that previously used this buffer to be
                # fully decoded (its bottom-right block is the last writer).
                yield emit.taskwait_on(int(blocks[rows - 1, cols - 1]))
            jitter = rng.normal(1.0, duration_cv, size=(rows, cols)).clip(min=0.2)
            for r in range(rows):
                for c in range(cols):
                    inputs = []
                    if c > 0:
                        inputs.append(int(blocks[r, c - 1]))        # left neighbour
                    if r > 0 and c < cols - 1:
                        inputs.append(int(blocks[r - 1, c + 1]))    # upper-right neighbour
                    if inter_frame_dependency and prev_blocks is not None:
                        inputs.append(int(prev_blocks[r, c]))       # motion-compensation ref
                    yield emit.task(
                        "decode_mb",
                        duration_us=float(mean_task_us * jitter[r, c]),
                        inputs=inputs,
                        inouts=[int(blocks[r, c])],
                    )
        yield emit.taskwait()

    return TraceStream(
        name,
        events,
        metadata={
            "suite": "Starbench",
            "grouping": grouping,
            "num_frames": num_frames,
            "task_grid_rows": rows,
            "task_grid_cols": cols,
            "avg_task_us": avg_task_us,
            "frame_buffers": frame_buffers,
            "scale": scale,
        },
    )


def generate_h264dec(
    grouping: int = 1,
    num_frames: int = 10,
    seed: Optional[int] = None,
    *,
    scale: float = 1.0,
    geometry: Optional[H264Geometry] = None,
    avg_task_us: Optional[float] = None,
    frame_buffers: int = 4,
    duration_cv: float = 0.30,
    inter_frame_dependency: bool = True,
) -> Trace:
    """Generate an h264dec trace.

    Parameters
    ----------
    grouping:
        Macroblocks per task edge (1, 2, 4 or 8 in the paper, any positive
        value accepted).
    num_frames:
        Number of Full-HD frames decoded (10 in the paper).
    seed:
        Seed for per-task duration jitter.
    scale:
        Shrinks the frame geometry for fast runs (scales both dimensions
        by ``sqrt(scale)``), keeping the wavefront shape.
    geometry:
        Explicit frame geometry (overrides ``scale``).
    avg_task_us:
        Mean decode time per task; defaults to the Table II value for the
        requested grouping (interpolated for other groupings).
    frame_buffers:
        Number of decoded-frame buffers; the master waits (``taskwait on``)
        for the frame that previously used a buffer before reusing it.
    duration_cv:
        Coefficient of variation of decode durations (content dependent).
    inter_frame_dependency:
        When true, each block additionally reads the co-located block of
        the previous frame (motion compensation reference).
    """
    return materialize(stream_h264dec(
        grouping, num_frames, seed,
        scale=scale, geometry=geometry, avg_task_us=avg_task_us,
        frame_buffers=frame_buffers, duration_cv=duration_cv,
        inter_frame_dependency=inter_frame_dependency))
