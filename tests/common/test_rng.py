"""Tests for repro.common.rng."""

import numpy as np

from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng, resolve_seed, spawn_rngs


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_change_seed(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_changes_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_returns_non_negative_int(self):
        value = derive_seed(7, "stream", 3)
        assert isinstance(value, int) and value >= 0


class TestMakeRng:
    def test_default_seed_reproducible(self):
        a = make_rng(None).integers(0, 1 << 30, size=5)
        b = make_rng(None).integers(0, 1 << 30, size=5)
        np.testing.assert_array_equal(a, b)

    def test_same_seed_same_stream(self):
        a = make_rng(123).random(10)
        b = make_rng(123).random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_different_streams(self):
        a = make_rng(123, "x").random(10)
        b = make_rng(123, "y").random(10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_generator_with_labels_derives_child(self):
        gen = np.random.default_rng(0)
        child = make_rng(gen, "child")
        assert child is not gen

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(5, 3)
        values = [g.random(4).tolist() for g in streams]
        assert values[0] != values[1] != values[2]

    def test_spawn_rngs_count_zero(self):
        assert spawn_rngs(5, 0) == []

    def test_resolve_seed(self):
        assert resolve_seed(None) == DEFAULT_SEED
        assert resolve_seed(9) == 9
