"""The pinned batch corpus: fixed-seed scalar-vs-batch regression cases.

Each entry is a :class:`repro.workloads.fuzz.FuzzSpec` whose **serial
elaboration** (a static trace) replays deterministically without
hypothesis — the CI regression layer of the batch differential suite
(mirroring ``tests/fuzz/fuzz_corpus.py`` for the dynamic runtime).
When the hypothesis-driven tests in ``test_batch_differential.py`` find
a failing configuration, pin it here (with a comment naming the bug) so
it is replayed forever.

The corpus spans the axes the lane kernels branch on:

* conflict-free wide fan-out (deps==0 fast path, inline submission) vs
  address-conflict storms (the per-address cursor state machine);
* in/out-heavy sibling sets (writer-after-readers activation chains);
* barrier-heavy masters (``taskwait`` resolution inside the done
  handler) and ``taskwait on`` masters (structural last-writer waits);
* near-zero durations (equal-timestamp completions, so the replicated
  heap tie-breaking carries the schedule).
"""

from __future__ import annotations

from repro.workloads.fuzz import FuzzSpec

BATCH_CORPUS: tuple[FuzzSpec, ...] = (
    # Flat and wide, conflict-free: maximal inline-submission traffic.
    FuzzSpec(seed=1101, max_depth=0, max_children=0, roots=14,
             conflict_density=0.0, master_barrier_probability=0.3),
    # Conflict-heavy siblings: long per-address waiter queues.
    FuzzSpec(seed=1202, max_depth=2, max_children=5, roots=3,
             conflict_density=0.9, inout_probability=0.6),
    # Barrier-heavy master mixing taskwait-on into the event stream.
    FuzzSpec(seed=1303, max_depth=2, max_children=3, roots=8,
             master_barrier_probability=0.9, conflict_density=0.5),
    # Near-zero durations: completions pile up at equal timestamps.
    FuzzSpec(seed=1404, max_depth=3, max_children=3, roots=4,
             duration_range_us=(0.0, 0.5), conflict_density=0.5),
    # Deep recursion elaborated serially: long dependency chains.
    FuzzSpec(seed=1505, max_depth=6, max_children=1, roots=2,
             recurse_probability=0.95, conflict_density=0.2),
    # Budget-capped runaway tree (max_tasks cut mid-construction).
    FuzzSpec(seed=1606, max_depth=5, max_children=5, roots=5,
             recurse_probability=0.9, max_tasks=120),
)
