"""Table I — FPGA device utilisation and synthesis frequencies.

Regenerates the resource/frequency table for Nexus++ and Nexus# with
1/2/4/6/8 task graphs on the ZC706 and checks the calibration against the
paper's numbers.
"""

import pytest

from repro.analysis.tables import table1_report
from repro.fpga.resources import estimate_nexus_sharp, paper_table1_rows


def test_table1_fpga_resources(benchmark, report_recorder):
    report = benchmark.pedantic(table1_report, rounds=1, iterations=1)
    report_recorder("table1_fpga", report["text"])
    paper = paper_table1_rows()
    for estimate in report["estimates"]:
        reference = paper[estimate.configuration]
        assert abs(round(estimate.lut_pct) - reference["luts_pct"]) <= 1
        assert abs(round(estimate.block_ram_pct) - reference["brams_pct"]) <= 1
        assert estimate.test_frequency_mhz == pytest.approx(reference["test_mhz"], abs=0.01)


def test_table1_resource_model_scaling(benchmark):
    """Ablation: resources must grow monotonically with task graphs and the
    8-TG design must still fit on the ZC706 (91 % of the block RAMs)."""

    def sweep():
        return [estimate_nexus_sharp(n) for n in range(1, 9)]

    estimates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for earlier, later in zip(estimates, estimates[1:]):
        assert later.luts > earlier.luts
        assert later.block_rams > earlier.block_rams
    assert estimates[-1].fits
