"""OmpSs-like task programming front-end.

The paper's programming model (Listing 1) annotates plain function calls
with ``#pragma omp task input(...) inout(...)`` clauses; a
source-to-source compiler then turns every call into a task submission.
This package provides the Python equivalent: a small embedded DSL that
records task submissions, ``taskwait`` and ``taskwait on`` barriers into
a :class:`repro.trace.Trace`, which can then be replayed on any of the
task-manager models.

Example (the macroblock wavefront of Listing 1)::

    from repro.runtime import TaskProgram

    prog = TaskProgram("wavefront")
    X = prog.matrix("X", rows, cols)

    @prog.task(duration_us=5.0)
    def decode(left: "in_", upright: "in_", this: "inout"):
        ...

    for i in range(rows):
        for j in range(cols):
            decode(X[i][j - 1] if j else None,
                   X[i - 1][j + 1] if i and j + 1 < cols else None,
                   X[i][j])
    prog.taskwait()
    trace = prog.build()
"""

from repro.runtime.data import DataHandle, DataMatrix
from repro.runtime.program import TaskProgram, TaskFunction

__all__ = ["TaskProgram", "TaskFunction", "DataHandle", "DataMatrix"]
