#!/usr/bin/env python3
"""Serving benchmark: sustained throughput, warm re-runs, saturation.

Three sections, all against a real :class:`repro.serve.app.Server` on
its own event-loop thread, driven by the seeded load generator
(:mod:`repro.serve.loadgen`) over real sockets:

* **sustained** — a seeded request mix (repeated and distinct cells
  across managers/workloads) replayed sub-capacity: requests/s, p50/p99
  latency, cache hit-rate.  Gate: zero errors, zero 429s — a
  non-saturated server must answer everything.
* **warm re-run** — a *new* server over the same cache directory
  replays the identical request list with ``Machine.run`` instrumented.
  Gate: **zero** simulations (hit-rate 1.0) — the content-addressed
  store plus the spec-hash identity must answer every repeated request.
* **saturation** — distinct-cell bursts against a deliberately tiny
  admission queue.  Gate: 429s do appear past saturation and every one
  carries a measured ``Retry-After`` >= 1 s; accepted requests still
  complete.

Run with::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick] [--check]

Writes ``BENCH_serving.json`` (schema 1, repo root by default).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import ServeClient, ServeConfig, start_in_thread  # noqa: E402
from repro.serve.loadgen import build_requests, default_mix, run_load  # noqa: E402
from repro.system.machine import Machine  # noqa: E402

BENCH_SEED = 2015

#: Floor on sustained throughput (requests/s) for the tiny bench cells.
#: Deliberately conservative: the gate exists to catch a serving-layer
#: collapse (requests serialising behind a lock, lost keep-alive), not
#: to benchmark the host.
SUSTAINED_RPS_FLOOR = 20.0


class _RunCounter:
    """Count ``Machine.run`` invocations (the warm-pass zero-sim gate)."""

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()
        self._real = Machine.run

    def __enter__(self) -> "_RunCounter":
        counter = self

        def counting(machine_self, *args, **kwargs):
            with counter._lock:
                counter.calls += 1
            return counter._real(machine_self, *args, **kwargs)

        Machine.run = counting
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        Machine.run = self._real


def bench_sustained_and_warm(quick: bool, store: str) -> Dict[str, object]:
    count = 120 if quick else 600
    concurrency = 8
    requests = build_requests(BENCH_SEED, count, default_mix(scale=0.05))

    handle = start_in_thread(ServeConfig(cache_dir=store, batch_window=0.001))
    try:
        cold = run_load(handle.host, handle.port, requests,
                        concurrency=concurrency)
        with ServeClient(handle.host, handle.port) as client:
            cold_stats = client.stats()
    finally:
        handle.stop()

    # A fresh server over the same store: every cell must be answered
    # from the content-addressed cache, never the engine.
    handle = start_in_thread(ServeConfig(cache_dir=store, batch_window=0.001))
    try:
        with _RunCounter() as counter:
            warm = run_load(handle.host, handle.port, requests,
                            concurrency=concurrency)
        with ServeClient(handle.host, handle.port) as client:
            warm_stats = client.stats()
    finally:
        handle.stop()

    return {
        "grid": {"requests": count, "concurrency": concurrency,
                 "mix_scale": 0.05, "seed": BENCH_SEED},
        "sustained": {
            **cold.to_json(),
            "cache_hit_rate": round(cold.cached / max(1, cold.ok), 4),
            "cells_executed": cold_stats["executed"],
            "coalesced": cold_stats["coalesced"],
        },
        "warm": {
            **warm.to_json(),
            "cache_hit_rate": round(warm.cached / max(1, warm.ok), 4),
            "cells_executed": warm_stats["executed"],
            "machine_run_calls": counter.calls,
            "meets_zero_sim": warm_stats["executed"] == 0 and counter.calls == 0,
        },
    }


def bench_saturation(quick: bool) -> Dict[str, object]:
    count = 60 if quick else 200
    concurrency = 16
    max_pending = 2
    # Every request a distinct cell (many seeds): no dedupe relief, and
    # a widened batch window throttles the drain — the queue must
    # saturate and the admission controller must start refusing.
    requests = build_requests(BENCH_SEED + 1, count,
                              default_mix(scale=0.05),
                              seeds_per_template=10_000)
    handle = start_in_thread(ServeConfig(max_pending=max_pending,
                                         batch_window=0.05,
                                         executor_threads=1))
    started = time.monotonic()
    try:
        report = run_load(handle.host, handle.port, requests,
                          concurrency=concurrency)
        with ServeClient(handle.host, handle.port) as client:
            stats = client.stats()
    finally:
        handle.stop()
    wall = time.monotonic() - started
    offered = max(1, report.offered)
    return {
        "grid": {"requests": count, "concurrency": concurrency,
                 "max_pending": max_pending, "seed": BENCH_SEED + 1},
        **report.to_json(),
        "wall_s_total": round(wall, 3),
        "rejected_429_rate": round(report.saturated / offered, 4),
        "server_rejected_requests": stats["rejected_requests"],
        "saturation_observed": report.saturated > 0,
    }


def run_benchmark(quick: bool) -> Dict[str, object]:
    store_root = tempfile.mkdtemp(prefix="bench-serving-")
    try:
        sustained = bench_sustained_and_warm(quick, str(Path(store_root) / "store"))
        saturation = bench_saturation(quick)
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
    report: Dict[str, object] = {
        "benchmark": "serving",
        "schema": 1,
        "config": {
            "quick": quick,
            "seed": BENCH_SEED,
            "transport": "HTTP/1.1 keep-alive (repro.serve asyncio server)",
            "sustained_rps_floor": SUSTAINED_RPS_FLOOR,
        },
        "sustained_and_warm": sustained,
        "saturation": saturation,
    }
    report["meets_target"] = not check_report(report)
    return report


def check_report(report: Dict[str, object]) -> List[str]:
    failures: List[str] = []
    sustained = report["sustained_and_warm"]["sustained"]  # type: ignore[index]
    warm = report["sustained_and_warm"]["warm"]  # type: ignore[index]
    saturation = report["saturation"]  # type: ignore[index]
    if sustained["errors"] or sustained["saturated_429"]:
        failures.append(
            f"sustained phase saw {sustained['errors']} errors / "
            f"{sustained['saturated_429']} 429s (expected 0/0 sub-capacity)")
    if sustained["ok"] != report["sustained_and_warm"]["grid"]["requests"]:  # type: ignore[index]
        failures.append("sustained phase dropped requests")
    if sustained["throughput_rps"] < SUSTAINED_RPS_FLOOR:
        failures.append(
            f"sustained throughput {sustained['throughput_rps']} req/s "
            f"under the {SUSTAINED_RPS_FLOOR} floor")
    if not warm["meets_zero_sim"]:
        failures.append(
            f"warm pass executed {warm['cells_executed']} cells / "
            f"{warm['machine_run_calls']} Machine.run calls (expected 0/0)")
    if warm["cache_hit_rate"] != 1.0:
        failures.append(f"warm hit-rate {warm['cache_hit_rate']} != 1.0")
    if not saturation["saturation_observed"]:
        failures.append("saturation phase produced no 429s")
    if not saturation["all_429s_carried_retry_after"]:
        failures.append("a 429 was missing its measured Retry-After")
    if saturation["errors"]:
        failures.append(f"saturation phase saw {saturation['errors']} "
                        "hard errors (only 429s are acceptable)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small request counts (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a serving gate fails")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_serving.json"))
    args = parser.parse_args()

    report = run_benchmark(quick=args.quick)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"wrote {output}")

    sustained = report["sustained_and_warm"]["sustained"]  # type: ignore[index]
    warm = report["sustained_and_warm"]["warm"]  # type: ignore[index]
    saturation = report["saturation"]  # type: ignore[index]
    print(
        f"sustained: {sustained['ok']}/{sustained['offered']} ok, "
        f"{sustained['throughput_rps']} req/s, "
        f"p50 {sustained['p50_latency_ms']} ms, "
        f"p99 {sustained['p99_latency_ms']} ms, "
        f"hit-rate {sustained['cache_hit_rate']}")
    print(
        f"warm: {warm['ok']}/{warm['offered']} ok, hit-rate "
        f"{warm['cache_hit_rate']}, executed {warm['cells_executed']}, "
        f"Machine.run calls {warm['machine_run_calls']}")
    print(
        f"saturation: {saturation['saturated_429']}/{saturation['offered']} "
        f"429s (rate {saturation['rejected_429_rate']}), "
        f"retry-after honoured: {saturation['all_429s_carried_retry_after']}")

    failures = check_report(report)
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
