"""The Nexus# address-distribution function.

Section IV-B of the paper derives a distribution function that routes
each incoming 48-bit parameter address to one of the task graphs.  The
requirements are *speed* (single cycle, no division beyond the final
modulo over a small constant) and *fairness* (round-robin-like spread so
all task graphs stay busy).  The chosen function XOR-folds the lower 20
address bits in 5-bit blocks:

``TaskGraphID = [addr(19..15) ^ addr(14..10) ^ addr(09..05) ^ addr(04..00)]
mod num_task_graphs``

This module implements the hash (scalar and vectorised over numpy
arrays), plus the best-case / worst-case reference distributions of
Figure 3 and a histogram helper used by the fairness analysis and the
distribution-quality ablation benchmark.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.common.constants import DISTRIBUTION_BLOCK_BITS, DISTRIBUTION_BITS, MAX_TASK_GRAPHS
from repro.common.errors import ConfigurationError

_BLOCK_MASK = (1 << DISTRIBUTION_BLOCK_BITS) - 1


def _validate_num_task_graphs(num_task_graphs: int) -> None:
    if not 1 <= num_task_graphs <= MAX_TASK_GRAPHS:
        raise ConfigurationError(
            f"num_task_graphs must be in [1, {MAX_TASK_GRAPHS}], got {num_task_graphs}"
        )


def nexus_hash(address: int, num_task_graphs: int) -> int:
    """Task-graph index for ``address`` (the paper's XOR-fold hash).

    Parameters
    ----------
    address:
        48-bit parameter address (only the lower 20 bits participate).
    num_task_graphs:
        Number of task graphs configured (1..32).
    """
    _validate_num_task_graphs(num_task_graphs)
    folded = (
        (address >> 15)
        ^ (address >> 10)
        ^ (address >> 5)
        ^ address
    ) & _BLOCK_MASK
    return folded % num_task_graphs


def nexus_hash_array(addresses: "np.ndarray | Sequence[int]", num_task_graphs: int) -> np.ndarray:
    """Vectorised :func:`nexus_hash` over an array of addresses."""
    _validate_num_task_graphs(num_task_graphs)
    addrs = np.asarray(addresses, dtype=np.uint64)
    folded = (
        (addrs >> np.uint64(15))
        ^ (addrs >> np.uint64(10))
        ^ (addrs >> np.uint64(5))
        ^ addrs
    ) & np.uint64(_BLOCK_MASK)
    return (folded % np.uint64(num_task_graphs)).astype(np.int64)


def distribution_histogram(addresses: Iterable[int], num_task_graphs: int) -> np.ndarray:
    """Number of addresses routed to each task graph.

    Returns an array of length ``num_task_graphs``; a perfectly fair hash
    yields a flat histogram for a diverse address stream.
    """
    _validate_num_task_graphs(num_task_graphs)
    addr_list = list(addresses)
    if not addr_list:
        return np.zeros(num_task_graphs, dtype=np.int64)
    indices = nexus_hash_array(np.asarray(addr_list, dtype=np.uint64), num_task_graphs)
    return np.bincount(indices, minlength=num_task_graphs).astype(np.int64)


def fairness_index(histogram: "np.ndarray | Sequence[int]") -> float:
    """Jain's fairness index of a distribution histogram.

    1.0 means perfectly even; 1/n means everything landed on one task
    graph.  Used by the distribution-quality ablation benchmark.
    """
    counts = np.asarray(histogram, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return 1.0
    n = len(counts)
    return float(total**2 / (n * np.square(counts).sum()))


def best_case_round_robin(num_items: int, num_task_graphs: int) -> np.ndarray:
    """The best-case assignment of Figure 3(A): strict round robin.

    Task graph ``i`` receives items ``i, i+n, i+2n, ...`` so no task graph
    receives a second item before every other one received its first.
    """
    _validate_num_task_graphs(num_task_graphs)
    if num_items < 0:
        raise ConfigurationError(f"num_items must be >= 0, got {num_items}")
    return np.arange(num_items, dtype=np.int64) % num_task_graphs


def worst_case_blocked(num_items: int, num_task_graphs: int) -> np.ndarray:
    """The worst-case assignment of Figure 3(B): first m/n items to TG0, ...

    Every task graph still ends up with the same number of items, but they
    work strictly one after the other, which is equivalent to a single
    active task graph plus distribution overhead.
    """
    _validate_num_task_graphs(num_task_graphs)
    if num_items < 0:
        raise ConfigurationError(f"num_items must be >= 0, got {num_items}")
    if num_items == 0:
        return np.zeros(0, dtype=np.int64)
    chunk = -(-num_items // num_task_graphs)  # ceil division
    return np.minimum(np.arange(num_items, dtype=np.int64) // chunk, num_task_graphs - 1)
