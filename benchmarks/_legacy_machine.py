"""Frozen pre-refactor simulation stack, kept as the benchmark baseline.

This module is a verbatim snapshot of the hot path as it stood before the
layered-runtime refactor:

* ``legacy_simulate`` — the closure-based ``Machine.run`` monolith with
  its own inline ``heapq`` event loop and five per-task dicts;
* ``LegacyIdealManager`` and the legacy dependency-tracker stack
  (``LegacyDependencyTracker``, ``LegacyAddressTable``,
  ``LegacyAddressState``, dep-counts / task-pool / function tables) —
  frozen copies of the pre-refactor ``repro.taskgraph`` modules, with the
  original property-based access-mode checks and frozen-dataclass result
  records inlined, so later optimisations to the live tracker do not leak
  into the baseline.

``bench_sim_throughput.py`` measures the refactor's speedup against this
stack, in the same tree, with the same workload generators and the same
trace objects.

Do not use this module outside the benchmark, and do not "fix" it — its
value is that it does not change.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Set, Tuple

from repro.common.constants import (
    DEFAULT_KICKOFF_CAPACITY,
    DEFAULT_TABLE_SETS,
    DEFAULT_TABLE_WAYS,
    DEFAULT_TASK_POOL_ENTRIES,
)
from repro.common.errors import SimulationError
from repro.system.results import MachineResult
from repro.trace.dag import validate_schedule
from repro.trace.events import TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent
from repro.trace.task import Direction, TaskDescriptor
from repro.trace.trace import Trace

_PRIORITY_DONE = 0
_PRIORITY_READY = 1
_PRIORITY_MASTER = 2


# ---------------------------------------------------------------------------
# Frozen copies of the pre-refactor taskgraph / manager layers.
# ---------------------------------------------------------------------------

import enum


class _AccessMode(enum.Enum):
    READ = "read"
    WRITE = "write"
    READWRITE = "readwrite"

    @property
    def reads(self) -> bool:
        return self in (_AccessMode.READ, _AccessMode.READWRITE)

    @property
    def writes(self) -> bool:
        return self in (_AccessMode.WRITE, _AccessMode.READWRITE)


@dataclass(frozen=True)
class _Waiter:
    task_id: int
    mode: _AccessMode


@dataclass
class _LegacyAddressState:
    address: int
    active_writer: Optional[int] = None
    active_readers: Set[int] = field(default_factory=set)
    waiters: Deque[_Waiter] = field(default_factory=deque)
    total_waiters_enqueued: int = 0
    max_kickoff_length: int = 0

    @property
    def is_idle(self) -> bool:
        return self.active_writer is None and not self.active_readers and not self.waiters

    @property
    def kickoff_length(self) -> int:
        return len(self.waiters)

    def insert(self, task_id: int, mode: _AccessMode) -> bool:
        if self.waiters:
            self._enqueue(task_id, mode)
            return True
        if mode.writes:
            if self.active_writer is None and not self.active_readers:
                self.active_writer = task_id
                return False
            self._enqueue(task_id, mode)
            return True
        if self.active_writer is None:
            self.active_readers.add(task_id)
            return False
        self._enqueue(task_id, mode)
        return True

    def _enqueue(self, task_id: int, mode: _AccessMode) -> None:
        self.waiters.append(_Waiter(task_id=task_id, mode=mode))
        self.total_waiters_enqueued += 1
        self.max_kickoff_length = max(self.max_kickoff_length, len(self.waiters))

    def finish(self, task_id: int) -> List[_Waiter]:
        released: List[_Waiter] = []
        if self.active_writer == task_id:
            self.active_writer = None
        elif task_id in self.active_readers:
            self.active_readers.discard(task_id)
        else:
            raise SimulationError(
                f"task {task_id} finished but is neither the active writer nor an active "
                f"reader of address {self.address:#x}"
            )
        released.extend(self._activate_waiters())
        return released

    def _activate_waiters(self) -> List[_Waiter]:
        released: List[_Waiter] = []
        while self.waiters:
            head = self.waiters[0]
            if head.mode.writes:
                if self.active_writer is None and not self.active_readers:
                    self.waiters.popleft()
                    self.active_writer = head.task_id
                    released.append(head)
                break
            if self.active_writer is not None:
                break
            self.waiters.popleft()
            self.active_readers.add(head.task_id)
            released.append(head)
        return released


class _LegacyAddressTable:
    def __init__(
        self,
        num_sets: int = DEFAULT_TABLE_SETS,
        ways: int = DEFAULT_TABLE_WAYS,
        kickoff_capacity: int = DEFAULT_KICKOFF_CAPACITY,
        name: str = "task-graph",
    ) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.kickoff_capacity = kickoff_capacity
        self.name = name
        self._entries: Dict[int, _LegacyAddressState] = {}
        self._set_occupancy: Dict[int, int] = {}
        self.lookups = 0
        self.insertions = 0
        self.evictions = 0
        self.set_conflicts = 0
        self.dummy_entries_peak = 0
        self.max_live_entries = 0

    def set_index(self, address: int) -> int:
        return (address >> 6) & (self.num_sets - 1)

    def ways_used(self, address: int) -> int:
        entry = self._entries.get(address)
        if entry is None:
            return 0
        overflow = max(0, entry.kickoff_length - self.kickoff_capacity)
        dummies = -(-overflow // self.kickoff_capacity) if overflow else 0
        return 1 + dummies

    def insert_access(self, address: int, task_id: int, mode: _AccessMode) -> Tuple[bool, bool]:
        self.lookups += 1
        entry = self._entries.get(address)
        set_idx = self.set_index(address)
        set_conflict = False
        if entry is None:
            occupancy = self._set_occupancy.get(set_idx, 0)
            if occupancy >= self.ways:
                set_conflict = True
                self.set_conflicts += 1
            entry = _LegacyAddressState(address=address)
            self._entries[address] = entry
            self._set_occupancy[set_idx] = occupancy + 1
            self.insertions += 1
            self.max_live_entries = max(self.max_live_entries, len(self._entries))
        before_ways = self.ways_used(address)
        must_wait = entry.insert(task_id, mode)
        after_ways = self.ways_used(address)
        if after_ways != before_ways:
            self._set_occupancy[set_idx] = self._set_occupancy.get(set_idx, 0) + (after_ways - before_ways)
            self.dummy_entries_peak = max(self.dummy_entries_peak, after_ways - 1)
        return must_wait, set_conflict

    def finish_access(self, address: int, task_id: int) -> List[_Waiter]:
        entry = self._entries.get(address)
        if entry is None:
            raise SimulationError(f"{self.name}: finish on untracked address {address:#x}")
        set_idx = self.set_index(address)
        before_ways = self.ways_used(address)
        released = entry.finish(task_id)
        after_ways = self.ways_used(address)
        if entry.is_idle:
            del self._entries[address]
            self._set_occupancy[set_idx] = max(0, self._set_occupancy.get(set_idx, 0) - before_ways)
            self.evictions += 1
        elif after_ways != before_ways:
            self._set_occupancy[set_idx] = max(0, self._set_occupancy.get(set_idx, 0) + (after_ways - before_ways))
        return released

    def reset(self) -> None:
        self._entries.clear()
        self._set_occupancy.clear()


@dataclass
class _DepCountEntry:
    task_id: int
    pending: int
    params_seen: int = 0
    params_total: int = 0


class _LegacyDepCounts:
    def __init__(self) -> None:
        self._entries: Dict[int, _DepCountEntry] = {}
        self.peak_entries = 0

    def register(self, task_id: int, pending: int, params_total: int = 0) -> _DepCountEntry:
        if task_id in self._entries:
            raise SimulationError(f"task {task_id} registered twice")
        entry = _DepCountEntry(task_id=task_id, pending=pending, params_total=params_total)
        self._entries[task_id] = entry
        self.peak_entries = max(self.peak_entries, len(self._entries))
        return entry

    def pending(self, task_id: int) -> int:
        entry = self._entries.get(task_id)
        if entry is None:
            raise SimulationError(f"task {task_id} is not in flight")
        return entry.pending

    def decrement(self, task_id: int, amount: int = 1) -> bool:
        entry = self._entries.get(task_id)
        if entry is None:
            raise SimulationError(f"decrement for unknown task {task_id}")
        entry.pending -= amount
        if entry.pending < 0:
            raise SimulationError(f"dependence count of task {task_id} went negative")
        return entry.pending == 0

    def remove(self, task_id: int) -> None:
        del self._entries[task_id]

    def reset(self) -> None:
        self._entries.clear()


class _LegacyTaskPool:
    def __init__(self, capacity: int = DEFAULT_TASK_POOL_ENTRIES) -> None:
        self.capacity = capacity
        self._tasks: Dict[int, TaskDescriptor] = {}
        self.inserts = 0
        self.removals = 0
        self.full_events = 0
        self.peak_occupancy = 0

    def insert(self, task: TaskDescriptor) -> bool:
        if task.task_id in self._tasks:
            raise SimulationError(f"task {task.task_id} inserted twice")
        was_full = len(self._tasks) >= self.capacity
        if was_full:
            self.full_events += 1
        self._tasks[task.task_id] = task
        self.inserts += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._tasks))
        return was_full

    def remove(self, task_id: int) -> TaskDescriptor:
        task = self._tasks.pop(task_id, None)
        if task is None:
            raise SimulationError(f"removing unknown task {task_id}")
        self.removals += 1
        return task

    def reset(self) -> None:
        self._tasks.clear()


class _LegacyFunctionTable:
    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._name_to_id: Dict[str, int] = {}
        self._id_to_name: Dict[int, str] = {}

    def intern(self, function: str) -> int:
        existing = self._name_to_id.get(function)
        if existing is not None:
            return existing
        new_id = len(self._name_to_id)
        self._name_to_id[function] = new_id
        self._id_to_name[new_id] = function
        return new_id

    def reset(self) -> None:
        self._name_to_id.clear()
        self._id_to_name.clear()


@dataclass(frozen=True)
class _AccessRecord:
    address: int
    mode: _AccessMode
    table_index: int
    must_wait: bool
    set_conflict: bool


@dataclass(frozen=True)
class _InsertResult:
    task_id: int
    accesses: Tuple[_AccessRecord, ...]
    dependence_count: int
    ready: bool
    pool_was_full: bool


@dataclass(frozen=True)
class _FinishAccessRecord:
    address: int
    table_index: int
    kicked_off: Tuple[int, ...]


@dataclass(frozen=True)
class _FinishResult:
    task_id: int
    accesses: Tuple[_FinishAccessRecord, ...]
    newly_ready: Tuple[int, ...]


def _legacy_merge_access_modes(task: TaskDescriptor) -> List[Tuple[int, _AccessMode]]:
    """Pre-refactor merge, with the original per-call property costs inlined."""
    order: List[int] = []
    modes: Dict[int, Tuple[bool, bool]] = {}
    for param in task.params:
        direction = param.direction
        reads = direction in (Direction.IN, Direction.INOUT)
        writes = direction in (Direction.OUT, Direction.INOUT)
        if param.address in modes:
            prev_reads, prev_writes = modes[param.address]
            modes[param.address] = (prev_reads or reads, prev_writes or writes)
        else:
            modes[param.address] = (reads, writes)
            order.append(param.address)
    result: List[Tuple[int, _AccessMode]] = []
    for address in order:
        reads, writes = modes[address]
        if reads and writes:
            mode = _AccessMode.READWRITE
        elif writes:
            mode = _AccessMode.WRITE
        else:
            mode = _AccessMode.READ
        result.append((address, mode))
    return result


class _LegacyDependencyTracker:
    def __init__(self, num_tables: int = 1) -> None:
        self.num_tables = num_tables
        self.tables: List[_LegacyAddressTable] = [
            _LegacyAddressTable(name=f"TG{i}") for i in range(num_tables)
        ]
        self.dep_counts = _LegacyDepCounts()
        self.task_pool = _LegacyTaskPool()
        self.function_table = _LegacyFunctionTable()
        self._in_flight: Dict[int, TaskDescriptor] = {}
        self.total_inserted = 0
        self.total_finished = 0

    def table_for(self, address: int) -> int:
        return 0

    def insert_task(self, task: TaskDescriptor) -> _InsertResult:
        if task.task_id in self._in_flight:
            raise SimulationError(f"task {task.task_id} inserted twice")
        self._in_flight[task.task_id] = task
        pool_was_full = self.task_pool.insert(task)
        self.function_table.intern(task.function)
        accesses: List[_AccessRecord] = []
        dependence_count = 0
        for address, mode in _legacy_merge_access_modes(task):
            table_index = self.table_for(address)
            must_wait, set_conflict = self.tables[table_index].insert_access(address, task.task_id, mode)
            if must_wait:
                dependence_count += 1
            accesses.append(
                _AccessRecord(
                    address=address,
                    mode=mode,
                    table_index=table_index,
                    must_wait=must_wait,
                    set_conflict=set_conflict,
                )
            )
        self.dep_counts.register(task.task_id, dependence_count, params_total=len(accesses))
        self.total_inserted += 1
        return _InsertResult(
            task_id=task.task_id,
            accesses=tuple(accesses),
            dependence_count=dependence_count,
            ready=dependence_count == 0,
            pool_was_full=pool_was_full,
        )

    def finish_task(self, task_id: int) -> _FinishResult:
        task = self._in_flight.pop(task_id, None)
        if task is None:
            raise SimulationError(f"finish for unknown or already finished task {task_id}")
        if self.dep_counts.pending(task_id) != 0:
            raise SimulationError(f"task {task_id} finished with unresolved dependencies")
        pooled = self.task_pool.remove(task_id)
        accesses: List[_FinishAccessRecord] = []
        newly_ready: List[int] = []
        for address, _mode in _legacy_merge_access_modes(pooled):
            table_index = self.table_for(address)
            released = self.tables[table_index].finish_access(address, task_id)
            kicked: List[int] = []
            for waiter in released:
                kicked.append(waiter.task_id)
                if self.dep_counts.decrement(waiter.task_id):
                    newly_ready.append(waiter.task_id)
            accesses.append(
                _FinishAccessRecord(address=address, table_index=table_index, kicked_off=tuple(kicked))
            )
        self.dep_counts.remove(task_id)
        self.total_finished += 1
        return _FinishResult(task_id=task_id, accesses=tuple(accesses), newly_ready=tuple(newly_ready))

    def reset(self) -> None:
        for table in self.tables:
            table.reset()
        self.dep_counts.reset()
        self.task_pool.reset()
        self.function_table.reset()
        self._in_flight.clear()
        self.total_inserted = 0
        self.total_finished = 0


@dataclass(frozen=True)
class _ReadyNotification:
    task_id: int
    time_us: float


@dataclass(frozen=True)
class _SubmitOutcome:
    accept_time_us: float
    ready: Tuple[_ReadyNotification, ...] = ()


@dataclass(frozen=True)
class _FinishOutcome:
    ready: Tuple[_ReadyNotification, ...] = ()
    notify_done_us: float = 0.0


class LegacyIdealManager:
    """Frozen copy of the pre-refactor zero-overhead manager."""

    name = "Ideal"
    supports_taskwait_on = True
    worker_overhead_us = 0.0

    def __init__(self) -> None:
        self._tracker = _LegacyDependencyTracker(num_tables=1)

    def reset(self) -> None:
        self._tracker.reset()

    def submit(self, task: TaskDescriptor, time_us: float) -> _SubmitOutcome:
        result = self._tracker.insert_task(task)
        ready = (_ReadyNotification(task.task_id, time_us),) if result.ready else ()
        return _SubmitOutcome(accept_time_us=time_us, ready=ready)

    def finish(self, task_id: int, time_us: float) -> _FinishOutcome:
        result = self._tracker.finish_task(task_id)
        ready = tuple(_ReadyNotification(t, time_us) for t in result.newly_ready)
        return _FinishOutcome(ready=ready, notify_done_us=time_us)

    def statistics(self) -> Mapping[str, object]:
        return {
            "tasks_inserted": self._tracker.total_inserted,
            "tasks_finished": self._tracker.total_finished,
        }


# ---------------------------------------------------------------------------
# The pre-refactor machine loop (verbatim Machine.run snapshot).
# ---------------------------------------------------------------------------


def legacy_simulate(
    trace: Trace,
    manager,
    num_cores: int,
    *,
    validate: bool = False,
    keep_schedule: bool = True,
) -> Tuple[MachineResult, int]:
    """Run the pre-refactor loop; returns (result, events_processed)."""
    manager.reset()

    heap: List[Tuple[float, int, int, object]] = []
    counter = itertools.count()

    def push(time: float, priority: int, payload: object) -> None:
        heapq.heappush(heap, (time, priority, next(counter), payload))

    # --- state -------------------------------------------------------------
    events = trace.events
    num_events = len(events)
    event_index = 0
    master_time = 0.0
    master_blocked: Optional[Tuple[str, Optional[int]]] = None
    master_done = False

    idle_cores = num_cores
    ready_queue: Deque[int] = deque()
    outstanding = 0

    task_map: Dict[int, TaskDescriptor] = {}
    last_writer: Dict[int, int] = {}
    finished: Set[int] = set()

    submit_times: Dict[int, float] = {}
    ready_times: Dict[int, float] = {}
    start_times: Dict[int, float] = {}
    finish_times: Dict[int, float] = {}
    core_busy_us = 0.0
    makespan = 0.0
    processed = 0

    worker_overhead = manager.worker_overhead_us

    # --- helpers -------------------------------------------------------------
    def start_task(task_id: int, now: float) -> None:
        nonlocal idle_cores, core_busy_us
        task = task_map[task_id]
        start = now
        duration = worker_overhead + task.duration_us
        end = start + duration
        idle_cores -= 1
        core_busy_us += duration
        start_times[task_id] = start
        finish_times[task_id] = end
        push(end, _PRIORITY_DONE, ("done", task_id))

    def dispatch_ready(task_id: int, now: float) -> None:
        if task_id in start_times:
            raise SimulationError(f"task {task_id} reported ready twice")
        if idle_cores > 0:
            start_task(task_id, now)
        else:
            ready_queue.append(task_id)

    def barrier_satisfied(now: float) -> bool:
        nonlocal master_blocked, master_time
        if master_blocked is None:
            return False
        kind, waited_task = master_blocked
        if kind == "all":
            if outstanding != 0:
                return False
        else:
            assert waited_task is not None
            if waited_task not in finished:
                return False
        master_blocked = None
        master_time = max(master_time, now)
        return True

    def advance_master(now: float) -> None:
        nonlocal event_index, master_time, master_blocked, master_done, outstanding
        master_time = max(master_time, now)
        while event_index < num_events:
            event = events[event_index]
            if isinstance(event, TaskSubmitEvent):
                task = event.task
                event_index += 1
                task_map[task.task_id] = task
                submit_times[task.task_id] = master_time
                outstanding += 1
                for param in task.params:
                    if param.direction.writes:
                        last_writer[param.address] = task.task_id
                outcome = manager.submit(task, master_time)
                for notification in outcome.ready:
                    ready_times[notification.task_id] = notification.time_us
                    push(max(notification.time_us, master_time), _PRIORITY_READY,
                         ("ready", notification.task_id))
                next_time = max(outcome.accept_time_us,
                                master_time + task.creation_overhead_us)
                if next_time < master_time:
                    raise SimulationError(
                        f"manager {manager.name} accepted task {task.task_id} in the past"
                    )
                master_time = next_time
                if event_index < num_events:
                    push(master_time, _PRIORITY_MASTER, ("master", None))
                else:
                    master_done = True
                return
            if isinstance(event, TaskwaitEvent):
                if outstanding == 0:
                    event_index += 1
                    continue
                master_blocked = ("all", None)
                return
            if isinstance(event, TaskwaitOnEvent):
                degrade = not manager.supports_taskwait_on
                if degrade:
                    if outstanding == 0:
                        event_index += 1
                        continue
                    master_blocked = ("all", None)
                    return
                writer = last_writer.get(event.address)
                if writer is None or writer in finished:
                    event_index += 1
                    continue
                master_blocked = ("task", writer)
                return
            raise SimulationError(f"unknown trace event {event!r}")
        master_done = True

    # --- main loop ------------------------------------------------------------
    advance_master(0.0)
    while heap:
        now, _priority, _seq, payload = heapq.heappop(heap)
        processed += 1
        makespan = max(makespan, now)
        kind = payload[0]
        if kind == "master":
            if master_blocked is None and not master_done:
                advance_master(now)
        elif kind == "ready":
            dispatch_ready(payload[1], now)
        elif kind == "done":
            task_id = payload[1]
            outstanding -= 1
            finished.add(task_id)
            outcome = manager.finish(task_id, now)
            for notification in outcome.ready:
                ready_times[notification.task_id] = notification.time_us
                push(max(notification.time_us, now), _PRIORITY_READY,
                     ("ready", notification.task_id))
            idle_cores += 1
            if ready_queue:
                next_task = ready_queue.popleft()
                start_task(next_task, now)
            if barrier_satisfied(now) and not master_done:
                push(master_time, _PRIORITY_MASTER, ("master", None))
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event payload {payload!r}")

    # --- consistency checks -----------------------------------------------------
    expected_tasks = trace.num_tasks
    if len(finish_times) != expected_tasks:
        missing = expected_tasks - len(finish_times)
        raise SimulationError(
            f"{manager.name} on {trace.name}: {missing} of {expected_tasks} tasks never ran "
            "(deadlock or lost ready notification)"
        )
    if not master_done or master_blocked is not None:
        raise SimulationError(
            f"{manager.name} on {trace.name}: master thread did not reach the end of the trace"
        )
    makespan = max(makespan, master_time)

    if validate:
        validate_schedule(trace, start_times, finish_times)

    keep = keep_schedule
    result = MachineResult(
        trace_name=trace.name,
        manager_name=manager.name,
        num_cores=num_cores,
        makespan_us=makespan,
        total_work_us=trace.total_work_us,
        num_tasks=expected_tasks,
        submit_times=submit_times if keep else {},
        ready_times=ready_times if keep else {},
        start_times=start_times if keep else {},
        finish_times=finish_times if keep else {},
        master_finish_us=master_time,
        core_busy_us=core_busy_us,
        manager_stats=dict(manager.statistics()),
    )
    return result, processed
