"""Task descriptors and parameters.

A task, in the OmpSs sense used by the paper, is a function invocation
whose in/out/inout parameters are memory addresses.  The task manager
never looks at the data behind an address — only at the address itself —
so the descriptor stores 48-bit integer addresses (the width transferred
over the PCIe-style link in the hardware prototype).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.common.constants import ADDRESS_MASK
from repro.common.errors import TraceError


class Direction(enum.Enum):
    """Access direction of a task parameter (the OmpSs pragma clauses).

    ``reads`` / ``writes`` are precomputed member attributes rather than
    properties: dependency resolution consults them once per parameter per
    task, which makes them one of the hottest lookups in the simulator.
    """

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    #: True when the task reads the parameter (``in`` or ``inout``).
    reads: bool
    #: True when the task writes the parameter (``out`` or ``inout``).
    writes: bool

    @classmethod
    def parse(cls, value: "str | Direction") -> "Direction":
        """Accept either a :class:`Direction` or its string form."""
        if isinstance(value, Direction):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError) as exc:
            raise TraceError(f"unknown parameter direction {value!r}") from exc


Direction.IN.reads = True
Direction.IN.writes = False
Direction.OUT.reads = False
Direction.OUT.writes = True
Direction.INOUT.reads = True
Direction.INOUT.writes = True


@dataclass(frozen=True)
class Parameter:
    """One entry of a task's input/output list.

    Attributes
    ----------
    address:
        48-bit memory address of the parameter's data.
    direction:
        Whether the task reads, writes or updates the data.
    size:
        Size of the region in bytes (informational; the hardware tracks
        whole addresses, not byte ranges).
    """

    address: int
    direction: Direction
    size: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.address, int) or self.address < 0:
            raise TraceError(f"parameter address must be a non-negative integer, got {self.address!r}")
        if self.address != self.address & ADDRESS_MASK:
            raise TraceError(f"parameter address {self.address:#x} does not fit in 48 bits")
        if self.size < 0:
            raise TraceError(f"parameter size must be >= 0, got {self.size}")
        # Normalise string directions passed by convenience callers.
        object.__setattr__(self, "direction", Direction.parse(self.direction))

    @property
    def is_input(self) -> bool:
        return self.direction.reads

    @property
    def is_output(self) -> bool:
        return self.direction.writes

    def replace_address(self, address: int) -> "Parameter":
        """Return a copy of the parameter bound to a different address."""
        return Parameter(address=address, direction=self.direction, size=self.size)


@dataclass(frozen=True)
class TaskDescriptor:
    """A single task instance as recorded in a trace.

    Attributes
    ----------
    task_id:
        Unique (per trace) non-negative identifier, assigned in submission
        order by :class:`repro.trace.trace.TraceBuilder`.
    function:
        Name of the task function (e.g. ``"decode_mb"``); the hardware
        stores it as a function pointer in the Function Pointers table.
    params:
        The task's input/output list, in declaration order.
    duration_us:
        Execution time of the task body in micro-seconds, as measured on
        the trace machine (or synthesised by a workload generator).
    creation_overhead_us:
        Time the master thread spends creating/marshalling the task
        before handing it to the task manager (0 for generated traces;
        exposed so real traces could include it).
    """

    task_id: int
    function: str
    params: tuple[Parameter, ...]
    duration_us: float
    creation_overhead_us: float = 0.0

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise TraceError(f"task_id must be >= 0, got {self.task_id}")
        if not self.function:
            raise TraceError("task function name must be non-empty")
        if self.duration_us < 0:
            raise TraceError(f"duration_us must be >= 0, got {self.duration_us}")
        if self.creation_overhead_us < 0:
            raise TraceError(f"creation_overhead_us must be >= 0, got {self.creation_overhead_us}")
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", tuple(self.params))
        for param in self.params:
            if not isinstance(param, Parameter):
                raise TraceError(f"params must contain Parameter objects, got {param!r}")

    # -- convenience views -------------------------------------------------
    @property
    def num_params(self) -> int:
        """Number of entries in the input/output list."""
        return len(self.params)

    @property
    def input_addresses(self) -> tuple[int, ...]:
        """Addresses the task reads (``in`` and ``inout``)."""
        return tuple(p.address for p in self.params if p.direction.reads)

    @property
    def output_addresses(self) -> tuple[int, ...]:
        """Addresses the task writes (``out`` and ``inout``)."""
        return tuple(p.address for p in self.params if p.direction.writes)

    @property
    def addresses(self) -> tuple[int, ...]:
        """All parameter addresses in declaration order (with duplicates)."""
        return tuple(p.address for p in self.params)

    def with_duration(self, duration_us: float) -> "TaskDescriptor":
        """Return a copy with a different execution time."""
        return TaskDescriptor(
            task_id=self.task_id,
            function=self.function,
            params=self.params,
            duration_us=duration_us,
            creation_overhead_us=self.creation_overhead_us,
        )

    def with_id(self, task_id: int) -> "TaskDescriptor":
        """Return a copy with a different task id."""
        return TaskDescriptor(
            task_id=task_id,
            function=self.function,
            params=self.params,
            duration_us=self.duration_us,
            creation_overhead_us=self.creation_overhead_us,
        )


def make_params(
    inputs: Sequence[int] = (),
    outputs: Sequence[int] = (),
    inouts: Sequence[int] = (),
    size: int = 0,
) -> tuple[Parameter, ...]:
    """Convenience constructor for a parameter list.

    ``inputs``/``outputs``/``inouts`` are sequences of addresses; the
    returned tuple lists inputs first, then inouts, then outputs, which
    mirrors the order the OmpSs source-to-source compiler emits.
    """
    params: list[Parameter] = []
    for address in inputs:
        params.append(Parameter(address=address, direction=Direction.IN, size=size))
    for address in inouts:
        params.append(Parameter(address=address, direction=Direction.INOUT, size=size))
    for address in outputs:
        params.append(Parameter(address=address, direction=Direction.OUT, size=size))
    return tuple(params)
