"""Unit tests for the pluggable scheduler policies."""

import pytest

from repro.common.errors import ConfigurationError
from repro.system.scheduling import (
    DurationPriorityPolicy,
    FifoPolicy,
    LocalityPolicy,
    SchedulerPolicy,
    canonical_policy_name,
    describe_policy,
    list_policies,
    make_policy,
)
from repro.trace.task import TaskDescriptor, make_params


def task(task_id: int, duration: float = 10.0, function: str = "f") -> TaskDescriptor:
    return TaskDescriptor(
        task_id=task_id,
        function=function,
        params=make_params(outputs=[0x1000 + 64 * task_id]),
        duration_us=duration,
    )


class TestRegistry:
    def test_list_policies(self):
        assert list_policies() == ["fifo", "ljf", "locality", "sjf"]

    @pytest.mark.parametrize("alias, canonical", [
        ("fifo", "fifo"), ("default", "fifo"),
        ("sjf", "sjf"), ("shortest", "sjf"), ("SHORTEST-FIRST", "sjf"),
        ("ljf", "ljf"), ("longest", "ljf"),
        ("locality", "locality"), ("affinity", "locality"),
    ])
    def test_aliases_canonicalise(self, alias, canonical):
        assert canonical_policy_name(alias) == canonical

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_policy_name("round-robin")

    def test_make_policy_passthrough(self):
        policy = FifoPolicy()
        assert make_policy(policy) is policy

    def test_describe_is_canonical_across_aliases(self):
        assert describe_policy("shortest") == describe_policy("sjf")
        assert describe_policy("sjf") != describe_policy("ljf")

    def test_every_policy_is_a_scheduler_policy(self):
        for name in list_policies():
            assert isinstance(make_policy(name), SchedulerPolicy)


class TestFifoPolicy:
    def test_dispatches_in_ready_order(self):
        policy = FifoPolicy()
        for i in (3, 1, 2):
            policy.enqueue(i, task(i), 0.0)
        assert [policy.select(0, 1.0) for _ in range(3)] == [3, 1, 2]
        assert len(policy) == 0

    def test_select_on_empty_returns_none(self):
        assert FifoPolicy().select(0, 0.0) is None

    def test_reset_clears_queue(self):
        policy = FifoPolicy()
        policy.enqueue(1, task(1), 0.0)
        policy.reset()
        assert len(policy) == 0


class TestDurationPriorityPolicy:
    def test_shortest_first(self):
        policy = DurationPriorityPolicy()
        policy.enqueue(1, task(1, duration=30.0), 0.0)
        policy.enqueue(2, task(2, duration=10.0), 0.0)
        policy.enqueue(3, task(3, duration=20.0), 0.0)
        assert [policy.select(0, 1.0) for _ in range(3)] == [2, 3, 1]

    def test_longest_first(self):
        policy = DurationPriorityPolicy(longest=True)
        policy.enqueue(1, task(1, duration=30.0), 0.0)
        policy.enqueue(2, task(2, duration=10.0), 0.0)
        policy.enqueue(3, task(3, duration=20.0), 0.0)
        assert [policy.select(0, 1.0) for _ in range(3)] == [1, 3, 2]

    def test_equal_durations_fall_back_to_fifo_order(self):
        policy = DurationPriorityPolicy()
        for i in (5, 4, 6):
            policy.enqueue(i, task(i, duration=10.0), 0.0)
        assert [policy.select(0, 1.0) for _ in range(3)] == [5, 4, 6]

    def test_names(self):
        assert DurationPriorityPolicy().name == "sjf"
        assert DurationPriorityPolicy(longest=True).name == "ljf"


class TestLocalityPolicy:
    def test_prefers_last_function_of_core(self):
        policy = LocalityPolicy()
        policy.on_start(0, task(0, function="decode"), core=0, now=0.0)
        policy.enqueue(1, task(1, function="filter"), 1.0)
        policy.enqueue(2, task(2, function="decode"), 1.0)
        # Core 0 last ran "decode": it should skip the older "filter" task.
        assert policy.select(0, 2.0) == 2
        # The remaining task drains in FIFO order.
        assert policy.select(0, 2.0) == 1
        assert len(policy) == 0

    def test_falls_back_to_fifo_without_affinity(self):
        policy = LocalityPolicy()
        policy.enqueue(1, task(1, function="a"), 0.0)
        policy.enqueue(2, task(2, function="b"), 0.0)
        assert policy.select(7, 1.0) == 1
        assert policy.select(7, 1.0) == 2

    def test_tombstones_do_not_resurrect_tasks(self):
        policy = LocalityPolicy()
        policy.on_start(0, task(0, function="a"), core=0, now=0.0)
        policy.enqueue(1, task(1, function="a"), 1.0)
        policy.enqueue(2, task(2, function="b"), 1.0)
        # Taken from the affinity bucket; still sits in the global queue.
        assert policy.select(0, 2.0) == 1
        # The global pop must skip the consumed task 1.
        assert policy.select(5, 2.0) == 2
        assert policy.select(5, 2.0) is None
        assert len(policy) == 0

    def test_wants_start_events(self):
        assert LocalityPolicy.wants_start_events is True
        assert FifoPolicy.wants_start_events is False

    def test_reset_clears_affinity(self):
        policy = LocalityPolicy()
        policy.on_start(0, task(0, function="a"), core=0, now=0.0)
        policy.enqueue(1, task(1, function="b"), 0.0)
        policy.enqueue(2, task(2, function="a"), 0.0)
        policy.reset()
        assert len(policy) == 0
        policy.enqueue(3, task(3, function="b"), 1.0)
        policy.enqueue(4, task(4, function="a"), 1.0)
        # Affinity forgotten: plain FIFO again.
        assert policy.select(0, 2.0) == 3
