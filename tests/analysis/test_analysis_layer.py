"""Tests for the analysis layer: factories, sweeps, tables, figures, CLI."""

import pytest

from repro.analysis.factories import (
    make_manager,
    nexus_pp_factory,
    nexus_sharp_factory,
    paper_manager_set,
)
from repro.analysis.formatting import format_speedup_series, render_table
from repro.analysis.speedup import run_scalability
from repro.analysis.tables import PAPER_TABLE2, PAPER_TABLE4, table1_report, table2_report, table3_report
from repro.analysis.figures import distribution_quality_report, microbenchmark_report
from repro.analysis.cli import main
from repro.common.errors import ConfigurationError
from repro.managers.nanos import NanosManager
from repro.nexus.nexuspp import NexusPlusPlusManager
from repro.nexus.nexussharp import NexusSharpManager
from repro.workloads.synthetic import generate_independent


class TestFactories:
    def test_paper_manager_set_contains_expected_managers(self):
        managers = paper_manager_set()
        assert set(managers) == {"Ideal", "Nanos", "Nexus++", "Nexus# 6TG"}
        assert isinstance(managers["Nanos"](), NanosManager)

    def test_nexus_sharp_factory_frequency_selection(self):
        manager = nexus_sharp_factory(6)()
        assert manager.frequency.mhz == pytest.approx(55.56)
        manager = nexus_sharp_factory(6, 100.0)()
        assert manager.frequency.mhz == pytest.approx(100.0)

    def test_make_manager_names(self):
        assert isinstance(make_manager("ideal"), object)
        assert isinstance(make_manager("nexus++"), NexusPlusPlusManager)
        sharp = make_manager("nexus#4@100")
        assert isinstance(sharp, NexusSharpManager)
        assert sharp.num_task_graphs == 4
        assert sharp.frequency.mhz == pytest.approx(100.0)

    def test_make_manager_unknown(self):
        with pytest.raises(ConfigurationError):
            make_manager("quantum-scheduler")

    def test_factories_produce_fresh_instances(self):
        factory = nexus_pp_factory()
        assert factory() is not factory()


class TestFormatting:
    def test_render_table_alignment_and_title(self):
        text = render_table(["a", "bbb"], [[1, 2.5], ["x", 100.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bbb" in lines[2]
        assert len(lines) == 6

    def test_format_speedup_series(self):
        text = format_speedup_series("fig", (1, 2), {"Ideal": (1.0, 2.0)})
        assert "1 cores" in text and "2.00x" in text


class TestScalabilitySweep:
    def test_speedup_monotone_for_independent_tasks(self):
        trace = generate_independent(64, duration_us=100.0, seed=1)
        study = run_scalability(trace, paper_manager_set(), core_counts=(1, 2, 4, 8))
        ideal = study.curves["Ideal"].speedups
        assert ideal == pytest.approx((1.0, 2.0, 4.0, 8.0))
        assert study.curves["Nexus# 6TG"].max_speedup <= 8.0 + 1e-9

    def test_max_cores_limits_a_manager(self):
        trace = generate_independent(16, duration_us=50.0, seed=1)
        study = run_scalability(
            trace, paper_manager_set(), core_counts=(1, 4, 8), max_cores={"Nanos": 4}
        )
        assert study.curves["Nanos"].core_counts == (1, 4)
        assert study.curves["Ideal"].core_counts == (1, 4, 8)

    def test_speedup_at_and_mapping(self):
        trace = generate_independent(8, duration_us=10.0, seed=1)
        study = run_scalability(trace, {"Ideal": paper_manager_set()["Ideal"]}, core_counts=(1, 2))
        curve = study.curves["Ideal"]
        assert curve.speedup_at(2) == pytest.approx(2.0)
        assert curve.as_mapping()[1] == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            curve.speedup_at(64)

    def test_empty_core_counts_rejected(self):
        trace = generate_independent(4, seed=1)
        with pytest.raises(ConfigurationError):
            run_scalability(trace, paper_manager_set(), core_counts=())

    def test_render_contains_manager_names(self):
        trace = generate_independent(4, duration_us=10.0, seed=1)
        study = run_scalability(trace, paper_manager_set(), core_counts=(1,))
        text = study.render()
        for name in paper_manager_set():
            assert name in text


class TestTables:
    def test_table1_report_structure(self):
        report = table1_report()
        assert "Nexus++" in report["text"]
        assert len(report["estimates"]) == 6

    def test_table2_report_small_scale(self):
        report = table2_report(scale=0.01, seed=0)
        assert set(report["stats"]) == set(PAPER_TABLE2)
        assert "c-ray" in report["text"]

    def test_table3_report_matches_paper_counts(self):
        report = table3_report()
        assert report["data"][250]["tasks"] == 31374
        assert report["data"][3000]["tasks"] == 4501499

    def test_paper_table4_constants_present(self):
        assert PAPER_TABLE4["h264dec-1x1-10f"]["Nexus#"] == 6.9


class TestFigures:
    def test_microbenchmark_report(self):
        report = microbenchmark_report()
        assert 40 <= report["measured_cycles"] <= 110
        assert "78" in report["text"]

    def test_distribution_quality_report(self):
        report = distribution_quality_report(num_addresses=2000, task_graph_counts=(2, 4))
        assert set(report["data"]) == {2, 4}
        for entry in report["data"].values():
            assert entry["fairness"] > 0.9


class TestCli:
    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "Nexus#" in capsys.readouterr().out

    def test_table3_command(self, capsys):
        assert main(["table3"]) == 0
        assert "31374" in capsys.readouterr().out

    def test_microbench_command(self, capsys):
        assert main(["microbench"]) == 0
        assert "Micro-benchmark" in capsys.readouterr().out

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        assert "c-ray" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        code = main([
            "simulate", "--workload", "c-ray", "--manager", "nexus#2@100",
            "--cores", "4", "--scale", "0.02",
        ])
        assert code == 0
        assert "speedup" in capsys.readouterr().out
