"""Unit tests for the struct-of-arrays task timeline."""

from repro.system.timeline import TaskTimeline


class TestDenseTimeline:
    def test_written_slots_export_as_dicts(self):
        timeline = TaskTimeline(3)
        timeline.submit[0] = 1.0
        timeline.submit[2] = 3.0
        timeline.start[2] = 4.0
        timeline.core[2] = 5
        assert timeline.submit_dict() == {0: 1.0, 2: 3.0}
        assert timeline.start_dict() == {2: 4.0}
        assert timeline.core_dict() == {2: 5}

    def test_unwritten_arrays_export_empty(self):
        timeline = TaskTimeline(4)
        assert timeline.ready_dict() == {}
        assert timeline.finish_dict() == {}
        assert timeline.core_dict() == {}


class TestSparseTimeline:
    def test_slots_map_back_to_original_task_ids(self):
        timeline = TaskTimeline(2, task_ids=[10, 99])
        timeline.finish[0] = 7.0
        timeline.finish[1] = 8.0
        timeline.core[1] = 3
        assert timeline.finish_dict() == {10: 7.0, 99: 8.0}
        assert timeline.core_dict() == {99: 3}
