"""Tests for the statistics helpers."""

import pytest

from repro.sim.stats import Counter, SummaryStats, TimeWeightedStat, UtilizationTracker


class TestCounter:
    def test_increment(self):
        c = Counter("tasks")
        assert c.increment() == 1
        assert c.increment(4) == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("tasks").increment(-1)

    def test_reset(self):
        c = Counter("tasks", 7)
        c.reset()
        assert c.value == 0


class TestTimeWeightedStat:
    def test_mean_of_constant_signal(self):
        s = TimeWeightedStat()
        s.record(0.0, 4.0)
        s.record(10.0, 4.0)
        assert s.mean() == pytest.approx(4.0)

    def test_mean_of_step_signal(self):
        s = TimeWeightedStat()
        s.record(0.0, 0.0)
        s.record(5.0, 10.0)
        s.record(10.0, 10.0)
        # 0 for 5 time units then 10 for 5 time units.
        assert s.mean() == pytest.approx(5.0)

    def test_mean_with_extension_horizon(self):
        s = TimeWeightedStat()
        s.record(0.0, 2.0)
        s.record(5.0, 2.0)
        assert s.mean(until=10.0) == pytest.approx(2.0)

    def test_min_max(self):
        s = TimeWeightedStat()
        s.record(0.0, 1.0)
        s.record(1.0, 9.0)
        assert s.maximum == 9.0
        assert s.minimum == 1.0

    def test_empty(self):
        s = TimeWeightedStat()
        assert s.mean() == 0.0
        assert s.maximum == 0.0

    def test_out_of_order_rejected(self):
        s = TimeWeightedStat()
        s.record(5.0, 1.0)
        with pytest.raises(ValueError):
            s.record(4.0, 1.0)


class TestUtilizationTracker:
    def test_single_server(self):
        u = UtilizationTracker(1)
        u.record_busy(0.0, 5.0)
        assert u.utilization(10.0) == pytest.approx(0.5)

    def test_multi_server(self):
        u = UtilizationTracker(4)
        u.record_busy(0.0, 10.0)
        u.record_busy(0.0, 10.0)
        assert u.utilization(10.0) == pytest.approx(0.5)

    def test_default_horizon(self):
        u = UtilizationTracker(1)
        u.record_busy(0.0, 4.0)
        assert u.utilization() == pytest.approx(1.0)

    def test_invalid_servers(self):
        with pytest.raises(ValueError):
            UtilizationTracker(0)

    def test_invalid_interval(self):
        u = UtilizationTracker(1)
        with pytest.raises(ValueError):
            u.record_busy(5.0, 1.0)


class TestSummaryStats:
    def test_mean_std(self):
        s = SummaryStats()
        s.extend([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.std == pytest.approx(1.118, abs=1e-3)

    def test_empty(self):
        s = SummaryStats()
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value(self):
        s = SummaryStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
