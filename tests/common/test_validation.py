"""Tests for repro.common.validation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.validation import (
    check_choice,
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.5)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -0.001)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ConfigurationError):
            check_probability("p", value)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 256, 1024])
    def test_accepts_powers(self, value):
        assert check_power_of_two("n", value) == value

    @pytest.mark.parametrize("value", [0, 3, 6, -4, 255])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ConfigurationError):
            check_power_of_two("n", value)


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range("x", 1, 1, 5) == 1
        assert check_in_range("x", 5, 1, 5) == 5

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 6, 1, 5)


class TestCheckChoice:
    def test_accepts_member(self):
        assert check_choice("mode", "fast", ("fast", "slow")) == "fast"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError):
            check_choice("mode", "other", ("fast", "slow"))


class TestErrorMessages:
    def test_message_contains_name_and_value(self):
        with pytest.raises(ConfigurationError, match="num_cores.*-3"):
            check_positive("num_cores", -3)
