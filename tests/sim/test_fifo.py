"""Tests for the latency FIFO."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.fifo import LatencyFifo


class TestLatencyFifo:
    def test_fall_through_latency(self):
        fifo = LatencyFifo("buf", capacity=4, latency=3.0)
        fifo.push(10.0, "item")
        available, item = fifo.pop(0.0)
        assert item == "item"
        assert available == pytest.approx(13.0)

    def test_pop_later_than_visibility(self):
        fifo = LatencyFifo("buf", capacity=4, latency=3.0)
        fifo.push(0.0, "item")
        available, _ = fifo.pop(50.0)
        assert available == pytest.approx(50.0)

    def test_fifo_order(self):
        fifo = LatencyFifo("buf", capacity=4, latency=0.0)
        fifo.push(0.0, "a")
        fifo.push(1.0, "b")
        assert fifo.pop(0.0)[1] == "a"
        assert fifo.pop(0.0)[1] == "b"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            LatencyFifo("buf", capacity=1, latency=0.0).pop(0.0)

    def test_full_fifo_delays_producer(self):
        fifo = LatencyFifo("buf", capacity=2, latency=0.0)
        fifo.push(0.0, "a")
        fifo.push(0.0, "b")
        # Consumer drains the head at t=7, freeing one slot.
        fifo.pop(7.0)
        assert fifo.push(1.0, "c") == pytest.approx(1.0)  # slot available
        # The FIFO holds "b" and "c" again: the next push must wait for the
        # last recorded drain.
        write_time = fifo.push(1.0, "d")
        assert write_time == pytest.approx(7.0)
        assert fifo.stats.producer_stalls == 1

    def test_full_fifo_never_drained_raises(self):
        fifo = LatencyFifo("buf", capacity=1, latency=0.0)
        fifo.push(0.0, "a")
        with pytest.raises(SimulationError):
            fifo.push(1.0, "b")

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyFifo("buf", capacity=0, latency=0.0)

    def test_latency_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyFifo("buf", capacity=1, latency=-1.0)

    def test_negative_push_time_rejected(self):
        with pytest.raises(SimulationError):
            LatencyFifo("buf", capacity=1, latency=0.0).push(-1.0, "x")

    def test_peek_visible_time(self):
        fifo = LatencyFifo("buf", capacity=2, latency=2.0)
        assert fifo.peek_visible_time() is None
        fifo.push(1.0, "x")
        assert fifo.peek_visible_time() == pytest.approx(3.0)

    def test_stats_and_reset(self):
        fifo = LatencyFifo("buf", capacity=2, latency=0.0)
        fifo.push(0.0, "a")
        fifo.pop(0.0)
        assert fifo.stats.pushes == 1
        assert fifo.stats.pops == 1
        assert fifo.stats.max_occupancy == 1
        fifo.reset()
        assert len(fifo) == 0
        assert fifo.stats.pushes == 0

    def test_is_full(self):
        fifo = LatencyFifo("buf", capacity=1, latency=0.0)
        assert not fifo.is_full
        fifo.push(0.0, "a")
        assert fifo.is_full
