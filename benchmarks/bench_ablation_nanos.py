"""Ablation — sensitivity of the Nanos software-runtime model.

The Nanos baseline is an analytical model whose constants are calibrated
against the paper's Table IV column (see ``repro.managers.nanos``).  This
ablation checks that the *qualitative* conclusions do not hinge on the
exact calibration: even a Nanos that is several times cheaper than the
calibrated one still loses badly to the hardware managers on the
fine-grained h264dec workload, because the master-thread task-creation
path is inherently serial — the structural argument the paper makes.
"""

import pytest

from repro.analysis.factories import nanos_factory, nexus_sharp_factory, vandierendonck_factory
from repro.analysis.formatting import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepSpec
from repro.managers.nanos import NanosConfig
from repro.workloads.h264dec import generate_h264dec


def _scaled_config(factor: float) -> NanosConfig:
    base = NanosConfig()
    return NanosConfig(
        task_creation_us=base.task_creation_us * factor,
        creation_per_param_us=base.creation_per_param_us * factor,
        insert_lock_us=base.insert_lock_us * factor,
        insert_lock_per_param_us=base.insert_lock_per_param_us * factor,
        finish_lock_us=base.finish_lock_us * factor,
        wakeup_per_task_us=base.wakeup_per_task_us * factor,
        worker_dispatch_us=base.worker_dispatch_us * factor,
    )


def test_nanos_overhead_sensitivity(benchmark, report_recorder, scale, seed):
    trace = generate_h264dec(grouping=1, num_frames=10, scale=scale, seed=seed)
    num_cores = 32

    managers = {
        f"Nanos x{factor}": nanos_factory(_scaled_config(factor))
        for factor in (2.0, 1.0, 0.5, 0.25)
    }
    managers["SW-400cycles [17]"] = vandierendonck_factory()
    managers["Nexus# 6TG"] = nexus_sharp_factory(6)
    spec = SweepSpec(
        workloads=(trace,), managers=managers, core_counts=(num_cores,),
        name="ablation-nanos",
    )

    def sweep():
        study = SweepRunner().run(spec).study(trace.name)
        return {name: curve.speedup_at(num_cores) for name, curve in study.curves.items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ["runtime configuration", f"speedup on {num_cores} cores ({trace.name}, scaled)"],
        [[name, f"{value:.2f}x"] for name, value in results.items()],
        title="Ablation: Nanos overhead sensitivity on fine-grained h264dec",
    )
    report_recorder("ablation_nanos", text)

    # Cheaper software overheads help, but even a 4x cheaper Nanos stays
    # well below the hardware manager on fine-grained tasks.
    assert results["Nanos x0.25"] >= results["Nanos x1.0"]
    assert results["Nanos x0.25"] < 0.8 * results["Nexus# 6TG"]
    # The optimistic 400-cycle software manager of [17] narrows the gap but
    # the hardware manager still wins (the paper's closing argument).
    assert results["SW-400cycles [17]"] <= results["Nexus# 6TG"] * 1.05
