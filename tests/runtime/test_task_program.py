"""Tests for the OmpSs-like Python task API."""

import pytest

from repro.common.errors import ConfigurationError, TraceError
from repro.managers.ideal import IdealManager
from repro.runtime.data import DataHandle, DataMatrix
from repro.runtime.program import TaskProgram
from repro.system.machine import simulate
from repro.trace.dag import build_dependency_graph
from repro.trace.task import Direction


class TestDataDeclaration:
    def test_data_handles_have_unique_addresses(self):
        prog = TaskProgram("p")
        a = prog.data("a")
        b = prog.data("b")
        assert a.address != b.address

    def test_array(self):
        prog = TaskProgram("p")
        arr = prog.array("x", 5)
        assert len(arr) == 5
        assert len({h.address for h in arr}) == 5

    def test_matrix(self):
        prog = TaskProgram("p")
        m = prog.matrix("X", 3, 4)
        assert m.shape == (3, 4)
        assert m.at(2, 3) is not None
        assert m.at(3, 0) is None
        assert m.at(0, -1) is None

    def test_invalid_sizes(self):
        prog = TaskProgram("p")
        with pytest.raises(ConfigurationError):
            prog.array("x", 0)
        with pytest.raises(ConfigurationError):
            prog.matrix("X", 0, 3)

    def test_matrix_requires_consistent_rows(self):
        handle = DataHandle("h", 64)
        with pytest.raises(ConfigurationError):
            DataMatrix("bad", [[handle], [handle, handle]])


class TestTaskDecorator:
    def test_calls_record_tasks(self):
        prog = TaskProgram("p")
        x = prog.data("x")
        y = prog.data("y")

        @prog.task(inputs=("src",), outputs=("dst",), duration_us=3.0)
        def copy(src, dst):
            pass

        copy(x, y)
        copy(y, x)
        trace = prog.build()
        assert trace.num_tasks == 2
        assert copy.calls == 2
        task = next(trace.tasks())
        assert {p.direction for p in task.params} == {Direction.IN, Direction.OUT}

    def test_none_arguments_skip_dependencies(self):
        prog = TaskProgram("p")
        x = prog.data("x")

        @prog.task(inputs=("left",), inouts=("this_",), duration_us=1.0)
        def decode(left, this_):
            pass

        decode(None, x)
        task = next(prog.build().tasks())
        assert task.num_params == 1

    def test_duration_callable(self):
        prog = TaskProgram("p")
        x = prog.data("x")

        @prog.task(inouts=("block",), duration_us=lambda block, weight: weight * 2.0)
        def work(block, weight):
            pass

        work(x, weight=5)
        assert next(prog.build().tasks()).duration_us == pytest.approx(10.0)

    def test_execute_runs_body(self):
        prog = TaskProgram("p")
        x = prog.data("x")
        seen = []

        @prog.task(inouts=("block",), duration_us=1.0, execute=True)
        def work(block):
            seen.append(block.name)
            return 42

        assert work(x) == 42
        assert seen == ["x"]

    def test_unknown_clause_parameter_rejected(self):
        prog = TaskProgram("p")
        with pytest.raises(ConfigurationError):
            @prog.task(inputs=("nope",))
            def f(a):
                pass

    def test_parameter_in_two_clauses_rejected(self):
        prog = TaskProgram("p")
        with pytest.raises(ConfigurationError):
            @prog.task(inputs=("a",), outputs=("a",))
            def f(a):
                pass

    def test_non_handle_argument_rejected(self):
        prog = TaskProgram("p")

        @prog.task(inputs=("a",))
        def f(a):
            pass

        with pytest.raises(TraceError):
            f("not a handle")

    def test_negative_duration_rejected(self):
        prog = TaskProgram("p")
        x = prog.data("x")

        @prog.task(inouts=("a",), duration_us=lambda a: -1.0)
        def f(a):
            pass

        with pytest.raises(TraceError):
            f(x)


class TestBarriersAndEndToEnd:
    def test_taskwait_and_taskwait_on_recorded(self):
        prog = TaskProgram("p")
        x = prog.data("x")

        @prog.task(outputs=("a",), duration_us=1.0)
        def produce(a):
            pass

        produce(x)
        prog.taskwait_on(x)
        prog.taskwait()
        kinds = [e.kind for e in prog.build().events]
        assert kinds == ["submit", "taskwait_on", "taskwait"]

    def test_taskwait_on_requires_handle(self):
        prog = TaskProgram("p")
        with pytest.raises(TraceError):
            prog.taskwait_on(0x1234)

    def test_wavefront_program_matches_listing1_dependencies(self):
        """Reproduce Listing 1 (macroblock wavefront) and check the DAG."""
        prog = TaskProgram("wavefront")
        rows, cols = 4, 5
        X = prog.matrix("X", rows, cols)

        @prog.task(inputs=("left", "upright"), inouts=("this_",), duration_us=2.0)
        def decode(left, upright, this_):
            pass

        for i in range(rows):
            for j in range(cols):
                decode(X.at(i, j - 1), X.at(i - 1, j + 1), X.at(i, j))
        prog.taskwait()
        trace = prog.build()
        assert trace.num_tasks == rows * cols
        graph = build_dependency_graph(trace)
        # Task (i, j) has id i*cols + j; interior tasks have 2 predecessors.
        assert graph.predecessors[0] == set()
        assert graph.predecessors[1 * cols + 2] == {1 * cols + 1, 0 * cols + 3}
        # The whole program runs correctly on a manager.
        result = simulate(trace, IdealManager(), 4, validate=True)
        assert result.num_tasks == trace.num_tasks

    def test_num_tasks_property(self):
        prog = TaskProgram("p")
        x = prog.data("x")

        @prog.task(inouts=("a",), duration_us=1.0)
        def f(a):
            pass

        assert prog.num_tasks == 0
        f(x)
        assert prog.num_tasks == 1
        assert "f" in prog.functions()
