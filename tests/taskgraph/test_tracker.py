"""Tests for the DependencyTracker (functional dependency engine)."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.taskgraph.address_state import AccessMode
from repro.taskgraph.tracker import DependencyTracker, merge_access_modes
from repro.trace.dag import build_dependency_graph
from repro.trace.task import Direction, Parameter, TaskDescriptor, make_params
from repro.workloads.synthetic import generate_random_dag


def make_task(task_id, inputs=(), outputs=(), inouts=()):
    return TaskDescriptor(
        task_id=task_id,
        function="f",
        params=make_params(inputs=inputs, outputs=outputs, inouts=inouts),
        duration_us=1.0,
    )


class TestMergeAccessModes:
    def test_distinct_addresses_preserved_in_order(self):
        task = make_task(0, inputs=[0x1, 0x2], outputs=[0x3])
        merged = merge_access_modes(task)
        assert [a for a, _ in merged] == [0x1, 0x2, 0x3]

    def test_duplicate_address_merges_to_readwrite(self):
        task = TaskDescriptor(
            task_id=0,
            function="f",
            params=(
                Parameter(address=0x1, direction=Direction.IN),
                Parameter(address=0x1, direction=Direction.OUT),
            ),
            duration_us=1.0,
        )
        merged = merge_access_modes(task)
        assert merged == [(0x1, AccessMode.READWRITE)]

    def test_duplicate_reads_stay_read(self):
        task = TaskDescriptor(
            task_id=0,
            function="f",
            params=(
                Parameter(address=0x1, direction=Direction.IN),
                Parameter(address=0x1, direction=Direction.IN),
            ),
            duration_us=1.0,
        )
        assert merge_access_modes(task) == [(0x1, AccessMode.READ)]


class TestInsertFinish:
    def test_independent_task_ready(self):
        tracker = DependencyTracker()
        result = tracker.insert_task(make_task(0, outputs=[0x1]))
        assert result.ready is True
        assert result.dependence_count == 0

    def test_dependent_task_not_ready_until_producer_finishes(self):
        tracker = DependencyTracker()
        tracker.insert_task(make_task(0, outputs=[0x1]))
        result = tracker.insert_task(make_task(1, inputs=[0x1]))
        assert result.ready is False
        finish = tracker.finish_task(0)
        assert finish.newly_ready == (1,)

    def test_multi_dependency_requires_all_producers(self):
        tracker = DependencyTracker()
        tracker.insert_task(make_task(0, outputs=[0x1]))
        tracker.insert_task(make_task(1, outputs=[0x2]))
        result = tracker.insert_task(make_task(2, inputs=[0x1, 0x2]))
        assert result.dependence_count == 2
        assert tracker.finish_task(0).newly_ready == ()
        assert tracker.finish_task(1).newly_ready == (2,)

    def test_finish_before_ready_raises(self):
        tracker = DependencyTracker()
        tracker.insert_task(make_task(0, outputs=[0x1]))
        tracker.insert_task(make_task(1, inputs=[0x1]))
        with pytest.raises(SimulationError):
            tracker.finish_task(1)

    def test_double_insert_raises(self):
        tracker = DependencyTracker()
        tracker.insert_task(make_task(0, outputs=[0x1]))
        with pytest.raises(SimulationError):
            tracker.insert_task(make_task(0, outputs=[0x2]))

    def test_finish_unknown_raises(self):
        with pytest.raises(SimulationError):
            DependencyTracker().finish_task(3)

    def test_in_flight_count(self):
        tracker = DependencyTracker()
        tracker.insert_task(make_task(0, outputs=[0x1]))
        tracker.insert_task(make_task(1, outputs=[0x2]))
        assert tracker.in_flight_tasks == 2
        tracker.finish_task(0)
        assert tracker.in_flight_tasks == 1

    def test_reset(self):
        tracker = DependencyTracker()
        tracker.insert_task(make_task(0, outputs=[0x1]))
        tracker.reset()
        assert tracker.in_flight_tasks == 0
        assert tracker.total_inserted == 0


class TestDistribution:
    def test_accesses_routed_by_distribution_function(self):
        tracker = DependencyTracker(num_tables=4, distribute=lambda a: a % 4)
        result = tracker.insert_task(make_task(0, outputs=[0, 1, 2, 3]))
        assert sorted(a.table_index for a in result.accesses) == [0, 1, 2, 3]

    def test_out_of_range_distribution_rejected(self):
        tracker = DependencyTracker(num_tables=2, distribute=lambda a: 5)
        with pytest.raises(SimulationError):
            tracker.insert_task(make_task(0, outputs=[0x1]))

    def test_invalid_table_count(self):
        with pytest.raises(ConfigurationError):
            DependencyTracker(num_tables=0)

    def test_accesses_per_table(self):
        tracker = DependencyTracker(num_tables=2, distribute=lambda a: a % 2)
        result = tracker.insert_task(make_task(0, outputs=[0, 2, 1]))
        assert result.accesses_per_table() == {0: 2, 1: 1}


class TestAgainstReferenceDag:
    @pytest.mark.parametrize("num_tables", [1, 3, 6])
    def test_release_order_matches_dag(self, num_tables):
        """Replaying a random DAG in topological order through the tracker
        must release exactly the successors the reference DAG predicts."""
        trace = generate_random_dag(80, max_predecessors=3, seed=5)
        graph = build_dependency_graph(trace)
        tracker = DependencyTracker(num_tables=num_tables, distribute=lambda a: a % num_tables)
        ready = set()
        for task in trace.tasks():
            result = tracker.insert_task(task)
            # Nothing has finished yet, so a task is ready exactly when the
            # reference DAG gives it no predecessors.
            assert result.ready == (len(graph.predecessors[task.task_id]) == 0)
            if result.ready:
                ready.add(task.task_id)
        # Finish tasks in submission order (a valid topological order);
        # every task must eventually be released exactly once.
        finished = set()
        for task_id in graph.submission_order:
            assert task_id in ready, f"task {task_id} was never released"
            result = tracker.finish_task(task_id)
            finished.add(task_id)
            for released in result.newly_ready:
                assert released not in ready
                ready.add(released)
                # All DAG predecessors must have finished by now.
                assert graph.predecessors[released] <= finished
        assert ready == set(graph.submission_order)
