"""The functional dependency engine shared by all hardware manager models.

Nexus++ and Nexus# differ in *where* the per-address state lives (one
central task graph vs. several distributed ones) and in the cycle cost of
getting information in and out, but the dependency bookkeeping itself is
identical.  :class:`DependencyTracker` implements that bookkeeping over a
configurable number of :class:`~repro.taskgraph.table.AddressTable`
instances:

* :meth:`insert_task` registers a new task's accesses and reports, per
  parameter, which task graph it went to and whether it had to wait;
* :meth:`finish_task` replays a finished task's accesses, kicks off
  waiting tasks and reports which tasks became ready.

The timing layers in :mod:`repro.nexus` translate these reports into
pipeline occupancy; the functional result (who waits for whom) is
identical for every hardware configuration, which the property-based
tests assert against the reference DAG.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.taskgraph.address_state import AccessMode
from repro.taskgraph.dep_counts import DependenceCountsTable
from repro.taskgraph.function_table import FunctionTable
from repro.taskgraph.table import AddressTable
from repro.taskgraph.task_pool import TaskPool
from repro.trace.task import Direction, TaskDescriptor

# The result records below are NamedTuples, not dataclasses: two of them
# are created per task on the simulation hot path, and tuple construction
# is several times cheaper than a frozen-dataclass __init__.


class AccessRecord(NamedTuple):
    """One deduplicated address access of a task."""

    address: int
    mode: AccessMode
    table_index: int
    must_wait: bool
    set_conflict: bool


class InsertResult(NamedTuple):
    """Outcome of inserting one task into the task graph(s)."""

    task_id: int
    accesses: Tuple[AccessRecord, ...]
    dependence_count: int
    ready: bool
    pool_was_full: bool

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    def accesses_per_table(self) -> Dict[int, int]:
        """Number of accesses routed to each task graph."""
        counts: Dict[int, int] = {}
        for access in self.accesses:
            counts[access.table_index] = counts.get(access.table_index, 0) + 1
        return counts


class FinishAccessRecord(NamedTuple):
    """Cleanup of one address access when its task finishes."""

    address: int
    table_index: int
    kicked_off: Tuple[int, ...]


class FinishResult(NamedTuple):
    """Outcome of retiring one finished task."""

    task_id: int
    accesses: Tuple[FinishAccessRecord, ...]
    newly_ready: Tuple[int, ...]

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    @property
    def num_kickoffs(self) -> int:
        return sum(len(a.kicked_off) for a in self.accesses)

    def accesses_per_table(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for access in self.accesses:
            counts[access.table_index] = counts.get(access.table_index, 0) + 1
        return counts


#: Direction -> AccessMode for the common single-occurrence case.
_MODE_OF_DIRECTION = {
    Direction.IN: AccessMode.READ,
    Direction.OUT: AccessMode.WRITE,
    Direction.INOUT: AccessMode.READWRITE,
}


def merge_access_modes(task: TaskDescriptor) -> List[Tuple[int, AccessMode]]:
    """Deduplicate a task's parameter list into one access per address.

    A task may legally list the same address several times (e.g. an array
    block passed both as ``in`` and as part of an ``inout`` region); the
    hardware tracks the address once, with the union of the access modes.
    Declaration order of the first occurrence is preserved because the
    Input Parser distributes parameters in arrival order.

    Runs once per task submission on the hot path (the tracker caches the
    result for the task's retirement), so the common all-distinct case is
    a single dict-fill pass with a precomputed Direction->AccessMode map.
    """
    params = task.params
    merged: Dict[int, AccessMode] = {}
    mode_of = _MODE_OF_DIRECTION
    for param in params:
        address = param.address
        mode = mode_of[param.direction]
        previous = merged.get(address)
        if previous is None:
            merged[address] = mode
        elif previous is not mode:
            # Any two distinct modes union to READWRITE (READ|WRITE,
            # READ|READWRITE, WRITE|READWRITE all read and write).
            merged[address] = AccessMode.READWRITE
    # Python dicts preserve insertion order == first-occurrence order.
    return list(merged.items())


class DependencyTracker:
    """Functional dependency resolution over one or more address tables.

    Parameters
    ----------
    num_tables:
        Number of task graphs the addresses are distributed over.
    distribute:
        Function mapping an address to a table index in
        ``range(num_tables)``.  Defaults to "always table 0", which is the
        Nexus++ (centralised) behaviour.
    table_factory:
        Callable creating the :class:`AddressTable` for a given index,
        allowing callers to configure geometry.
    task_pool / function_table:
        Optional pre-configured structures (defaults are created
        otherwise).
    """

    def __init__(
        self,
        num_tables: int = 1,
        distribute: Optional[Callable[[int], int]] = None,
        table_factory: Optional[Callable[[int], AddressTable]] = None,
        task_pool: Optional[TaskPool] = None,
        function_table: Optional[FunctionTable] = None,
    ) -> None:
        if num_tables <= 0:
            raise ConfigurationError(f"num_tables must be positive, got {num_tables}")
        self.num_tables = num_tables
        self._distribute = distribute or (lambda address: 0)
        factory = table_factory or (lambda index: AddressTable(name=f"TG{index}"))
        self.tables: List[AddressTable] = [factory(i) for i in range(num_tables)]
        self.dep_counts = DependenceCountsTable()
        self.task_pool = task_pool or TaskPool()
        self.function_table = function_table or FunctionTable()
        #: tasks that were reported ready and are waiting to run or running
        self._in_flight: Dict[int, TaskDescriptor] = {}
        #: per-task merged accesses, computed at insert and replayed at
        #: finish (recomputing the merge would double the hot-path cost)
        self._merged_accesses: Dict[int, List[Tuple[int, AccessMode]]] = {}
        self.total_inserted = 0
        self.total_finished = 0

    # -- helpers --------------------------------------------------------------
    def table_for(self, address: int) -> int:
        """Index of the task graph responsible for ``address``."""
        index = self._distribute(address)
        if not 0 <= index < self.num_tables:
            raise SimulationError(
                f"distribution function returned table {index} for address {address:#x}; "
                f"valid range is [0, {self.num_tables})"
            )
        return index

    @property
    def in_flight_tasks(self) -> int:
        """Number of tasks inserted but not yet finished."""
        return len(self._in_flight)

    # -- main interface ---------------------------------------------------------
    def insert_task(self, task: TaskDescriptor) -> InsertResult:
        """Insert ``task`` into the task graph(s) and compute its readiness."""
        task_id = task.task_id
        if task_id in self._in_flight:
            raise SimulationError(f"task {task_id} inserted twice")
        self._in_flight[task_id] = task
        pool_was_full = self.task_pool.insert(task)
        self.function_table.intern(task.function)
        merged = merge_access_modes(task)
        self._merged_accesses[task_id] = merged
        accesses: List[AccessRecord] = []
        append = accesses.append
        tables = self.tables
        distribute = self._distribute
        num_tables = self.num_tables
        dependence_count = 0
        for address, mode in merged:
            table_index = distribute(address)
            if not 0 <= table_index < num_tables:
                raise SimulationError(
                    f"distribution function returned table {table_index} for address "
                    f"{address:#x}; valid range is [0, {num_tables})"
                )
            must_wait, set_conflict = tables[table_index].insert_access(address, task_id, mode)
            if must_wait:
                dependence_count += 1
            append(AccessRecord(address, mode, table_index, must_wait, set_conflict))
        self.dep_counts.register(task_id, dependence_count, params_total=len(accesses))
        self.total_inserted += 1
        return InsertResult(
            task_id,
            tuple(accesses),
            dependence_count,
            dependence_count == 0,
            pool_was_full,
        )

    def finish_task(self, task_id: int) -> FinishResult:
        """Retire ``task_id``: release its addresses and kick off waiters."""
        task = self._in_flight.pop(task_id, None)
        if task is None:
            raise SimulationError(f"finish for unknown or already finished task {task_id}")
        dep_counts = self.dep_counts
        if dep_counts.pending(task_id) != 0:
            raise SimulationError(
                f"task {task_id} finished while still having "
                f"{dep_counts.pending(task_id)} unresolved dependencies"
            )
        self.task_pool.remove(task_id)
        merged = self._merged_accesses.pop(task_id)
        accesses: List[FinishAccessRecord] = []
        append = accesses.append
        newly_ready: List[int] = []
        tables = self.tables
        distribute = self._distribute
        num_tables = self.num_tables
        decrement = dep_counts.decrement
        for address, _mode in merged:
            table_index = distribute(address)
            if not 0 <= table_index < num_tables:
                raise SimulationError(
                    f"distribution function returned table {table_index} for address "
                    f"{address:#x}; valid range is [0, {num_tables})"
                )
            released = tables[table_index].finish_access(address, task_id)
            kicked: List[int] = []
            for waiter in released:
                waiter_id = waiter.task_id
                kicked.append(waiter_id)
                if decrement(waiter_id):
                    newly_ready.append(waiter_id)
            append(FinishAccessRecord(address, table_index, tuple(kicked)))
        dep_counts.remove(task_id)
        self.total_finished += 1
        return FinishResult(task_id, tuple(accesses), tuple(newly_ready))

    def reset(self) -> None:
        """Return the tracker to its initial empty state."""
        for table in self.tables:
            table.reset()
        self.dep_counts.reset()
        self.task_pool.reset()
        self.function_table.reset()
        self._in_flight.clear()
        self._merged_accesses.clear()
        self.total_inserted = 0
        self.total_finished = 0
