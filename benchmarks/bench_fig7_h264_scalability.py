"""Figure 7 — Nexus# scalability on h264dec vs. the number of task graphs.

Panel (a): every configuration at a flat 100 MHz (architecture scaling
only).  Panel (b): each configuration at its Table I synthesis frequency
(the realistic design point).  The paper's observation is that more task
graphs help up to about 6, after which the frequency penalty cancels the
benefit — 6 task graphs is the configuration used everywhere else.
"""

import pytest

from repro.analysis.figures import figure7_report

#: Reduced sweep so the whole figure regenerates in a couple of minutes.
GROUPINGS = (1, 8)
TASK_GRAPHS = (1, 2, 4, 6, 8)
CORE_COUNTS = (1, 8, 32, 128)


def test_figure7_h264_scalability(benchmark, report_recorder, scale, seed):
    report = benchmark.pedantic(
        figure7_report,
        kwargs={
            "groupings": GROUPINGS,
            "task_graph_counts": TASK_GRAPHS,
            "core_counts": CORE_COUNTS,
            "scale": scale,
            "seed": seed,
        },
        rounds=1, iterations=1,
    )
    report_recorder("fig7_h264_scalability", report["text"])

    flat = report["panels"]["100MHz"]["h264dec-1x1-10f"]
    synth = report["panels"]["synthesis"]["h264dec-1x1-10f"]

    # (a) At a flat 100 MHz, adding task graphs improves the fine-grained
    # workload: 6 TGs must beat 1 TG.
    assert flat.curves["Nexus# 6TG"].max_speedup > flat.curves["Nexus# 1TG"].max_speedup
    # Nothing beats the no-overhead curve.
    for name, curve in flat.curves.items():
        if name != "Ideal":
            assert curve.max_speedup <= flat.curves["Ideal"].max_speedup + 1e-6

    # (b) At the synthesis frequency the frequency penalty eats into the
    # benefit of additional task graphs: the 8-TG configuration (41.66 MHz)
    # must not meaningfully beat 6 TGs, and the spread between the
    # configurations is much smaller than the ideal-vs-1TG gap — which is
    # exactly why the paper settles on 6 task graphs rather than "as many
    # as possible".  (At the reduced benchmark scale the sweet spot can
    # shift toward 2-4 TGs; the full-scale behaviour is discussed in
    # EXPERIMENTS.md.)
    assert synth.curves["Nexus# 8TG"].max_speedup <= synth.curves["Nexus# 6TG"].max_speedup * 1.1
    best_synth = max(curve.max_speedup for name, curve in synth.curves.items() if name != "Ideal")
    assert synth.curves["Nexus# 6TG"].max_speedup >= 0.6 * best_synth

    # Coarse tasks (8x8 grouping) are easy: even 1 task graph tracks ideal.
    coarse = report["panels"]["synthesis"]["h264dec-8x8-10f"]
    assert coarse.curves["Nexus# 1TG"].max_speedup >= 0.8 * coarse.curves["Ideal"].max_speedup
