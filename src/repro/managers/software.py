"""An optimistic software task-graph manager (Vandierendonck et al. [17]).

The paper's discussion of related work cites Vandierendonck et al.'s
analysis that "the runtime overhead of their proposed software task graph
manager can go as low as 400 cycles (0.2 µs on their test machine) per
task", while stressing that this number comes from an ideal experiment
(inserting one-parameter tasks into an empty task graph).  This model
lets the reproduction include that optimistic software baseline in
comparisons and ablations: a fixed per-task cost on the master for
insertion and a fixed locked cost for retirement, with no additional
contention or per-parameter growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.common.validation import check_non_negative
from repro.managers.base import FinishOutcome, ReadyNotification, SubmitOutcome, TaskManagerModel
from repro.sim.resource import SerialResource
from repro.taskgraph.tracker import DependencyTracker
from repro.trace.task import TaskDescriptor


@dataclass(frozen=True)
class VandierendonckConfig:
    """Cost constants (µs) of the optimistic software manager."""

    #: Per-task insertion cost on the submitting thread (0.2 µs = 400
    #: cycles on the cited 2 GHz test machine).
    insert_us: float = 0.2
    #: Per-task retirement cost, charged under a shared lock.
    retire_us: float = 0.2
    #: Worker-side dispatch overhead.
    worker_dispatch_us: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("insert_us", self.insert_us)
        check_non_negative("retire_us", self.retire_us)
        check_non_negative("worker_dispatch_us", self.worker_dispatch_us)


class VandierendonckManager(TaskManagerModel):
    """Fixed-cost software dependency resolution (optimistic baseline)."""

    name = "SW-400cycles"
    supports_taskwait_on = True

    def __init__(self, config: VandierendonckConfig | None = None) -> None:
        self.config = config or VandierendonckConfig()
        self.worker_overhead_us = self.config.worker_dispatch_us
        self._tracker = DependencyTracker(num_tables=1, distribution_key=("central",))
        self._lock = SerialResource("sw-manager-lock")

    def reset(self) -> None:
        self._tracker.reset()
        self._lock.reset()

    def prepare_program(self, program) -> None:
        self._tracker.bind_program(program)

    def submit(self, task: TaskDescriptor, time_us: float) -> SubmitOutcome:
        result = self._tracker.insert_task(task)
        _, done = self._lock.reserve(time_us, self.config.insert_us)
        ready = (ReadyNotification(task.task_id, done),) if result.ready else ()
        return SubmitOutcome(accept_time_us=done, ready=ready)

    def finish(self, task_id: int, time_us: float) -> FinishOutcome:
        result = self._tracker.finish_task(task_id)
        _, done = self._lock.reserve(time_us, self.config.retire_us)
        ready = tuple(ReadyNotification(t, done) for t in result.newly_ready)
        return FinishOutcome(ready=ready, notify_done_us=done)

    def describe(self) -> Mapping[str, object]:
        return {
            "name": self.name,
            "supports_taskwait_on": self.supports_taskwait_on,
            "config": self.config.__dict__,
        }

    def statistics(self) -> Mapping[str, object]:
        return {
            "tasks_inserted": self._tracker.total_inserted,
            "tasks_finished": self._tracker.total_finished,
            "lock_busy_us": self._lock.stats.busy_time,
        }
