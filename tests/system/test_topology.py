"""Unit tests for core topologies, topology specs and the core pool."""

import pytest

from repro.common.errors import ConfigurationError
from repro.system.topology import (
    CorePool,
    CoreTopology,
    TopologySpec,
    canonical_topology,
    resolve_topology,
)


class TestCoreTopology:
    def test_homogeneous(self):
        topology = CoreTopology.homogeneous(4)
        assert topology.num_cores == 4
        assert topology.speed_factors == (1.0, 1.0, 1.0, 1.0)
        assert topology.is_uniform_unit_speed

    def test_big_little_split(self):
        topology = CoreTopology.big_little(8, big_fraction=0.25, little_speed=0.5)
        assert topology.speed_factors == (1.0, 1.0) + (0.5,) * 6
        assert not topology.is_uniform_unit_speed

    def test_big_little_always_has_one_big_core(self):
        topology = CoreTopology.big_little(1, big_fraction=0.5)
        assert topology.speed_factors == (1.0,)

    def test_from_speeds(self):
        topology = CoreTopology.from_speeds([2.0, 1.0, 0.25])
        assert topology.kind == "custom"
        assert topology.num_cores == 3

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CoreTopology(speed_factors=())
        with pytest.raises(ConfigurationError):
            CoreTopology.from_speeds([1.0, 0.0])
        with pytest.raises(ConfigurationError):
            CoreTopology.homogeneous(0)


class TestTopologySpec:
    @pytest.mark.parametrize("text, canonical", [
        ("homogeneous", "homogeneous"),
        ("HOMO", "homogeneous"),
        ("homogeneous:2.0", "homogeneous:2"),
        ("biglittle", "biglittle:0.5:0.5"),
        ("big_little:0.25", "biglittle:0.5:0.25"),
        ("biglittle:0.25:0.5", "biglittle:0.25:0.5"),
        ("biglittle:0.25:0.5:2", "biglittle:0.25:0.5:2"),
        ("speeds:1,0.5", "speeds:1,0.5"),
    ])
    def test_parse_and_canonical(self, text, canonical):
        assert canonical_topology(text) == canonical
        # canonical forms round-trip to themselves
        assert canonical_topology(canonical) == canonical

    def test_parse_rejects_garbage(self):
        for bad in ("ring", "biglittle:a", "speeds:", "homogeneous:x"):
            with pytest.raises(ConfigurationError):
                TopologySpec.parse(bad)

    def test_build_homogeneous_applies_core_count(self):
        topology = TopologySpec.parse("homogeneous").build(16)
        assert topology.num_cores == 16 and topology.is_uniform_unit_speed

    def test_build_custom_requires_matching_core_count(self):
        spec = TopologySpec.parse("speeds:1,0.5")
        assert spec.build(2).speed_factors == (1.0, 0.5)
        with pytest.raises(ConfigurationError):
            spec.build(3)

    def test_describe_distinguishes_shapes(self):
        docs = {
            canonical_topology(text): TopologySpec.parse(text).describe()
            for text in ("homogeneous", "biglittle:0.5", "biglittle:0.25:0.5", "speeds:1,0.5")
        }
        rendered = [str(sorted(doc.items())) for doc in docs.values()]
        assert len(set(rendered)) == len(rendered)


class TestResolveTopology:
    def test_resolve_string(self):
        assert resolve_topology("biglittle", 4).kind == "big_little"

    def test_resolve_concrete_checks_core_count(self):
        topology = CoreTopology.homogeneous(4)
        assert resolve_topology(topology, 4) is topology
        with pytest.raises(ConfigurationError):
            resolve_topology(topology, 8)

    def test_canonical_rejects_concrete_topology(self):
        with pytest.raises(ConfigurationError):
            canonical_topology(CoreTopology.homogeneous(2))


class TestCorePool:
    def test_homogeneous_hands_out_lowest_id_first(self):
        pool = CorePool(CoreTopology.homogeneous(3))
        assert [pool.acquire() for _ in range(3)] == [0, 1, 2]
        assert pool.idle_count == 0

    def test_fastest_idle_core_first(self):
        pool = CorePool(CoreTopology.from_speeds([0.5, 2.0, 1.0]))
        assert pool.acquire() == 1  # fastest
        assert pool.acquire() == 2
        assert pool.acquire() == 0
        pool.release(2)
        pool.release(0)
        assert pool.acquire() == 2  # fastest of the released pair

    def test_acquire_exhausted_raises(self):
        pool = CorePool(CoreTopology.homogeneous(1))
        pool.acquire()
        with pytest.raises(ConfigurationError):
            pool.acquire()

    def test_busy_accounting_and_reset(self):
        pool = CorePool(CoreTopology.homogeneous(2))
        core = pool.acquire()
        pool.add_busy(core, 12.5)
        assert pool.busy_us[core] == 12.5
        pool.reset()
        assert pool.busy_us == [0.0, 0.0]
        assert pool.idle_count == 2
