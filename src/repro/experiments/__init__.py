"""Declarative, cached, parallel experiment sweeps.

The paper's results (Figures 7-9, Tables I-IV) are all grids of
(workload × manager × core-count) simulations.  This package is the
experiment layer every report and benchmark runs through:

* :mod:`repro.experiments.spec` — :class:`SweepSpec`, the declarative
  grid (workloads × managers × core counts × seeds), enumerated as
  content-addressed :class:`RunPoint` cells.
* :mod:`repro.experiments.runner` — :class:`SweepRunner`, which checks
  the result cache, fans the remaining cells out across
  ``multiprocessing`` workers and streams canonical JSONL rows.
* :mod:`repro.experiments.cache` — :class:`ResultCache`, the on-disk
  content-addressed store that makes repeated sweeps incremental.
* :mod:`repro.experiments.cli` — ``python -m repro.experiments.cli``
  (``sweep``, ``spec-hash``, ``report``, ``workloads``).
"""

from repro.experiments.cache import ResultCache
from repro.experiments.runner import SweepOutcome, SweepRunner, run_sweep, write_jsonl
from repro.experiments.spec import RunPoint, SweepSpec, WorkloadSpec

__all__ = [
    "ResultCache",
    "RunPoint",
    "SweepOutcome",
    "SweepRunner",
    "SweepSpec",
    "WorkloadSpec",
    "run_sweep",
    "write_jsonl",
]
