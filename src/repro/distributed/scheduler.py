"""The central sweep scheduler: owns the frontier, serves the workers.

One :class:`SweepScheduler` instance drives one distributed sweep.  It

* binds a TCP server socket and (optionally) spawns ``workers`` local
  worker processes pointed at it — remote workers started by hand via
  ``python -m repro.distributed.worker --connect host:port`` join the
  same pool;
* hands each worker the pickled job table **once** at handshake, then
  dispatches cells by index in locality-aware chunks pulled from the
  :class:`~repro.distributed.frontier.SweepFrontier`;
* rebalances by **work stealing**: when a worker asks for work and the
  queue is dry, the tail half of the most-loaded worker's unfinished
  assignment is revoked from it and handed to the idle one;
* detects dead workers two ways — socket EOF (a SIGKILLed process drops
  its connection immediately) as the fast path, and a
  :class:`HeartbeatMonitor` timeout as the backstop for hung-but-
  connected workers — and requeues their unfinished cells with a
  bounded per-cell retry budget, so a killed worker never loses
  results;
* assembles the streamed result documents keyed by grid index, which is
  what lets the runner emit canonical JSONL in deterministic cell order
  regardless of which worker finished what when.

Failure semantics are documented in ``docs/distributed.md``.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.distributed.frontier import SweepFrontier
from repro.distributed.protocol import FrameStream, ProtocolError, encode_payload
from repro.resilience.journal import FrontierJournal
from repro.resilience.quarantine import WorkerQuarantine

#: Main-loop tick: heartbeat checks and liveness checks run this often.
_TICK_SECONDS = 0.05


class HeartbeatMonitor:
    """Last-seen ledger with an expiry rule (injectable clock for tests).

    The scheduler calls :meth:`beat` on *every* frame a worker sends
    (results count as life signs, not just dedicated heartbeats) and
    periodically closes the connections :meth:`expired` names.
    """

    def __init__(self, timeout: float, clock: Callable[[], float] = time.monotonic) -> None:
        if timeout <= 0:
            raise SimulationError(f"heartbeat timeout must be positive, got {timeout}")
        self.timeout = timeout
        self._clock = clock
        self._last_seen: Dict[str, float] = {}

    def beat(self, worker_id: str) -> None:
        self._last_seen[worker_id] = self._clock()

    def forget(self, worker_id: str) -> None:
        self._last_seen.pop(worker_id, None)

    def last_seen(self, worker_id: str) -> Optional[float]:
        return self._last_seen.get(worker_id)

    def expired(self) -> List[str]:
        """Workers whose last life sign is older than ``timeout``."""
        now = self._clock()
        return [wid for wid, seen in self._last_seen.items()
                if now - seen > self.timeout]


class _Connection:
    """Scheduler-side state of one connected worker."""

    __slots__ = ("worker_id", "stream")

    def __init__(self, worker_id: str, stream: FrameStream) -> None:
        self.worker_id = worker_id
        self.stream = stream


class SweepScheduler:
    """Run one distributed sweep over socket workers.

    Parameters
    ----------
    jobs:
        ``(grid_index, point, workload_ref)`` triples — exactly the job
        shape the ``multiprocessing`` path ships to its pool (inline
        traces interned into ``table``).
    table:
        Interned workload table referenced by the jobs' ``workload_ref``.
    groups:
        Locality keys parallel to ``jobs`` (cells sharing a key are
        chunked together; defaults to one key per distinct workload).
    workers:
        Local worker processes to spawn against the server socket.
    external_workers:
        Number of additional workers expected to connect from elsewhere
        (started by hand; the scheduler prints nothing and simply
        serves whoever completes the handshake).
    batch_lanes:
        Forwarded to every worker: lane-compatible cells of a chunk are
        advanced in lockstep through :func:`repro.sim.batch.run_lanes`.
    cache_dir:
        Shared content-addressed result store.  Workers publish every
        finished cell into it with atomic writes, so results survive
        worker death and are reusable by any process that can see the
        directory.
    chunk_size:
        Cells per dispatch chunk (default: sized so every worker gets
        ~8 chunks, clamped to [1, 64]).
    max_attempts:
        Per-cell dispatch budget across worker deaths (see
        :class:`SweepFrontier`).
    heartbeat_interval / heartbeat_timeout:
        Workers send a life sign every ``interval`` seconds; the
        scheduler declares a worker dead after ``timeout`` seconds of
        silence.  The interval workers are told to use is clamped to
        ``timeout / 4`` so a short expiry deadline can never outpace
        the life signs of a healthy-but-busy worker.
    clock:
        Injectable monotonic clock (tests drive expiry with a fake one).
    timeout:
        Overall wall-clock bound on :meth:`run`; ``None`` waits forever.
    on_result:
        Optional ``(grid_index, document) -> None`` progress hook,
        called once per newly finished cell.
    chaos:
        Optional :class:`~repro.chaos.plan.FaultPlan`.  Shipped to every
        worker in its ``setup`` frame (with a per-connection epoch so a
        respawned worker draws a fresh fault stream instead of replaying
        its own crash), and wraps the scheduler side of each connection
        in a :class:`~repro.chaos.stream.ChaosFrameStream`.
    journal:
        Optional :class:`~repro.resilience.journal.FrontierJournal`.
        Cells it already holds are pre-completed (their documents
        replayed) and never dispatched; every fresh result is appended,
        so a scheduler killed mid-sweep resumes instead of restarting.
    quarantine:
        Death ledger distinguishing bad workers from poisoned cells
        (default: 5 deaths across ≥2 distinct cells).  A quarantined
        identity is refused at handshake and never respawned.
    max_respawns:
        Budget of local worker *re*-spawns across the whole sweep (dead
        local processes are relaunched under their original identity
        while budget remains, so transient worker crashes do not sink
        the sweep).
    speculate_after:
        Straggler threshold in seconds: a worker holding cells but
        silent on the result channel this long gets its head-of-line
        cells speculatively duplicated onto an idle worker (first
        result wins); ``None`` disables speculation.
    """

    def __init__(
        self,
        jobs: Sequence[Tuple[int, Any, Optional[int]]],
        table: Sequence[Any] = (),
        *,
        groups: Optional[Sequence[Any]] = None,
        workers: int = 0,
        external_workers: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_lanes: int = 1,
        cache_dir: Optional[str] = None,
        chunk_size: Optional[int] = None,
        max_attempts: int = 3,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        timeout: Optional[float] = None,
        on_result: Optional[Callable[[int, Dict[str, Any]], None]] = None,
        chaos: Optional[Any] = None,
        journal: Optional[FrontierJournal] = None,
        quarantine: Optional[WorkerQuarantine] = None,
        max_respawns: int = 8,
        speculate_after: Optional[float] = 2.0,
    ) -> None:
        if workers < 0 or external_workers < 0:
            raise SimulationError("worker counts must be >= 0")
        if workers + external_workers < 1 and jobs:
            raise SimulationError(
                "a distributed sweep needs at least one worker "
                "(workers >= 1 or external_workers >= 1)")
        self.jobs = list(jobs)
        self.table = list(table)
        self.workers = workers
        self.external_workers = external_workers
        self.host = host
        self.port = port
        self.batch_lanes = batch_lanes
        self.cache_dir = cache_dir
        self.heartbeat_interval = min(heartbeat_interval, heartbeat_timeout / 4)
        self.timeout = timeout
        self.on_result = on_result
        self.monitor = HeartbeatMonitor(heartbeat_timeout, clock)
        self._clock = clock
        if chunk_size is None:
            per_worker = max(1, len(self.jobs) // max(1, workers + external_workers))
            chunk_size = max(1, min(64, per_worker // 8 or 1))
        cells = [index for index, _, _ in self.jobs]
        if groups is None:
            groups = [id(point.workload) for _, point, _ in self.jobs]
        self.frontier = SweepFrontier(
            cells, list(groups), chunk_size=chunk_size, max_attempts=max_attempts)

        self.chaos = chaos
        self.journal = journal
        self.quarantine = quarantine or WorkerQuarantine()
        if max_respawns < 0:
            raise SimulationError(f"max_respawns must be >= 0, got {max_respawns}")
        self.max_respawns = max_respawns
        self.speculate_after = speculate_after
        self.respawns = 0
        self.speculations = 0
        #: Operator-facing fault timeline: quarantines, respawns,
        #: speculations, expiries — what the chaos tests and the bench
        #: read back instead of scraping logs.
        self.events: List[Dict[str, Any]] = []

        self.address: Optional[Tuple[str, int]] = None
        self.processes: List[subprocess.Popen] = []
        self.results_received = 0
        self.resumed_cells = 0
        self._local_procs: Dict[str, subprocess.Popen] = {}
        self._local_respawns: Dict[str, int] = {}
        self._epochs: Dict[str, int] = {}
        self._worker_activity: Dict[str, float] = {}
        self._documents: Dict[int, Dict[str, Any]] = {}
        self._lock = threading.RLock()
        #: Notified on every observable state change (result recorded,
        #: chunk dispatched, worker connected/disconnected, address
        #: bound, failure) — the event-driven backbone of
        #: :meth:`wait_until`, so tests never poll with sleeps.
        self._progress = threading.Condition(self._lock)
        self._conns: Dict[str, _Connection] = {}
        self._idle: set = set()
        self._next_anon = 0
        self._done = threading.Event()
        self._stopping = False
        self._failure: Optional[BaseException] = None
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._payload: Optional[str] = None

        if journal is not None:
            # Resume: replayed completions are real results — mark them
            # done before any dispatch so no worker ever re-runs them.
            wanted = {index for index, _, _ in self.jobs}
            for cell, doc in journal.completed.items():
                if cell in wanted and self.frontier.complete(None, cell):
                    self._documents[cell] = doc
                    self.resumed_cells += 1
            if self.resumed_cells:
                self._event("resume", cells=self.resumed_cells,
                            journal=str(journal.path))

    # -- lifecycle ---------------------------------------------------------
    def run(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Serve workers until every cell has a result; return them.

        Results come back as ``(grid_index, document)`` pairs in
        completion order — the caller (the runner) re-orders them into
        grid order, which is what keeps the JSONL deterministic.
        """
        if not self.jobs:
            return []
        if self.frontier.is_done:
            # Every cell was replayed from the journal: nothing to
            # serve, no socket to bind, no worker to spawn.
            return sorted(self._documents.items())
        self._payload = encode_payload((self.jobs, self.table))
        self._server = socket.create_server((self.host, self.port), backlog=64)
        with self._progress:
            self.address = self._server.getsockname()[:2]
            self._progress.notify_all()
        accept_thread = threading.Thread(
            target=self._accept_loop, name="fabric-accept", daemon=True)
        accept_thread.start()
        self._threads.append(accept_thread)
        try:
            for i in range(self.workers):
                self._launch_local(f"local-{i}")
            deadline = None if self.timeout is None else self._clock() + self.timeout
            while not self._done.wait(_TICK_SECONDS):
                if self._failure is not None:
                    break
                self._expire_silent_workers()
                self._respawn_dead_locals()
                self._speculate_tick()
                self._check_liveness()
                if deadline is not None and self._clock() > deadline:
                    self._fail(SimulationError(
                        f"distributed sweep timed out after {self.timeout}s "
                        f"({self.frontier.done_count}/{self.frontier.total} cells done)"))
        finally:
            self._shutdown()
        if self._failure is not None:
            raise SimulationError(f"distributed sweep failed: {self._failure}") \
                from self._failure
        missing = self.frontier.total - len(self._documents)
        if missing:  # pragma: no cover - defensive
            raise SimulationError(f"sweep lost results for {missing} grid cells")
        return sorted(self._documents.items())

    def _launch_local(self, worker_id: str) -> subprocess.Popen:
        process = self._spawn_local(worker_id)
        self.processes.append(process)
        self._local_procs[worker_id] = process
        return process

    def _spawn_local(self, worker_id: str) -> subprocess.Popen:
        host, port = self.address
        if host in ("0.0.0.0", "::"):
            host = "127.0.0.1"
        env = dict(os.environ)
        # Workers must import the same repro package as the scheduler,
        # wherever it lives (a src/ checkout or an installed wheel).
        import repro

        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (package_root + os.pathsep + existing) if existing \
                else package_root
        return subprocess.Popen(
            [sys.executable, "-m", "repro.distributed.worker",
             "--connect", f"{host}:{port}", "--worker-id", worker_id],
            env=env,
        )

    def _event(self, kind: str, **detail: Any) -> None:
        entry = {"t": round(self._clock(), 4), "event": kind, **detail}
        self.events.append(entry)

    def _shutdown(self) -> None:
        self._stopping = True
        with self._lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.stream.send({"type": "shutdown"})
            except OSError:
                pass
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        for process in self.processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5)
        for conn in conns:
            conn.stream.close()
        for thread in self._threads:
            thread.join(timeout=5)

    def _fail(self, exc: BaseException) -> None:
        with self._progress:
            if self._failure is None:
                self._failure = exc
            self._progress.notify_all()
        self._done.set()

    # -- event-driven waiting (tests, monitoring) ----------------------------
    def wait_until(self, predicate: Callable[[], bool], timeout: float = 60.0) -> bool:
        """Block until ``predicate()`` is true; return its final value.

        The predicate is evaluated under the scheduler lock and
        re-checked whenever scheduler state changes (a result lands, a
        chunk is dispatched, a worker joins or dies, the server binds),
        plus a coarse periodic backstop for conditions the scheduler
        cannot observe itself (e.g. an external thread dying).  This is
        the replacement for sleep-based polling in tests: no interval
        tuning, no wall-clock flakiness — the wait ends the moment the
        state change is published.
        """
        deadline = time.monotonic() + timeout
        with self._progress:
            while True:
                if predicate():
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return bool(predicate())
                self._progress.wait(min(remaining, 0.25))

    def wait_for_results(self, count: int, timeout: float = 60.0) -> bool:
        """Block until at least ``count`` results have been recorded."""
        return self.wait_until(lambda: self.results_received >= count, timeout)

    # -- connection handling -----------------------------------------------
    def _accept_loop(self) -> None:
        assert self._server is not None
        # A timeout (not a bare blocking accept): on Linux, closing the
        # listening socket does not wake a thread already blocked in
        # accept(), so shutdown would stall until the join times out.
        self._server.settimeout(0.25)
        while not self._stopping:
            try:
                sock, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # server socket closed during shutdown
            thread = threading.Thread(
                target=self._serve, args=(sock,), name="fabric-serve", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = FrameStream(sock)
        worker_id: Optional[str] = None
        try:
            hello = stream.recv(timeout=30)
            if hello is None or hello.get("type") != "hello":
                stream.close()
                return
            claimed = str(hello.get("worker_id") or "")
            if self.quarantine.is_quarantined(claimed):
                # A quarantined identity gets no second handshake: close
                # without setup so its reconnect loop exhausts quickly.
                self._event("refused", worker=claimed)
                stream.close()
                return
            with self._lock:
                worker_id = claimed
                if not worker_id or worker_id in self._conns:
                    worker_id = f"{worker_id or 'worker'}-{self._next_anon}"
                    self._next_anon += 1
                epoch = self._epochs.get(worker_id, 0)
                self._epochs[worker_id] = epoch + 1
                self._conns[worker_id] = _Connection(worker_id, stream)
                self.monitor.beat(worker_id)
                self._worker_activity[worker_id] = self._clock()
                self._progress.notify_all()
            setup: Dict[str, Any] = {
                "type": "setup",
                "worker_id": worker_id,
                "jobs": self._payload,
                "batch_lanes": self.batch_lanes,
                "cache_dir": self.cache_dir,
                "heartbeat_interval": self.heartbeat_interval,
            }
            if self.chaos is not None:
                # The epoch keeps respawns out of fault lockstep: the
                # replacement of a crashed worker draws a fresh fault
                # stream instead of replaying the identical crash.
                setup["chaos"] = self.chaos.to_doc()
                setup["chaos_epoch"] = epoch
            stream.send(setup)
            if self.chaos is not None:
                from repro.chaos.stream import ChaosFrameStream

                stream = ChaosFrameStream.adopt(
                    stream, self.chaos, f"sched:{worker_id}:e{epoch}")
                with self._lock:
                    conn = self._conns.get(worker_id)
                    if conn is not None and conn.stream is not stream:
                        conn.stream = stream
            while True:
                frame = stream.recv()
                if frame is None:
                    return
                self.monitor.beat(worker_id)
                kind = frame.get("type")
                if kind == "need_work":
                    self._dispatch(worker_id)
                elif kind == "result":
                    self._record_result(worker_id, int(frame["cell"]), frame["doc"])
                elif kind == "heartbeat":
                    pass
                elif kind == "error":
                    # The engine rejected a cell — deterministic, so a
                    # retry on another worker would fail identically.
                    self._fail(SimulationError(
                        f"worker {worker_id} failed on cells "
                        f"{frame.get('cells')}: {frame.get('message')}"))
                    return
                elif kind == "goodbye":
                    return
                else:
                    raise ProtocolError(f"unexpected frame from worker: {kind!r}")
        except (ProtocolError, OSError, TimeoutError, ValueError, KeyError):
            pass  # treated as a dead worker below
        finally:
            self._disconnect(worker_id, stream)

    def _disconnect(self, worker_id: Optional[str], stream: FrameStream) -> None:
        stream.close()
        if worker_id is None:
            return
        requeued: List[int] = []
        with self._progress:
            if worker_id not in self._conns:
                return
            del self._conns[worker_id]
            self._idle.discard(worker_id)
            self.monitor.forget(worker_id)
            self._progress.notify_all()
            if self._stopping or self.frontier.is_done:
                return
            held = self.frontier.assigned_cells(worker_id)
            if self.quarantine.record_death(worker_id, held):
                # Diverse cells, repeated deaths: the worker is the
                # problem.  Refuse its handshakes, stop respawning it.
                self._event("quarantine", worker=worker_id,
                            deaths=self.quarantine.deaths(worker_id))
            try:
                requeued = self.frontier.fail_worker(worker_id)
            except SimulationError as exc:
                self._fail(exc)
                return
            self._event("death", worker=worker_id, requeued=len(requeued))
        if requeued:
            self._kick_idle()

    # -- scheduling --------------------------------------------------------
    def _dispatch(self, worker_id: str) -> None:
        """Assign the next chunk to ``worker_id`` — stealing if dry."""
        revoke_from: Optional[str] = None
        stolen: List[int] = []
        with self._progress:
            chunk = self.frontier.next_chunk(worker_id)
            if not chunk:
                victim = self.frontier.steal_victim(worker_id)
                if victim is not None:
                    stolen = self.frontier.steal(victim, worker_id)
                    if stolen:
                        revoke_from = victim
            self._progress.notify_all()
            if not chunk and not stolen:
                self._idle.add(worker_id)
                return
            self._idle.discard(worker_id)
            self._worker_activity[worker_id] = self._clock()
            thief_conn = self._conns.get(worker_id)
            victim_conn = self._conns.get(revoke_from) if revoke_from else None
        if victim_conn is not None:
            # Best effort: if the victim is dying, its disconnect path
            # requeues whatever the steal did not claim.
            try:
                victim_conn.stream.send({"type": "revoke", "cells": stolen})
            except OSError:
                pass
        if thief_conn is not None:
            try:
                thief_conn.stream.send({"type": "work", "cells": chunk or stolen})
            except OSError:
                pass  # the thief's reader thread will requeue on EOF

    def _kick_idle(self) -> None:
        with self._lock:
            idle = list(self._idle)
        for worker_id in idle:
            self._dispatch(worker_id)

    def _record_result(self, worker_id: str, cell: int, doc: Dict[str, Any]) -> None:
        with self._progress:
            self._worker_activity[worker_id] = self._clock()
            fresh = self.frontier.complete(worker_id, cell)
            if fresh:
                self._documents[cell] = doc
                self.results_received += 1
                if self.journal is not None:
                    self.journal.record(cell, doc)
            done = self.frontier.is_done
            self._progress.notify_all()
        if fresh and self.on_result is not None:
            self.on_result(cell, doc)
        if done:
            self._done.set()

    # -- failure detection -------------------------------------------------
    def _expire_silent_workers(self) -> None:
        for worker_id in self.monitor.expired():
            with self._lock:
                conn = self._conns.get(worker_id)
            if conn is not None:
                # Closing the socket unblocks the reader thread, which
                # funnels into the normal disconnect/requeue path.
                self._event("expired", worker=worker_id)
                conn.stream.close()

    def _respawn_dead_locals(self) -> None:
        """Relaunch dead local workers under their original identity.

        A transient crash (chaos, OOM, a flaky host) costs one unit of
        the sweep-wide ``max_respawns`` budget instead of a worker slot
        for the rest of the sweep; quarantined identities stay dead.
        """
        if self._stopping or self.frontier.is_done:
            return
        for worker_id, process in list(self._local_procs.items()):
            if process.poll() is None:
                continue
            if self.quarantine.is_quarantined(worker_id):
                continue
            if self.respawns >= self.max_respawns:
                return
            with self._lock:
                if worker_id in self._conns:
                    continue  # its connection is still being torn down
            self.respawns += 1
            self._local_respawns[worker_id] = \
                self._local_respawns.get(worker_id, 0) + 1
            self._event("respawn", worker=worker_id, total=self.respawns)
            self._launch_local(worker_id)

    def _speculate_tick(self) -> None:
        """Duplicate stale in-flight cells (stragglers, lost frames).

        Two recovery cases share this path, both detected as "a worker
        holds cells but the result channel has been silent too long":

        * **idle victim** — the worker itself reports idle while the
          frontier still charges it with cells: its ``work`` or
          ``result`` frames were lost on the wire.  Re-arming the
          worker with its own cells (self-speculation) recovers both.
        * **busy victim** — a straggler.  Its head-of-line cells are
          duplicated onto an idle worker; first result wins and
          :meth:`SweepFrontier.complete` discards the loser.
        """
        if self.speculate_after is None:
            return
        now = self._clock()
        dispatches: List[Tuple[_Connection, List[int]]] = []
        with self._progress:
            if self.frontier.is_done or self.frontier.has_queued:
                return
            idle = [w for w in sorted(self._idle) if w in self._conns]
            for victim in self.frontier.workers_with_assignments():
                last = self._worker_activity.get(victim)
                if last is None or now - last <= self.speculate_after:
                    continue
                if victim in self._idle and victim in self._conns:
                    thief = victim
                else:
                    thief = next((w for w in idle if w != victim), None)
                    if thief is None:
                        continue  # nobody free; the heartbeat backstop rules
                cells = self.frontier.speculate(victim, thief)
                if not cells:
                    continue
                self._worker_activity[victim] = now  # back off between rounds
                self._worker_activity[thief] = now
                self._idle.discard(thief)
                if thief in idle:
                    idle.remove(thief)
                self.speculations += 1
                self._event("speculate", victim=victim, thief=thief,
                            cells=len(cells))
                conn = self._conns.get(thief)
                if conn is not None:
                    dispatches.append((conn, cells))
            self._progress.notify_all()
        for conn, cells in dispatches:
            try:
                conn.stream.send({"type": "work", "cells": cells})
            except OSError:
                pass  # its reader thread will requeue on EOF

    def _check_liveness(self) -> None:
        """Fail fast when every worker is gone and none can return."""
        if self.external_workers > 0:
            return  # externals may still connect; the timeout bounds us
        if not self.processes:
            return
        alive = any(process.poll() is None for process in self.processes)
        can_respawn = (self.respawns < self.max_respawns and any(
            not self.quarantine.is_quarantined(w) for w in self._local_procs))
        with self._lock:
            connected = bool(self._conns)
        if not alive and not connected and not can_respawn \
                and not self.frontier.is_done:
            self._fail(SimulationError(
                "all local workers exited before the sweep completed "
                f"({self.frontier.done_count}/{self.frontier.total} cells done)"))
