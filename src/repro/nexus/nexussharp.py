"""Nexus# — the distributed hardware task manager (the paper's contribution).

Nexus# replaces the single task graph of Nexus++ with ``n`` independent
task graphs and scatters the parameters of incoming tasks over them with
the XOR-fold hash of :mod:`repro.nexus.distribution`.  The pipeline
(Section IV, Figures 2/4/5) becomes:

1. **Input Parser (IP)** — receives the header (2 cycles) and each
   48-bit parameter (2 cycles), *immediately* forwarding every parameter
   to its task graph's New Args. buffer, and finally writes the task
   descriptor to the Task Pool (1 cycle);
2. **Insertion (IN)** — each task graph independently inserts the
   parameters queued at its New Args. buffer (5 cycles per parameter,
   after the buffer's 3-cycle fall-through);
3. **Arbitration (AR)** — the Dependence Counts Arbiter gathers the
   per-task-graph results, concludes the task's final dependence count
   and forwards ready tasks to the Internal Ready Tasks buffer;
4. **Write Back (WB)** — ready task ids are translated through the
   Function Pointers table and handed to the Nexus IO unit (3 cycles),
   after the ready buffer's 3-cycle fall-through.

Finished tasks follow the symmetric path: the Input Parser reads the
task's I/O list back from the Task Pool, redistributes the addresses to
the Finished Args. buffers, each task graph updates its tables and emits
the kicked-off waiters, and the arbiter decrements their dependence
counts, forwarding those reaching zero to the Write Back stage.

Unlike Nexus++, Nexus# supports the ``taskwait on`` pragma, which is what
lets the fine-grained H264dec benchmark scale (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.common.constants import (
    DEFAULT_KICKOFF_CAPACITY,
    DEFAULT_TABLE_SETS,
    DEFAULT_TABLE_WAYS,
    DEFAULT_TASK_POOL_ENTRIES,
    MAX_TASK_GRAPHS,
)
from repro.common.errors import ConfigurationError
from repro.common.units import Frequency
from repro.common.validation import check_positive
from repro.managers.base import FinishOutcome, ReadyNotification, SubmitOutcome, TaskManagerModel
from repro.nexus.arbiter import DependenceCountsArbiter
from repro.nexus.distribution import nexus_hash
from repro.nexus.timing import NexusSharpTiming, synthesis_frequency_mhz
from repro.sim.resource import SerialResource
from repro.taskgraph.table import AddressTable
from repro.taskgraph.task_pool import TaskPool
from repro.taskgraph.tracker import DependencyTracker
from repro.trace.task import TaskDescriptor


@dataclass(frozen=True)
class NexusSharpConfig:
    """Configuration of a Nexus# instance."""

    #: Number of distributed task graphs (1..32).
    num_task_graphs: int = 6
    #: Manager clock frequency in MHz.  ``None`` selects the synthesis
    #: (test) frequency of Table I for the chosen number of task graphs;
    #: Figure 7(a) style experiments pass an explicit 100.0 instead.
    frequency_mhz: Optional[float] = None
    #: Pipeline latencies.
    timing: NexusSharpTiming = field(default_factory=NexusSharpTiming)
    #: Geometry of each task graph.
    table_sets: int = DEFAULT_TABLE_SETS
    table_ways: int = DEFAULT_TABLE_WAYS
    kickoff_capacity: int = DEFAULT_KICKOFF_CAPACITY
    #: Task pool entries (shared by all task graphs).
    task_pool_entries: int = DEFAULT_TASK_POOL_ENTRIES

    def __post_init__(self) -> None:
        if not 1 <= self.num_task_graphs <= MAX_TASK_GRAPHS:
            raise ConfigurationError(
                f"num_task_graphs must be in [1, {MAX_TASK_GRAPHS}], got {self.num_task_graphs}"
            )
        if self.frequency_mhz is not None:
            check_positive("frequency_mhz", self.frequency_mhz)
        check_positive("table_sets", self.table_sets)
        check_positive("table_ways", self.table_ways)
        check_positive("kickoff_capacity", self.kickoff_capacity)
        check_positive("task_pool_entries", self.task_pool_entries)

    @property
    def effective_frequency_mhz(self) -> float:
        """The frequency the manager actually runs at."""
        if self.frequency_mhz is not None:
            return self.frequency_mhz
        return synthesis_frequency_mhz(self.num_task_graphs)


class NexusSharpManager(TaskManagerModel):
    """Cycle-approximate model of the Nexus# distributed task manager."""

    supports_taskwait_on = True
    worker_overhead_us = 0.0

    def __init__(self, config: Optional[NexusSharpConfig] = None) -> None:
        self.config = config or NexusSharpConfig()
        self.name = f"Nexus# {self.config.num_task_graphs}TG"
        self._frequency = Frequency(self.config.effective_frequency_mhz)
        self._cycle_us = self._frequency.cycle_time_us
        num_tg = self.config.num_task_graphs
        self._tracker = DependencyTracker(
            num_tables=num_tg,
            distribute=lambda address: nexus_hash(address, num_tg),
            table_factory=lambda index: AddressTable(
                num_sets=self.config.table_sets,
                ways=self.config.table_ways,
                kickoff_capacity=self.config.kickoff_capacity,
                name=f"nexus#-TG{index}",
            ),
            task_pool=TaskPool(capacity=self.config.task_pool_entries, name="nexus#-task-pool"),
        )
        timing = self.config.timing
        self._input_parser = SerialResource("nexus#-input-parser")
        self._task_graph_ports = [SerialResource(f"nexus#-TG{i}-port") for i in range(num_tg)]
        self._write_back = SerialResource("nexus#-write-back")
        self._arbiter = DependenceCountsArbiter(
            cycles_per_result=timing.arbiter_cycles_per_result,
            conclude_cycles=timing.arbiter_conclude_cycles,
            decrement_cycles=timing.arbiter_decrement_cycles,
            cycle_us=self._cycle_us,
        )
        self._ready_latency_total_us = 0.0
        self._ready_count = 0

    # -- helpers ---------------------------------------------------------------
    def _cycles(self, cycles: float) -> float:
        return cycles * self._cycle_us

    @property
    def frequency(self) -> Frequency:
        """The manager clock actually in use."""
        return self._frequency

    @property
    def num_task_graphs(self) -> int:
        return self.config.num_task_graphs

    def reset(self) -> None:
        self._tracker.reset()
        self._input_parser.reset()
        for port in self._task_graph_ports:
            port.reset()
        self._write_back.reset()
        self._arbiter.reset()
        self._ready_latency_total_us = 0.0
        self._ready_count = 0

    # -- ready-path helper --------------------------------------------------------
    def _write_back_ready(self, task_id: int, concluded_us: float, reference_us: float) -> ReadyNotification:
        """Send a ready task through the Internal Ready Tasks buffer and WB stage."""
        timing = self.config.timing
        wb_available = concluded_us + self._cycles(timing.ready_fifo_latency_cycles)
        _, wb_end = self._write_back.reserve(wb_available, self._cycles(timing.writeback_cycles))
        self._ready_latency_total_us += wb_end - reference_us
        self._ready_count += 1
        return ReadyNotification(task_id, wb_end)

    # -- TaskManagerModel --------------------------------------------------------
    def submit(self, task: TaskDescriptor, time_us: float) -> SubmitOutcome:
        timing = self.config.timing
        result = self._tracker.insert_task(task)
        num_params = max(1, task.num_params)

        # Stage 1: Input Parser.  Parameters are forwarded to their task
        # graphs as they arrive; the descriptor is written to the Task
        # Pool at the end.
        ip_start, ip_end = self._input_parser.reserve(time_us, self._cycles(timing.input_cycles(num_params)))

        # Stage 2: per-parameter insertion at the owning task graph.
        insert_ends: List[float] = []
        for index, access in enumerate(result.accesses):
            forward_us = ip_start + self._cycles(timing.param_forward_offset_cycles(index))
            visible_us = forward_us + self._cycles(timing.args_fifo_latency_cycles)
            insert_cycles = timing.insert_cycles_per_param
            if access.set_conflict:
                insert_cycles += timing.set_conflict_stall_cycles
            _, tg_end = self._task_graph_ports[access.table_index].reserve(
                visible_us, self._cycles(insert_cycles)
            )
            insert_ends.append(tg_end)

        ready: tuple[ReadyNotification, ...] = ()
        if result.accesses:
            # Stage 3: the arbiter gathers one result per parameter, in the
            # order the task graphs produce them.
            self._arbiter.begin_task(task.task_id, expected_results=len(result.accesses))
            concluded: Optional[float] = None
            for tg_end in sorted(insert_ends):
                concluded = self._arbiter.collect_result(task.task_id, tg_end)
            assert concluded is not None  # the last collect always concludes
            if result.ready:
                ready = (self._write_back_ready(task.task_id, concluded, time_us),)
        else:
            # A task with an empty parameter list is trivially ready; it
            # skips the task graphs entirely and is reported straight from
            # the Input Parser through the ready path.
            ready = (self._write_back_ready(task.task_id, ip_end, time_us),)

        return SubmitOutcome(accept_time_us=ip_end, ready=ready)

    def finish(self, task_id: int, time_us: float) -> FinishOutcome:
        timing = self.config.timing
        result = self._tracker.finish_task(task_id)
        num_params = max(1, result.num_accesses)

        # The Input Parser reads the finished task's I/O list from the Task
        # Pool and redistributes the addresses to the Finished Args buffers.
        fp_start, fp_end = self._input_parser.reserve(
            time_us, self._cycles(timing.finish_input_cycles(num_params))
        )

        # Each owning task graph updates its entry and emits the kicked-off
        # waiters; the arbiter then decrements their dependence counts.
        last_decrement: Dict[int, float] = {}
        for index, access in enumerate(result.accesses):
            forward_us = fp_start + self._cycles(timing.finish_param_forward_offset_cycles(index))
            visible_us = forward_us + self._cycles(timing.args_fifo_latency_cycles)
            update_cycles = timing.finish_update_cycles_per_param
            update_cycles += timing.kickoff_cycles_per_waiter * len(access.kicked_off)
            _, tg_end = self._task_graph_ports[access.table_index].reserve(
                visible_us, self._cycles(update_cycles)
            )
            for waiter in access.kicked_off:
                decrement_end = self._arbiter.decrement(tg_end)
                previous = last_decrement.get(waiter, 0.0)
                last_decrement[waiter] = max(previous, decrement_end)

        notifications: List[ReadyNotification] = []
        for ready_task in result.newly_ready:
            concluded = last_decrement.get(ready_task, fp_end)
            notifications.append(self._write_back_ready(ready_task, concluded, time_us))
        return FinishOutcome(ready=tuple(notifications), notify_done_us=fp_end)

    # -- reporting -----------------------------------------------------------------
    def describe(self) -> Mapping[str, object]:
        return {
            "name": self.name,
            "supports_taskwait_on": self.supports_taskwait_on,
            "num_task_graphs": self.config.num_task_graphs,
            "frequency_mhz": self.config.effective_frequency_mhz,
            "table_sets": self.config.table_sets,
            "table_ways": self.config.table_ways,
        }

    def statistics(self) -> Mapping[str, object]:
        per_tg_busy = [port.stats.busy_time for port in self._task_graph_ports]
        per_tg_conflicts = [table.stats.set_conflicts for table in self._tracker.tables]
        return {
            "tasks_inserted": self._tracker.total_inserted,
            "tasks_finished": self._tracker.total_finished,
            "input_parser_busy_us": self._input_parser.stats.busy_time,
            "write_back_busy_us": self._write_back.stats.busy_time,
            "arbiter_busy_us": self._arbiter.busy_time_us,
            "task_graph_busy_us": per_tg_busy,
            "set_conflicts": per_tg_conflicts,
            "mean_ready_latency_us": (
                self._ready_latency_total_us / self._ready_count if self._ready_count else 0.0
            ),
        }
