"""Fault injection against the serving layer.

The contract under test: a saturated queue answers 429 with a measured
``Retry-After`` (and nothing is half-admitted); a client disconnecting
mid-stream never cancels a simulation another request is awaiting and
never wedges the server; an engine failure surfaces as a clean 5xx (or
a detectable truncation once a stream has started) — never a hung
connection.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import pytest

import repro.serve.batcher as batcher_module
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeError,
    ServeSaturated,
    start_in_thread,
)

SLOW_BLOCK = 0.25  # seconds a monkeypatched simulation block takes

_real_execute_block = batcher_module.execute_block


class TestBackPressure:
    def test_oversized_sweep_is_rejected_whole_with_retry_after(self):
        """A sweep with more fresh cells than the queue can ever hold is
        refused atomically: 429, nothing enqueued, nothing half-run."""
        handle = start_in_thread(ServeConfig(max_pending=4))
        try:
            # retry=None: the default client would dutifully honour the
            # Retry-After and resubmit; here we count server rejections.
            with ServeClient(handle.host, handle.port, timeout=60,
                             retry=None) as c:
                with pytest.raises(ServeSaturated) as err:
                    c.sweep_report(workloads=["microbench"],
                                   managers=["ideal", "nanos"],
                                   core_counts=[1, 2, 4], scale=0.05)
                assert err.value.retry_after_s >= 1.0
                stats = c.stats()
                assert stats["executed"] == 0
                assert stats["pending"] == 0
                assert stats["rejected_requests"] == 1
                # The server is not wedged: a small request still lands.
                doc = c.simulate(workload="microbench", manager="ideal",
                                 cores=1, scale=0.05)
                assert doc["makespan_us"] > 0
        finally:
            handle.stop()

    def test_saturated_queue_429s_then_recovers(self, monkeypatch):
        """With one-deep admission and a gated block, a concurrent
        distinct cell deterministically gets 429 + Retry-After; once the
        queue drains the same request succeeds."""
        occupying = threading.Event()  # the first cell is in its block
        release = threading.Event()    # let the first cell finish

        def gated(block):
            occupying.set()
            assert release.wait(timeout=60)
            return _real_execute_block(block)

        monkeypatch.setattr(batcher_module, "execute_block", gated)
        handle = start_in_thread(ServeConfig(max_pending=1, batch_window=0.0,
                                             executor_threads=1))
        try:
            first = dict(workload="microbench", manager="ideal",
                         cores=1, scale=0.05)
            second = dict(workload="microbench", manager="nexus#2",
                          cores=1, scale=0.05)
            box = {}

            def occupy():
                with ServeClient(handle.host, handle.port, timeout=60) as c:
                    box["first"] = c.simulate(**first)

            thread = threading.Thread(target=occupy)
            thread.start()
            try:
                # By the time the gate trips, the first cell holds the
                # whole queue (admission happens before dispatch).
                assert occupying.wait(timeout=30)
                with ServeClient(handle.host, handle.port, timeout=60) as c:
                    with pytest.raises(ServeSaturated) as err:
                        c.simulate(**second)
                    assert err.value.retry_after_s >= 1.0
                    release.set()
                    thread.join(timeout=30)
                    assert box["first"]["makespan_us"] > 0
                    # The drained queue admits the retried request.
                    doc = c.simulate(**second)
                    assert doc["makespan_us"] > 0
            finally:
                release.set()
                thread.join(timeout=30)
        finally:
            handle.stop()


class TestClientDisconnect:
    def test_disconnect_mid_stream_never_cancels_a_shared_simulation(
            self, monkeypatch):
        """Client A starts a slow streamed sweep and hangs up mid-body;
        client B awaits the same cells.  B must still get every row, and
        the server must keep answering."""
        monkeypatch.setattr(batcher_module, "execute_block",
                            lambda block: (time.sleep(SLOW_BLOCK),
                                           _real_execute_block(block))[1])
        handle = start_in_thread(ServeConfig(batch_lanes=1, batch_window=0.0,
                                             executor_threads=1))
        fields = dict(workloads=["microbench"], managers=["ideal", "nexus#2"],
                      core_counts=[1, 2], scale=0.05, format="jsonl")
        body = json.dumps(fields).encode("utf-8")
        rows_b = []
        errors = []

        def client_b():
            try:
                with ServeClient(handle.host, handle.port, timeout=120) as c:
                    rows_b.extend(c.sweep_rows(**fields))
            except Exception as exc:
                errors.append(exc)

        try:
            # Client A: raw socket, read one chunk of the stream, vanish.
            sock = socket.create_connection((handle.host, handle.port),
                                            timeout=30)
            sock.sendall(
                b"POST /v1/sweep HTTP/1.1\r\n"
                b"Host: test\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
            first = sock.recv(256)
            assert b"200" in first
            thread = threading.Thread(target=client_b)
            thread.start()
            sock.close()  # mid-stream disconnect
            thread.join(timeout=120)
            assert not thread.is_alive(), "client B hung"
            assert errors == []
            assert len(rows_b) == 4
            with ServeClient(handle.host, handle.port, timeout=30) as c:
                assert c.healthz()["status"] == "ok"
        finally:
            handle.stop()


class TestEngineFailure:
    def test_simulation_error_is_a_clean_500_not_a_hang(self, monkeypatch):
        def exploding(block):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(batcher_module, "execute_block", exploding)
        handle = start_in_thread(ServeConfig(batch_window=0.0))
        try:
            with ServeClient(handle.host, handle.port, timeout=30) as c:
                with pytest.raises(ServeError) as err:
                    c.simulate(workload="microbench", manager="ideal",
                               cores=1, scale=0.05)
                assert err.value.status == 500
                assert "engine exploded" in str(err.value)
                # The connection (and the queue) survive the failure.
                monkeypatch.setattr(batcher_module, "execute_block",
                                    _real_execute_block)
                doc = c.simulate(workload="microbench", manager="ideal",
                                 cores=1, scale=0.05)
                assert doc["makespan_us"] > 0
                assert c.stats()["pending"] == 0
        finally:
            handle.stop()

    def test_worker_death_during_fabric_block_falls_back_to_local(self, monkeypatch):
        """The fabric path reports a lost sweep as SimulationError; the
        batcher's circuit breaker must absorb it — re-run the block on
        the local executor and serve a correct 200, never a hang.  After
        enough failures the breaker opens and blocks skip the fabric."""
        from repro.common.errors import SimulationError

        def dying(block, **kwargs):
            raise SimulationError("distributed sweep failed: worker died")

        monkeypatch.setattr(batcher_module, "execute_block_fabric", dying)
        handle = start_in_thread(ServeConfig(batch_window=0.0,
                                             fabric_workers=2,
                                             fabric_min_cells=1))
        try:
            with ServeClient(handle.host, handle.port, timeout=30) as c:
                doc = c.simulate(workload="microbench", manager="ideal",
                                 cores=1, scale=0.05)
                assert doc["makespan_us"] > 0
                stats = c.stats()
                assert stats["fabric_failures"] >= 1
                assert stats["errors"] == 0
                # Distinct cells, so every block is fresh work; after
                # failure_threshold fabric losses the breaker opens and
                # later blocks bypass the fabric entirely.
                for seed in range(4):
                    c.simulate(workload="microbench", manager="nexus#2",
                               cores=1, scale=0.05, seed=seed)
                stats = c.stats()
                assert stats["breaker"]["state"] == "open"
                assert stats["fabric_fallbacks"] >= 1
                assert c.healthz()["status"] == "ok"
        finally:
            handle.stop()

    def test_mid_stream_failure_truncates_the_chunked_body(self, monkeypatch):
        """Once rows are flowing an error cannot become a 5xx; the server
        must drop the terminal chunk so the client sees an incomplete
        read instead of a hang."""
        calls = []

        def fail_on_third(block):
            calls.append(1)
            if len(calls) >= 3:
                raise RuntimeError("engine exploded mid-sweep")
            return _real_execute_block(block)

        monkeypatch.setattr(batcher_module, "execute_block", fail_on_third)
        handle = start_in_thread(ServeConfig(batch_lanes=1, batch_window=0.0,
                                             executor_threads=1))
        try:
            with ServeClient(handle.host, handle.port, timeout=30) as c:
                with pytest.raises((http.client.IncompleteRead,
                                    http.client.HTTPException,
                                    ConnectionError)):
                    list(c.sweep_rows(workloads=["microbench"],
                                      managers=["ideal", "nexus#2"],
                                      core_counts=[1, 2], scale=0.05))
            with ServeClient(handle.host, handle.port, timeout=30) as c:
                assert c.healthz()["status"] == "ok"
        finally:
            handle.stop()


class TestChunkedUpload:
    def test_chunked_jsonl_trace_upload_roundtrip(self, tmp_path):
        """Upload a trace as a chunked-transfer JSONL stream over a raw
        socket; its content-addressed id must match the same trace
        uploaded as a plain document."""
        from repro.trace.serialization import write_trace_stream
        from repro.workloads.registry import get_workload

        trace = get_workload("microbench", scale=0.05)
        path = write_trace_stream(trace, tmp_path / "trace.jsonl",
                                  chunk_size=2)
        text = path.read_text(encoding="utf-8").encode("utf-8")

        handle = start_in_thread(ServeConfig())
        try:
            sock = socket.create_connection((handle.host, handle.port),
                                            timeout=30)
            sock.sendall(b"POST /v1/traces HTTP/1.1\r\nHost: test\r\n"
                         b"Content-Type: application/jsonl\r\n"
                         b"Transfer-Encoding: chunked\r\n\r\n")
            # Ship the body in awkward 97-byte chunks.
            for start in range(0, len(text), 97):
                piece = text[start:start + 97]
                sock.sendall(b"%x\r\n" % len(piece) + piece + b"\r\n")
            sock.sendall(b"0\r\n\r\n")
            response = http.client.HTTPResponse(sock, method="POST")
            response.begin()
            assert response.status == 200
            uploaded = json.loads(response.read())
            sock.close()

            with ServeClient(handle.host, handle.port, timeout=30) as c:
                assert uploaded["trace_id"] == c.upload_trace(trace)
                assert uploaded["num_events"] > 0
        finally:
            handle.stop()
