"""Set-associative address table.

The hardware keeps the per-address state of
:class:`repro.taskgraph.address_state.AddressState` in a cache-like,
set-associative memory ("It uses the same set-associative data structure
to maintain a Kick-Off List for each incoming memory address",
Section IV-C).  Functionally the table behaves like a dictionary keyed by
address; structurally it has a bounded number of sets and ways, and an
insertion that maps to a full set stalls the task graph "until one task
finishes, which its parameters share the same line" (Section IV-D).

This model keeps the functional behaviour exact (the dictionary) while
accounting for the structural hazards: entries occupy ways in their set
while any unfinished task references them, long kick-off lists spill into
chained *dummy entries* that occupy additional ways (the mechanism the
Gaussian-elimination experiment validates), and set-conflict events are
counted so the timing layer can charge stall cycles for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.common.constants import (
    DEFAULT_KICKOFF_CAPACITY,
    DEFAULT_TABLE_SETS,
    DEFAULT_TABLE_WAYS,
)
from repro.common.errors import ConfigurationError
from repro.common.validation import check_positive, check_power_of_two
from repro.taskgraph.address_state import AccessMode, AddressState


def _set_index(address: int, num_sets: int) -> int:
    """Set (line) index an address maps to.

    Addresses are cache-line aligned in the generated traces; skip the
    low 6 offset bits so consecutive lines land in consecutive sets.
    Module-level so the hot access paths and :meth:`AddressTable.
    set_index` share one definition.
    """
    return (address >> 6) & (num_sets - 1)


def _ways_for(kickoff_length: int, kickoff_capacity: int) -> int:
    """Ways an entry with ``kickoff_length`` waiters occupies.

    One way for the entry itself plus one chained dummy entry per
    overflowing chunk of the kick-off list (the paper's dummy-entry
    mechanism).  Inlined arithmetic on the hot path — called four times
    per address access.
    """
    if kickoff_length <= kickoff_capacity:
        return 1
    overflow = kickoff_length - kickoff_capacity
    return 1 + -(-overflow // kickoff_capacity)


@dataclass
class TableStats:
    """Cumulative statistics of an :class:`AddressTable`."""

    lookups: int = 0
    insertions: int = 0
    evictions: int = 0
    set_conflicts: int = 0
    dummy_entries_peak: int = 0
    max_live_entries: int = 0


class AddressTable:
    """Set-associative container of per-address dependency state.

    Parameters
    ----------
    num_sets:
        Number of sets (lines); must be a power of two so the set index is
        a simple bit slice of the address, as in the hardware.
    ways:
        Associativity of each set.
    kickoff_capacity:
        Number of waiting-task slots one entry can hold before the kick-off
        list spills into a chained dummy entry occupying another way.
    name:
        Identifier used in statistics (e.g. ``"TG3"``).
    """

    def __init__(
        self,
        num_sets: int = DEFAULT_TABLE_SETS,
        ways: int = DEFAULT_TABLE_WAYS,
        kickoff_capacity: int = DEFAULT_KICKOFF_CAPACITY,
        name: str = "task-graph",
    ) -> None:
        check_power_of_two("num_sets", num_sets)
        check_positive("ways", ways)
        check_positive("kickoff_capacity", kickoff_capacity)
        self.num_sets = num_sets
        self.ways = ways
        self.kickoff_capacity = kickoff_capacity
        self.name = name
        self._entries: Dict[int, AddressState] = {}
        self._set_occupancy: Dict[int, int] = {}
        self.stats = TableStats()

    # -- geometry -----------------------------------------------------------
    def set_index(self, address: int) -> int:
        """Set (line) index the address maps to."""
        return _set_index(address, self.num_sets)

    @property
    def capacity_entries(self) -> int:
        """Total number of entries (ways) in the table."""
        return self.num_sets * self.ways

    @property
    def live_entries(self) -> int:
        """Number of addresses currently tracked."""
        return len(self._entries)

    def ways_used(self, address: int) -> int:
        """Number of ways the entry for ``address`` occupies (with dummies)."""
        entry = self._entries.get(address)
        if entry is None:
            return 0
        return _ways_for(len(entry.waiters), self.kickoff_capacity)

    def set_occupancy(self, set_idx: int) -> int:
        """Number of ways currently used in set ``set_idx``."""
        return self._set_occupancy.get(set_idx, 0)

    # -- functional interface -------------------------------------------------
    def lookup(self, address: int) -> Optional[AddressState]:
        """Return the entry for ``address`` if it is currently tracked."""
        self.stats.lookups += 1
        return self._entries.get(address)

    def insert_access(self, address: int, task_id: int, mode: AccessMode) -> tuple[bool, bool]:
        """Record that ``task_id`` accesses ``address``.

        Returns ``(must_wait, set_conflict)`` where ``must_wait`` says the
        task was appended to the address' kick-off list and
        ``set_conflict`` says the insertion hit a structurally full set
        (the timing layer charges a stall for it).
        """
        stats = self.stats
        stats.lookups += 1
        entries = self._entries
        entry = entries.get(address)
        set_idx = _set_index(address, self.num_sets)
        set_conflict = False
        if entry is None:
            occupancy = self._set_occupancy.get(set_idx, 0)
            if occupancy >= self.ways:
                # Structurally the hardware would stall until a way frees
                # up; functionally we still track the address (the paper's
                # dummy-entry mechanism guarantees forward progress) but
                # report the conflict so timing can charge for it.
                set_conflict = True
                stats.set_conflicts += 1
            entry = AddressState(address)
            entries[address] = entry
            self._set_occupancy[set_idx] = occupancy + 1
            stats.insertions += 1
            if len(entries) > stats.max_live_entries:
                stats.max_live_entries = len(entries)
        capacity = self.kickoff_capacity
        before_ways = _ways_for(len(entry.waiters), capacity)
        must_wait = entry.insert(task_id, mode)
        after_ways = _ways_for(len(entry.waiters), capacity)
        if after_ways != before_ways:
            self._set_occupancy[set_idx] = self._set_occupancy.get(set_idx, 0) + (after_ways - before_ways)
            stats.dummy_entries_peak = max(stats.dummy_entries_peak, after_ways - 1)
        return must_wait, set_conflict

    def finish_access(self, address: int, task_id: int) -> list:
        """Record that ``task_id`` (an active accessor of ``address``) finished.

        Returns the list of :class:`~repro.taskgraph.address_state.Waiter`
        objects that were kicked off.  When the address becomes idle its
        entry is evicted, freeing its way(s).
        """
        entry = self._entries.get(address)
        if entry is None:
            from repro.common.errors import SimulationError

            raise SimulationError(f"{self.name}: finish on untracked address {address:#x}")
        set_idx = _set_index(address, self.num_sets)
        capacity = self.kickoff_capacity
        before_ways = _ways_for(len(entry.waiters), capacity)
        released = entry.finish(task_id)
        after_ways = _ways_for(len(entry.waiters), capacity)
        if entry.active_writer is None and not entry.active_readers and not entry.waiters:
            del self._entries[address]
            self._set_occupancy[set_idx] = max(0, self._set_occupancy.get(set_idx, 0) - before_ways)
            self.stats.evictions += 1
        elif after_ways != before_ways:
            self._set_occupancy[set_idx] = max(0, self._set_occupancy.get(set_idx, 0) + (after_ways - before_ways))
        return released

    def iter_entries(self) -> Iterator[AddressState]:
        """Iterate over the currently tracked address entries."""
        return iter(self._entries.values())

    def reset(self) -> None:
        """Drop all entries and statistics."""
        self._entries.clear()
        self._set_occupancy.clear()
        self.stats = TableStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AddressTable({self.name!r}, sets={self.num_sets}, ways={self.ways}, "
            f"live={self.live_entries})"
        )
