"""Unified resilience policies for the fleet.

One small toolbox shared by every layer that talks to something that can
fail — the serving client, the socket workers, the batcher's fabric
backend and the sweep scheduler:

* :class:`~repro.resilience.retry.RetryPolicy` — exponential backoff
  with **deterministic** jitter and a total deadline budget, plus the
  :func:`~repro.resilience.retry.call_with_retry` driver that honours
  server-suggested delays (``Retry-After``);
* :class:`~repro.resilience.circuit.CircuitBreaker` — consecutive-
  failure trip to a fallback path with a half-open probe after cooldown;
* :class:`~repro.resilience.journal.FrontierJournal` — the append-only
  completions log that lets a SIGKILLed sweep scheduler resume from
  where it died instead of from zero;
* :class:`~repro.resilience.quarantine.WorkerQuarantine` — tells a
  *poisoned cell* (same cell kills diverse workers → fail fast, already
  budgeted by the frontier's ``max_attempts``) from a *bad worker*
  (diverse cells fail on one worker → quarantine it).

Semantics are documented in ``docs/resilience.md``.
"""

from repro.resilience.circuit import CircuitBreaker
from repro.resilience.journal import FrontierJournal
from repro.resilience.quarantine import WorkerQuarantine
from repro.resilience.retry import RetryBudgetExhausted, RetryPolicy, call_with_retry

__all__ = [
    "CircuitBreaker",
    "FrontierJournal",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "WorkerQuarantine",
    "call_with_retry",
]
