"""Analytical model of the Nanos software runtime.

Nanos (the official OmpSs runtime) resolves dependencies in software.
The published analyses the paper builds on ([11], [17]) identify three
cost components, which this model reproduces:

1. **Task creation** on the master thread: allocating the task structure,
   copying the parameter list and running the dependency analysis.  This
   is inherently serial — the master cannot submit faster than it creates
   — and is the reason Nanos *loses* performance on h264dec-1x1, whose
   4.6 µs tasks are cheaper than their own creation.
2. **Dependency bookkeeping under a runtime lock**: registering the
   task's accesses in the software task graph, and, when a task finishes,
   releasing its successors.  Worker threads contend on this lock, so the
   model funnels both costs through a single serial resource.
3. **Per-task scheduling overhead on the worker** that picks the task up
   (queue operations, switching to the task's context).

The default constants are calibrated so that the 32-core behaviour of the
five Starbench workloads lands near the paper's Table IV Nanos column;
they can be overridden through :class:`NanosConfig` for sensitivity
studies (see ``benchmarks/bench_ablation_nanos.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.common.errors import ConfigurationError
from repro.common.validation import check_non_negative
from repro.managers.base import (
    FinishOutcome,
    LaneKernelSpec,
    ReadyNotification,
    SubmitOutcome,
    TaskManagerModel,
)
from repro.sim.resource import SerialResource
from repro.taskgraph.tracker import DependencyTracker
from repro.trace.task import TaskDescriptor


@dataclass(frozen=True)
class NanosConfig:
    """Cost constants (µs) of the Nanos software-runtime model."""

    #: Master-thread cost of creating one task (allocation + marshalling).
    task_creation_us: float = 2.6
    #: Master-thread cost per parameter for the dependency analysis.
    creation_per_param_us: float = 0.9
    #: Cost of registering the task in the graph, under the runtime lock.
    insert_lock_us: float = 0.35
    #: Per-parameter part of the locked insertion.
    insert_lock_per_param_us: float = 0.25
    #: Locked cost of retiring a finished task.
    finish_lock_us: float = 1.0
    #: Locked cost per successor task woken up by a completion.
    wakeup_per_task_us: float = 0.45
    #: Worker-side scheduling overhead added to every task execution.
    worker_dispatch_us: float = 1.2

    def __post_init__(self) -> None:
        for name in (
            "task_creation_us",
            "creation_per_param_us",
            "insert_lock_us",
            "insert_lock_per_param_us",
            "finish_lock_us",
            "wakeup_per_task_us",
            "worker_dispatch_us",
        ):
            check_non_negative(name, getattr(self, name))


class NanosManager(TaskManagerModel):
    """Software dependency resolution with a master bottleneck and a lock."""

    name = "Nanos"
    supports_taskwait_on = True

    def __init__(self, config: NanosConfig | None = None) -> None:
        self.config = config or NanosConfig()
        self.worker_overhead_us = self.config.worker_dispatch_us
        self._tracker = DependencyTracker(num_tables=1, distribution_key=("central",))
        self._lock = SerialResource("nanos-runtime-lock")

    def reset(self) -> None:
        self._tracker.reset()
        self._lock.reset()

    def prepare_program(self, program) -> None:
        self._tracker.bind_program(program)

    # -- TaskManagerModel ------------------------------------------------------
    def submit(self, task: TaskDescriptor, time_us: float) -> SubmitOutcome:
        cfg = self.config
        result = self._tracker.insert_task(task)
        num_params = max(1, result.num_accesses)
        # Master-side creation work (serial by construction: the machine
        # only advances the master once we return accept_time).
        creation_done = time_us + cfg.task_creation_us + cfg.creation_per_param_us * num_params
        # Graph insertion happens under the runtime lock and may contend
        # with workers retiring tasks.
        lock_cost = cfg.insert_lock_us + cfg.insert_lock_per_param_us * num_params
        _, insert_done = self._lock.reserve(creation_done, lock_cost)
        ready = ()
        if result.ready:
            ready = (ReadyNotification(task.task_id, insert_done),)
        return SubmitOutcome(accept_time_us=insert_done, ready=ready)

    def finish(self, task_id: int, time_us: float) -> FinishOutcome:
        cfg = self.config
        result = self._tracker.finish_task(task_id)
        lock_cost = cfg.finish_lock_us + cfg.wakeup_per_task_us * result.num_kickoffs
        _, finish_done = self._lock.reserve(time_us, lock_cost)
        ready = tuple(ReadyNotification(t, finish_done) for t in result.newly_ready)
        return FinishOutcome(ready=ready, notify_done_us=finish_done)

    def lane_kernel(self) -> LaneKernelSpec:
        """Nanos is constant-foldable: per-task costs are affine in the
        parameter count and the runtime lock is one serial resource whose
        reservations the lane kernel replays arithmetically."""
        cfg = self.config
        return LaneKernelSpec(
            kind="nanos",
            worker_overhead_us=self.worker_overhead_us,
            creation_base_us=cfg.task_creation_us,
            creation_per_param_us=cfg.creation_per_param_us,
            insert_lock_us=cfg.insert_lock_us,
            insert_lock_per_param_us=cfg.insert_lock_per_param_us,
            finish_lock_us=cfg.finish_lock_us,
            wakeup_per_task_us=cfg.wakeup_per_task_us,
        )

    # -- reporting ---------------------------------------------------------------
    def describe(self) -> Mapping[str, object]:
        return {
            "name": self.name,
            "supports_taskwait_on": self.supports_taskwait_on,
            "config": self.config.__dict__,
        }

    def statistics(self) -> Mapping[str, object]:
        return {
            "tasks_inserted": self._tracker.total_inserted,
            "tasks_finished": self._tracker.total_finished,
            "lock_busy_us": self._lock.stats.busy_time,
            "lock_mean_wait_us": self._lock.stats.mean_wait,
        }
