"""Shared fixtures for the Nexus# reproduction test suite.

Also registers the hypothesis profiles: ``ci`` (derandomized fixed seed,
bounded examples, no deadline — what the CI workflow selects via
``HYPOTHESIS_PROFILE=ci`` so fuzz tests are reproducible across runs)
and ``thorough`` (for local deep fuzzing).  The default profile stays
untouched for interactive development.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

from repro.managers.ideal import IdealManager
from repro.managers.nanos import NanosManager
from repro.managers.software import VandierendonckManager
from repro.nexus.nexuspp import NexusPlusPlusManager
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.trace.trace import TraceBuilder
from repro.workloads.synthetic import (
    generate_chain,
    generate_fork_join,
    generate_independent,
    generate_random_dag,
)


def make_all_managers():
    """Fresh instances of every manager model (used in parametrised tests)."""
    return [
        IdealManager(),
        NanosManager(),
        VandierendonckManager(),
        NexusPlusPlusManager(),
        NexusSharpManager(NexusSharpConfig(num_task_graphs=1, frequency_mhz=100.0)),
        NexusSharpManager(NexusSharpConfig(num_task_graphs=4, frequency_mhz=100.0)),
        NexusSharpManager(NexusSharpConfig(num_task_graphs=6)),
    ]


MANAGER_IDS = ["ideal", "nanos", "sw400", "nexus++", "nexus#1", "nexus#4", "nexus#6"]


@pytest.fixture
def free_port():
    """An OS-assigned free TCP port on loopback.

    Shared by every test that needs to bind a listening socket at a
    known port (serving, fabric schedulers with explicit binds), so
    parallel test runs (``pytest -n``) never collide on a hard-coded
    port: each call asks the kernel for a fresh ephemeral port.
    """
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture(params=list(range(len(MANAGER_IDS))), ids=MANAGER_IDS)
def any_manager(request):
    """Parametrised fixture yielding one fresh manager of each kind."""
    return make_all_managers()[request.param]


@pytest.fixture
def tiny_diamond_trace():
    """A 4-task diamond: A -> (B, C) -> D, via data dependencies."""
    builder = TraceBuilder("diamond")
    a = 0x1000
    b = 0x2000
    c = 0x3000
    d = 0x4000
    builder.add_task("A", duration_us=10.0, outputs=[a])
    builder.add_task("B", duration_us=10.0, inputs=[a], outputs=[b])
    builder.add_task("C", duration_us=10.0, inputs=[a], outputs=[c])
    builder.add_task("D", duration_us=10.0, inputs=[b, c], outputs=[d])
    builder.add_taskwait()
    return builder.build()


@pytest.fixture
def independent_trace():
    """Twenty independent 10 µs tasks."""
    return generate_independent(20, duration_us=10.0, seed=7)


@pytest.fixture
def chain_trace():
    """A 15-task serial chain."""
    return generate_chain(15, duration_us=5.0, seed=7)


@pytest.fixture
def fork_join_trace():
    """Three fork-join phases of width 8."""
    return generate_fork_join(3, 8, duration_us=5.0, seed=7)


@pytest.fixture
def random_dag_trace():
    """A moderately sized random DAG used by integration tests."""
    return generate_random_dag(120, max_predecessors=3, seed=11)
