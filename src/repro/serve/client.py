"""Synchronous client library for the serving layer.

Thin stdlib-``http.client`` wrappers used by the test harness, the load
generator and the ``python -m repro.serve`` CLI subcommands.  One
:class:`ServeClient` holds one keep-alive connection (create one client
per thread); a saturated server surfaces as :class:`ServeSaturated`
carrying the ``Retry-After`` the admission controller measured.

    >>> client = ServeClient("127.0.0.1", 8080)          # doctest: +SKIP
    >>> client.simulate(workload="sparselu", manager="nexus#6",
    ...                 cores=4, scale=0.1)["makespan_us"]  # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Optional

from repro.trace.serialization import trace_to_json
from repro.trace.trace import Trace

__all__ = ["ServeClient", "ServeError", "ServeSaturated"]


class ServeError(Exception):
    """A non-2xx response from the serving layer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeSaturated(ServeError):
    """HTTP 429: the bounded queue is full; honour ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(429, message)
        self.retry_after_s = retry_after_s


class ServeClient:
    """One keep-alive connection to a serving deployment."""

    def __init__(self, host: str, port: int, *, timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ----------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 content_type: str = "application/json") -> http.client.HTTPResponse:
        conn = self._connection()
        headers = {"Content-Type": content_type} if body is not None else {}
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        except (http.client.HTTPException, ConnectionError, OSError):
            # A dropped keep-alive connection: reconnect once.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        return response

    def _json(self, method: str, path: str,
              document: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        body = None if document is None else json.dumps(document).encode("utf-8")
        response = self._request(method, path, body)
        payload = response.read()
        return self._decode(response, payload)

    @staticmethod
    def _decode(response: http.client.HTTPResponse, payload: bytes) -> Dict[str, Any]:
        try:
            document = json.loads(payload.decode("utf-8")) if payload else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            document = {"error": payload[:200].decode("latin-1")}
        if response.status == 429:
            retry = document.get("retry_after_s",
                                 response.headers.get("Retry-After", 1))
            raise ServeSaturated(str(document.get("error", "saturated")),
                                 float(retry))
        if response.status >= 400:
            raise ServeError(response.status,
                             str(document.get("error", "request failed")))
        return document

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/stats")

    def workloads(self) -> List[str]:
        return list(self._json("GET", "/v1/workloads")["workloads"])

    def simulate(self, **fields: Any) -> Dict[str, Any]:
        """Submit one grid cell; returns the response document
        (``cache_key``, ``cached``, ``makespan_us``, ``result``)."""
        return self._json("POST", "/v1/simulate", fields)

    def upload_trace(self, trace: Trace) -> str:
        """Upload a materialised trace (document format); returns its id."""
        body = json.dumps(trace_to_json(trace)).encode("utf-8")
        response = self._request("POST", "/v1/traces", body)
        return str(self._decode(response, response.read())["trace_id"])

    def upload_trace_text(self, text: str) -> str:
        """Upload a chunked-JSONL trace stream carried as text."""
        response = self._request("POST", "/v1/traces", text.encode("utf-8"),
                                 content_type="application/jsonl")
        return str(self._decode(response, response.read())["trace_id"])

    def sweep_report(self, **fields: Any) -> Dict[str, Any]:
        """Run a sweep and return its report document."""
        fields["format"] = "report"
        return self._json("POST", "/v1/sweep", fields)

    def sweep_rows(self, **fields: Any) -> Iterator[Dict[str, Any]]:
        """Run a sweep, yielding result rows as the server streams them.

        ``http.client`` decodes the chunked transfer transparently; a
        server-side truncation (missing terminal chunk) surfaces as
        :class:`http.client.IncompleteRead`.
        """
        fields["format"] = "jsonl"
        body = json.dumps(fields).encode("utf-8")
        response = self._request("POST", "/v1/sweep", body)
        if response.status != 200:
            self._decode(response, response.read())  # raises
        buffer = b""
        while True:
            block = response.read(65536)
            if not block:
                break
            buffer += block
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    yield json.loads(line)
        if buffer.strip():
            yield json.loads(buffer)
        # The server closes streamed connections (Connection: close).
        self.close()

    def sweep_raw(self, **fields: Any) -> bytes:
        """Run a sweep and return the raw streamed JSONL body.

        This is the byte-identity surface: the returned bytes must equal
        the file a :class:`~repro.experiments.runner.SweepRunner` writes
        for the same grid (trailing newlines included).
        """
        fields["format"] = "jsonl"
        body = json.dumps(fields).encode("utf-8")
        response = self._request("POST", "/v1/sweep", body)
        if response.status != 200:
            self._decode(response, response.read())  # raises
        payload = response.read()
        self.close()  # the server closes streamed connections
        return payload

    def sweep_lines(self, **fields: Any) -> List[str]:
        """Run a sweep and return its JSONL lines (no trailing newline),
        comparable to :meth:`SweepOutcome.jsonl_lines
        <repro.experiments.runner.SweepOutcome.jsonl_lines>`."""
        raw = self.sweep_raw(**fields).decode("utf-8")
        return [line for line in raw.split("\n") if line]
