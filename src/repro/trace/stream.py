"""The streaming trace pipeline: tasks as a lazy event stream.

The paper argues that the distributed task manager keeps dependency-
resolution overhead flat as task counts grow — but demonstrating that at
production scale means the *trace layer* must not hold a million task
descriptors in memory before the first one is submitted.  This module
defines the streaming counterpart of :class:`~repro.trace.trace.Trace`:

* :class:`TaskStream` — the protocol every trace source satisfies: a
  ``name``, free-form ``metadata`` and an ``iter_events()`` method that
  yields :class:`~repro.trace.events.TraceEvent` objects in submission
  order.  A materialised :class:`~repro.trace.trace.Trace` satisfies it
  too, so every streaming consumer accepts both.
* :class:`TraceStream` — a replayable stream built from an event-iterator
  factory; each ``iter_events()`` call starts a fresh, deterministic
  replay (generators re-seed their RNGs per replay).
* :class:`EventEmitter` — the streaming analogue of
  :class:`~repro.trace.trace.TraceBuilder`: assigns sequential task ids
  and *returns* events for the caller to ``yield`` instead of
  accumulating them.
* :func:`materialize` — collapse any stream into an immutable
  :class:`~repro.trace.trace.Trace` (the compatibility bridge: the
  classic ``generate_*`` workload APIs are exactly this, applied to
  their ``stream_*`` counterparts).
* :func:`limit_stream` / :func:`truncate_trace` — bound a stream to its
  first ``max_tasks`` submissions (the ``max_tasks`` sweep axis).

Memory-boundedness contract: iterating a :class:`TraceStream` produced
by a ``stream_*`` workload generator allocates per-event garbage plus
O(live addresses) state only — never O(total tasks) — and
:meth:`Machine.run_stream <repro.system.machine.Machine.run_stream>`
preserves that bound on the consumer side (see ``docs/streaming.md``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Protocol, Sequence, runtime_checkable

from repro.common.errors import TraceError
from repro.trace.events import TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent, TraceEvent
from repro.trace.task import Parameter, TaskDescriptor, make_params
from repro.trace.trace import Trace


@runtime_checkable
class TaskStream(Protocol):
    """Anything that can replay a named trace as a lazy event sequence.

    Both :class:`TraceStream` (lazy) and :class:`~repro.trace.trace.Trace`
    (materialised) satisfy this protocol; streaming consumers such as
    :meth:`Machine.run_stream <repro.system.machine.Machine.run_stream>`
    and :func:`repro.trace.serialization.write_trace_stream` accept
    either.
    """

    @property
    def name(self) -> str:
        """Workload name, e.g. ``"h264dec-2x2-10f"``."""
        ...

    @property
    def metadata(self) -> Mapping[str, object]:
        """Free-form generator parameters (self-describing experiments)."""
        ...

    def iter_events(self) -> Iterator[TraceEvent]:
        """Yield the trace events in master-thread submission order."""
        ...


class TraceStream:
    """A replayable, lazily evaluated task stream.

    Parameters
    ----------
    name:
        Workload name (must be non-empty, like a trace's).
    events_factory:
        Zero-argument callable returning a *fresh* event iterator.  Every
        :meth:`iter_events` call invokes it again, so a stream can be
        replayed (streamed to disk, then simulated, then materialised)
        as long as the factory is deterministic.
    metadata:
        Free-form generator parameters recorded alongside the events.

    Example
    -------
    >>> from repro.trace.stream import EventEmitter, TraceStream, materialize
    >>> def events():
    ...     emit = EventEmitter()
    ...     for i in range(3):
    ...         yield emit.task("work", duration_us=5.0, outputs=[0x1000 + 64 * i])
    ...     yield emit.taskwait()
    >>> stream = TraceStream("tiny", events, metadata={"num_tasks": 3})
    >>> trace = materialize(stream)
    >>> trace.num_tasks, trace.num_barriers
    (3, 1)
    """

    __slots__ = ("name", "metadata", "_events_factory")

    def __init__(
        self,
        name: str,
        events_factory: Callable[[], Iterator[TraceEvent]],
        metadata: Optional[Mapping[str, object]] = None,
    ) -> None:
        if not name:
            raise TraceError("stream name must be non-empty")
        self.name = name
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._events_factory = events_factory

    def iter_events(self) -> Iterator[TraceEvent]:
        """Start a fresh replay of the stream's events."""
        return iter(self._events_factory())

    def __iter__(self) -> Iterator[TraceEvent]:
        return self.iter_events()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TraceStream {self.name!r}>"


class EventEmitter:
    """Sequential-id event factory for streaming workload generators.

    The streaming analogue of :class:`~repro.trace.trace.TraceBuilder`:
    the ``task`` / ``taskwait`` / ``taskwait_on`` methods construct and
    *return* events (for the generator to ``yield``) instead of
    appending them to an in-memory list.  Task ids are assigned
    sequentially in submission order — the same invariant TraceBuilder
    guarantees — so a materialised stream is byte-identical to the trace
    the equivalent builder would have produced.

    >>> emit = EventEmitter()
    >>> event = emit.task("render", duration_us=2.0, outputs=[0x2000])
    >>> event.task.task_id, event.task.function
    (0, 'render')
    >>> emit.task("render", duration_us=2.0, outputs=[0x2040]).task.task_id
    1
    >>> emit.num_tasks
    2
    """

    __slots__ = ("_next_task_id",)

    def __init__(self) -> None:
        self._next_task_id = 0

    @property
    def num_tasks(self) -> int:
        """Number of task-submit events emitted so far."""
        return self._next_task_id

    def task(
        self,
        function: str,
        duration_us: float,
        *,
        inputs: Sequence[int] = (),
        outputs: Sequence[int] = (),
        inouts: Sequence[int] = (),
        params: Optional[Sequence[Parameter]] = None,
        creation_overhead_us: float = 0.0,
    ) -> TaskSubmitEvent:
        """Create the next task-submission event (mirrors ``add_task``)."""
        if params is not None and (inputs or outputs or inouts):
            raise TraceError("pass either params or inputs/outputs/inouts, not both")
        if params is None:
            params = make_params(inputs=inputs, outputs=outputs, inouts=inouts)
        task = TaskDescriptor(
            task_id=self._next_task_id,
            function=function,
            params=tuple(params),
            duration_us=duration_us,
            creation_overhead_us=creation_overhead_us,
        )
        self._next_task_id += 1
        return TaskSubmitEvent(task)

    def taskwait(self) -> TaskwaitEvent:
        """Create a full ``taskwait`` barrier event."""
        return TaskwaitEvent()

    def taskwait_on(self, address: int) -> TaskwaitOnEvent:
        """Create a ``taskwait on(address)`` barrier event."""
        return TaskwaitOnEvent(address=address)


def as_stream(source: "TaskStream | Trace | Iterable[TraceEvent]", *,
              name: str = "anonymous-stream") -> TaskStream:
    """Normalise ``source`` into a :class:`TaskStream`.

    Traces and streams pass through unchanged (a
    :class:`~repro.trace.trace.Trace` already satisfies the protocol);
    a bare event iterable is wrapped under ``name``.  Note that a bare
    *iterator* can only be consumed once — prefer passing a replayable
    stream or trace wherever a consumer may iterate twice.
    """
    if hasattr(source, "iter_events"):
        return source  # Trace or TraceStream (or any other protocol impl)
    events = source

    def factory() -> Iterator[TraceEvent]:
        return iter(events)

    return TraceStream(name, factory)


def materialize(stream: "TaskStream | Iterable[TraceEvent]") -> Trace:
    """Collapse a stream into an immutable :class:`~repro.trace.trace.Trace`.

    This is the bridge back to the classic API: every ``generate_*``
    workload function is ``materialize(stream_*(...))``.  Duplicate task
    ids are rejected by the Trace constructor, exactly as with
    :meth:`TraceBuilder.build <repro.trace.trace.TraceBuilder.build>`.
    """
    stream = as_stream(stream)
    return Trace(
        name=stream.name,
        events=tuple(stream.iter_events()),
        metadata=dict(stream.metadata),
    )


def limit_stream(stream: TaskStream, max_tasks: Optional[int]) -> TaskStream:
    """Bound ``stream`` to its first ``max_tasks`` task submissions.

    ``None`` returns the stream unchanged.  When the stream is actually
    cut short, a final full ``taskwait`` is appended (unless the last
    surviving event already is one), so the truncated program still joins
    all outstanding work — the truncated trace is a valid, runnable
    prefix of the original.  The limit is recorded in the metadata under
    ``"max_tasks"``, keeping truncated workloads self-describing (and
    distinct from their parents in content-addressed caches).

    >>> from repro.workloads.synthetic import stream_independent
    >>> limited = limit_stream(stream_independent(10, seed=1), 4)
    >>> materialize(limited).num_tasks
    4
    """
    if max_tasks is None:
        return stream
    if max_tasks <= 0:
        raise TraceError(f"max_tasks must be positive, got {max_tasks}")
    stream = as_stream(stream)

    def limited() -> Iterator[TraceEvent]:
        remaining = max_tasks
        last_was_taskwait = False
        truncated = False
        for event in stream.iter_events():
            if isinstance(event, TaskSubmitEvent):
                if remaining == 0:
                    truncated = True
                    break
                remaining -= 1
            yield event
            last_was_taskwait = isinstance(event, TaskwaitEvent)
        if truncated and not last_was_taskwait:
            yield TaskwaitEvent()

    metadata = dict(stream.metadata)
    metadata["max_tasks"] = max_tasks
    return TraceStream(stream.name, limited, metadata)


def truncate_trace(trace: Trace, max_tasks: Optional[int]) -> Trace:
    """Materialised counterpart of :func:`limit_stream`."""
    if max_tasks is None:
        return trace
    return materialize(limit_stream(trace, max_tasks))
