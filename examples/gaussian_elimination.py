#!/usr/bin/env python3
"""Gaussian elimination with partial pivoting on Nexus++ and Nexus#.

Reproduces the Figure 9 experiment at laptop scale: the dependency
pattern of Figure 6 (every elimination step's update tasks read the same
pivot row) is a *worst case* for the Nexus# distribution function — a
whole wave of parameters hashes to the same task graph — so adding task
graphs does not help, while the dynamically growing kick-off lists
("dummy entries") are exercised heavily.

Run with::

    python examples/gaussian_elimination.py [matrix_size ...]
"""

import sys

from repro import IdealManager, NexusPlusPlusConfig, NexusPlusPlusManager, NexusSharpConfig, NexusSharpManager, simulate
from repro.nexus.timing import NexusPlusPlusTiming, NexusSharpTiming
from repro.workloads import generate_gaussian_elimination
from repro.workloads.gaussian import gaussian_avg_flops, gaussian_task_count


def managers_at_100mhz():
    """The Figure 9 manager line-up (tightly-coupled timing, 100 MHz)."""
    yield "Ideal", IdealManager()
    yield "Nexus++", NexusPlusPlusManager(
        NexusPlusPlusConfig(frequency_mhz=100.0, timing=NexusPlusPlusTiming.tightly_coupled())
    )
    for num_tg in (1, 2):
        yield f"Nexus# {num_tg}TG", NexusSharpManager(
            NexusSharpConfig(num_task_graphs=num_tg, frequency_mhz=100.0,
                             timing=NexusSharpTiming.tightly_coupled())
        )


def main() -> None:
    matrix_sizes = [int(arg) for arg in sys.argv[1:]] or [150, 250]
    core_counts = (1, 8, 64)
    for n in matrix_sizes:
        print(f"matrix {n}x{n}: {gaussian_task_count(n)} tasks, "
              f"avg {gaussian_avg_flops(n):.0f} FLOPs "
              f"({gaussian_avg_flops(n) / 2000.0:.3f} us at 2 GFLOPS per core)")
        trace = generate_gaussian_elimination(matrix_size=n)
        for name, manager in managers_at_100mhz():
            speedups = []
            for cores in core_counts:
                manager.reset()
                result = simulate(trace, manager, cores)
                speedups.append(f"{result.speedup_vs_serial:6.2f}x @{cores:3d} cores")
            print(f"  {name:12s} " + "   ".join(speedups))
        print()


if __name__ == "__main__":
    main()
