#!/usr/bin/env python3
"""Compare every task-manager model across the Starbench-style workloads.

A miniature version of Figure 8 / Table IV: for each workload (generated
at a reduced scale so the script finishes in about a minute) the speedup
of Nanos, Nexus++ and Nexus# (6 task graphs) is swept over core counts
and printed next to the zero-overhead ideal curve.

Run with::

    python examples/compare_managers.py [--scale 0.03] [--cores 1 8 64]

The machine's new experiment axes are exposed too: sweep scheduler
policies and/or core topologies next to the managers, e.g.::

    python examples/compare_managers.py --schedulers fifo sjf locality
    python examples/compare_managers.py --topologies homogeneous biglittle:0.5
"""

import argparse

from repro.analysis import paper_manager_set, run_scalability
from repro.common.constants import NANOS_MAX_CORES
from repro.trace import compute_statistics
from repro.workloads import get_workload
from repro.workloads.registry import paper_table2_workloads


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.03,
                        help="workload scale factor relative to the paper's traces")
    parser.add_argument("--cores", type=int, nargs="+", default=[1, 8, 32, 128],
                        help="core counts to sweep")
    parser.add_argument("--workloads", nargs="+", default=None,
                        help="subset of workloads (default: the Table II list)")
    parser.add_argument("--schedulers", nargs="+", default=["fifo"],
                        help="dispatch policies to compare (fifo, sjf, ljf, locality)")
    parser.add_argument("--topologies", nargs="+", default=["homogeneous"],
                        help="core topologies to compare (homogeneous, biglittle:0.5, ...)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    workloads = args.workloads or list(paper_table2_workloads())
    managers = paper_manager_set()
    for name in workloads:
        trace = get_workload(name, scale=args.scale, seed=args.seed)
        stats = compute_statistics(trace)
        study = run_scalability(trace, managers, core_counts=args.cores,
                                max_cores={"Nanos": NANOS_MAX_CORES},
                                schedulers=args.schedulers,
                                topologies=args.topologies)
        print(study.render(
            f"{name}  ({stats.num_tasks} tasks, avg {stats.avg_task_us:.1f} us, scale {args.scale})"
        ))
        print()


if __name__ == "__main__":
    main()
