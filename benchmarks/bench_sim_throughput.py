#!/usr/bin/env python3
"""Simulator throughput benchmark: live runtime vs. the frozen legacy stack.

Measures end-to-end wall time on the two paper workloads with the most
interesting dependency structure — ``sparselu`` and ``h264dec`` — for
**all four managers** (ideal / nanos / nexuspp / nexus#6), comparing the
live runtime (layered machine loop + compiled dependence-resolution
engine) against the frozen legacy stack:

* the ``ideal`` rows run against ``benchmarks/_legacy_machine.py`` — the
  verbatim pre-refactor monolithic loop plus pre-refactor tracker (the
  PR-2 headline baseline);
* the ``nanos`` / ``nexuspp`` / ``nexus#6`` rows run the frozen
  pre-compiled-engine managers of ``benchmarks/_legacy_depres.py``
  (access-by-access tracker, one serial reservation per access) on the
  same legacy loop.

Both sides replay the same generated traces under the default machine
configuration (FIFO scheduler, homogeneous topology,
``keep_schedule=True``), so each ratio measures the full stack the
simulator actually ships.

The acceptance gate lives on the **nexus rows** (nexuspp + nexus#6 over
both workloads): every row must reach its floor (1.0x) and their geomean
must reach the 1.5x target.  ``--check`` turns violations into a
non-zero exit status, which is how CI fails the build on a hot-path
regression.

Schema 3 adds the **whole-sweep batch rows**: a (seeds × cores) sparselu
grid cell executed once per cell through the scalar engine (fresh
manager per cell, exactly like ``SweepRunner`` with ``n_jobs=1``) versus
one :func:`repro.sim.batch.run_lanes` call advancing every cell as a
lane.  The two sides produce byte-identical results (enforced by the
batch golden/differential suites); the rows measure wall time only.
The ``ideal`` batch row is gated at a 5.0x floor under ``--check`` in
both quick and full modes.

Run with::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py [--quick] [--check]

Writes ``BENCH_sim_throughput.json`` (schema 3, repo root by default).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _legacy_depres import LegacyNanosManager, legacy_manager_factory  # noqa: E402
from _legacy_machine import LegacyIdealManager, legacy_simulate  # noqa: E402
from repro.analysis.factories import (  # noqa: E402
    ideal_factory,
    nanos_factory,
    nexus_pp_factory,
    nexus_sharp_factory,
)
from repro.system.machine import Machine, MachineConfig  # noqa: E402
from repro.workloads.h264dec import generate_h264dec  # noqa: E402
from repro.workloads.sparselu import generate_sparselu  # noqa: E402

BENCH_SEED = 2015

#: Wall-time speedup floor every row must individually clear.
ROW_FLOOR = 1.0
#: Geomean target over the nexus (hardware-manager) rows.
NEXUS_TARGET = 1.5
#: Geomean target over the ideal rows (the PR-2 machine-loop headline).
IDEAL_TARGET = 1.5

#: Row key -> (live factory, frozen-legacy factory).  The row set is the
#: four golden managers; nexus rows carry the acceptance gate.
MANAGER_ROWS: Dict[str, Tuple[Callable, Callable]] = {
    "ideal": (ideal_factory(), lambda: LegacyIdealManager()),
    "nanos": (nanos_factory(), LegacyNanosManager),
    "nexuspp": (nexus_pp_factory(), legacy_manager_factory("nexuspp")),
    "nexus#6": (nexus_sharp_factory(6), legacy_manager_factory("nexus#6")),
}

#: Rows whose speedups feed the nexus geomean / floor gate.
NEXUS_ROWS = ("nexuspp", "nexus#6")

#: Whole-sweep batch section: the (seeds x cores) grid cell both engines
#: execute, the lane-kernel managers it is measured for, and the gate.
BATCH_SEEDS = (1, 2, 3, 4)
BATCH_CORES = (4, 8, 16, 32)
BATCH_MANAGERS: Dict[str, Callable] = {
    "ideal": ideal_factory(),
    "nanos": nanos_factory(),
}
#: Batch rows gated under ``--check`` (quick and full modes alike).
BATCH_GATED_ROWS = ("ideal",)
#: Whole-sweep wall-time speedup floor for the gated batch rows.
BATCH_FLOOR = 5.0


def _traces(scale: float):
    return {
        "sparselu": generate_sparselu(scale=scale, seed=BENCH_SEED),
        "h264dec": generate_h264dec(grouping=2, num_frames=6, scale=scale, seed=BENCH_SEED),
    }


def _time_pair(
    current: Callable[[], int],
    legacy: Callable[[], int],
    repetitions: int,
) -> Tuple[float, int, float, int]:
    """Best-of-N wall times for both sides, with interleaved repetitions.

    Alternating current/legacy measurements (instead of timing one side
    to completion first) cancels slow machine-load drift out of the
    ratio, which is what the speedup criterion is computed from.
    """
    best_current = best_legacy = math.inf
    current_events = legacy_events = 0
    for _ in range(repetitions):
        start = time.perf_counter()
        current_events = current()
        best_current = min(best_current, time.perf_counter() - start)
        start = time.perf_counter()
        legacy_events = legacy()
        best_legacy = min(best_legacy, time.perf_counter() - start)
    return best_current, current_events, best_legacy, legacy_events


def _geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_batch_section(scale: float, repetitions: int) -> Dict[str, object]:
    """Whole-sweep rows: scalar per-cell execution vs one lane batch.

    Both sides run the identical (seeds × cores) sparselu grid with
    ``keep_schedule=False`` (the configuration large sweeps use): the
    scalar side as ``len(seeds) * len(cores)`` independent
    ``Machine.run`` calls with a fresh manager per cell, the batch side
    as a single :func:`repro.sim.batch.run_lanes` call over the same
    cells.  Warm-up runs outside the timed region fill the per-trace
    structural caches both sides share, so the rows compare engine
    execution, not trace compilation.
    """
    from repro.sim.batch import LaneSpec, run_lanes

    traces = [generate_sparselu(scale=scale, seed=seed) for seed in BATCH_SEEDS]
    configs = [MachineConfig(num_cores=c, keep_schedule=False) for c in BATCH_CORES]
    rows: Dict[str, object] = {}
    for manager_name, factory in BATCH_MANAGERS.items():

        def run_scalar() -> int:
            runs = 0
            for trace in traces:
                for config in configs:
                    Machine(factory(), config).run(trace)
                    runs += 1
            return runs

        def run_batch() -> int:
            lanes = [
                LaneSpec(trace=trace, manager=factory(), config=config)
                for trace in traces for config in configs
            ]
            return len(run_lanes(lanes))

        run_batch()
        run_scalar()
        batch_s, num_lanes, scalar_s, num_runs = _time_pair(
            run_batch, run_scalar, repetitions)
        speedup = scalar_s / batch_s if batch_s > 0 else math.inf
        gated = manager_name in BATCH_GATED_ROWS
        rows[manager_name] = {
            "lanes": num_lanes,
            "scalar_runs": num_runs,
            "batch_seconds": round(batch_s, 6),
            "scalar_seconds": round(scalar_s, 6),
            "speedup": round(speedup, 3),
            "floor": BATCH_FLOOR if gated else None,
            "meets_floor": speedup >= BATCH_FLOOR if gated else True,
        }
    return {
        "grid": {
            "workload": "sparselu",
            "scale": scale,
            "seeds": list(BATCH_SEEDS),
            "cores": list(BATCH_CORES),
            "keep_schedule": False,
        },
        "rows": rows,
        "gated_rows": list(BATCH_GATED_ROWS),
        "floor": BATCH_FLOOR,
        "meets_floor": all(
            rows[name]["meets_floor"] for name in BATCH_GATED_ROWS  # type: ignore[index]
        ),
    }


def run_benchmark(
    scale: float, cores: int, repetitions: int, batch_scale: float,
) -> Dict[str, object]:
    workloads: Dict[str, object] = {}
    speedups: Dict[str, List[float]] = {key: [] for key in MANAGER_ROWS}
    for trace_name, trace in _traces(scale).items():
        per_manager: Dict[str, object] = {}
        for manager_name, (factory, legacy_factory) in MANAGER_ROWS.items():
            machine = Machine(factory(), MachineConfig(num_cores=cores))

            def run_current() -> int:
                machine.run(trace)
                return machine.last_events_processed

            def run_legacy() -> int:
                _, processed = legacy_simulate(trace, legacy_factory(), cores)
                return processed

            # Warm-up runs outside the timed region (fills the per-trace
            # compiled caches the sweeps also benefit from).
            run_current()
            run_legacy()
            current_s, current_events, legacy_s, legacy_events = _time_pair(
                run_current, run_legacy, repetitions)
            speedup = legacy_s / current_s if current_s > 0 else math.inf
            speedups[manager_name].append(speedup)
            per_manager[manager_name] = {
                "events": current_events,
                "legacy_events": legacy_events,
                "current_events_per_sec": round(current_events / current_s),
                "legacy_events_per_sec": round(legacy_events / legacy_s),
                "current_seconds": round(current_s, 6),
                "legacy_seconds": round(legacy_s, 6),
                "speedup": round(speedup, 3),
                "floor": ROW_FLOOR,
                "meets_floor": speedup >= ROW_FLOOR,
            }
        workloads[trace_name] = per_manager

    batch_sweep = run_batch_section(scale=batch_scale, repetitions=repetitions)

    nexus_speedups = [s for key in NEXUS_ROWS for s in speedups[key]]
    geomean_nexus = _geomean(nexus_speedups)
    geomean_ideal = _geomean(speedups["ideal"])
    per_manager_geomean = {key: round(_geomean(values), 3) for key, values in speedups.items()}
    return {
        "benchmark": "sim_throughput",
        "schema": 3,
        "config": {
            "cores": cores,
            "scale": scale,
            "seed": BENCH_SEED,
            "repetitions": repetitions,
            "machine_config": "default (fifo scheduler, homogeneous topology, keep_schedule=True)",
            "baseline": "frozen legacy stack: _legacy_machine.py loop for all rows; "
                        "ideal rows use its pre-refactor tracker, nanos/nexuspp/nexus#6 "
                        "rows use the pre-compiled-engine managers of _legacy_depres.py",
            "note": "speedup is wall-time (legacy_seconds / current_seconds); events/sec "
                    "are per-side — the layered runtime coalesces back-to-back master "
                    "steps, so it dispatches fewer events for the same simulated work",
        },
        "workloads": workloads,
        "batch_sweep": batch_sweep,
        "per_manager_geomean_speedup": per_manager_geomean,
        "geomean_speedup_nexus": round(geomean_nexus, 3),
        "geomean_speedup_ideal": round(geomean_ideal, 3),
        "nexus_rows": list(NEXUS_ROWS),
        "row_floor": ROW_FLOOR,
        "target_speedup_nexus": NEXUS_TARGET,
        "target_speedup_ideal": IDEAL_TARGET,
        "meets_row_floor": all(s >= ROW_FLOOR for s in nexus_speedups),
        "meets_geomean_target": geomean_nexus >= NEXUS_TARGET,
        "meets_target": (geomean_nexus >= NEXUS_TARGET
                         and all(s >= ROW_FLOOR for s in nexus_speedups)),
    }


def check_report(report: Dict[str, object], enforce_geomean: bool = True) -> List[str]:
    """Return the list of gate violations in ``report`` (empty = pass).

    The per-row 1.0x floor is always enforced (a nexus row below it means
    the compiled engine regressed outright).  The 1.5x geomean target is
    enforced on full-scale runs; quick (CI smoke) runs report it but only
    gate on the floor, since tiny traces amplify machine-load noise.
    """
    failures: List[str] = []
    for trace_name, per_manager in report["workloads"].items():  # type: ignore[union-attr]
        for manager_name in report["nexus_rows"]:  # type: ignore[union-attr]
            row = per_manager[manager_name]
            # Gate on the unrounded verdict, not the 3-decimal display
            # value, so the exit status always agrees with the flags
            # recorded in the artifact.
            if not row["meets_floor"]:
                failures.append(
                    f"{trace_name}/{manager_name}: speedup {row['speedup']:.3f}x "
                    f"below the {row['floor']:.1f}x row floor"
                )
    if enforce_geomean and not report["meets_geomean_target"]:
        failures.append(
            f"nexus geomean {report['geomean_speedup_nexus']:.3f}x below the "
            f"{report['target_speedup_nexus']:.1f}x target"
        )
    batch = report["batch_sweep"]
    for manager_name in batch["gated_rows"]:  # type: ignore[index]
        row = batch["rows"][manager_name]  # type: ignore[index]
        if not row["meets_floor"]:
            failures.append(
                f"batch-sweep/{manager_name}: whole-sweep speedup "
                f"{row['speedup']:.3f}x below the {row['floor']:.1f}x floor"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small traces / few repetitions (CI smoke mode)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default 0.3, quick 0.05)")
    parser.add_argument("--cores", type=int, default=32)
    parser.add_argument("--repetitions", type=int, default=None,
                        help="timed repetitions per side (default 7, quick 3)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a nexus row misses its floor "
                             "or the nexus geomean misses the target")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_sim_throughput.json"))
    args = parser.parse_args()

    scale = args.scale if args.scale is not None else (0.05 if args.quick else 0.3)
    repetitions = args.repetitions if args.repetitions is not None else (3 if args.quick else 7)
    # The batch grid multiplies the trace by 16 cells, so it runs at its
    # own (smaller) scale to keep the benchmark's wall time bounded.
    batch_scale = 0.02 if args.quick else 0.05
    report = run_benchmark(scale=scale, cores=args.cores, repetitions=repetitions,
                           batch_scale=batch_scale)

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    print(f"wrote {output}")
    for trace_name, per_manager in report["workloads"].items():
        for manager_name, row in per_manager.items():
            print(
                f"{trace_name:10s} {manager_name:8s} "
                f"{row['current_events_per_sec']:>10,} ev/s "
                f"(legacy {row['legacy_events_per_sec']:>10,} ev/s)  "
                f"speedup {row['speedup']:.2f}x"
            )
    print(f"geomean speedup (nexus rows): {report['geomean_speedup_nexus']:.2f}x "
          f"(target >= {report['target_speedup_nexus']}x, row floor {report['row_floor']}x)")
    print(f"geomean speedup (ideal rows): {report['geomean_speedup_ideal']:.2f}x")
    batch = report["batch_sweep"]
    grid = batch["grid"]
    for manager_name, row in batch["rows"].items():
        gate = f" (floor {row['floor']:.1f}x)" if row["floor"] is not None else ""
        print(
            f"batch-sweep {manager_name:8s} {row['lanes']} lanes "
            f"({len(grid['seeds'])} seeds x {len(grid['cores'])} cores): "
            f"scalar {row['scalar_seconds']:.3f}s, batch {row['batch_seconds']:.3f}s, "
            f"speedup {row['speedup']:.2f}x{gate}"
        )

    failures = check_report(report, enforce_geomean=not args.quick)
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
