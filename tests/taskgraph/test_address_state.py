"""Tests for the per-address reader/writer/kick-off bookkeeping."""

import pytest

from repro.common.errors import SimulationError
from repro.taskgraph.address_state import AccessMode, AddressState


class TestInsert:
    def test_first_writer_proceeds(self):
        state = AddressState(address=0x1)
        assert state.insert(1, AccessMode.WRITE) is False
        assert state.active_writer == 1

    def test_first_reader_proceeds(self):
        state = AddressState(address=0x1)
        assert state.insert(1, AccessMode.READ) is False
        assert 1 in state.active_readers

    def test_reader_after_writer_waits(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.WRITE)
        assert state.insert(2, AccessMode.READ) is True
        assert state.kickoff_length == 1

    def test_concurrent_readers_proceed(self):
        state = AddressState(address=0x1)
        assert state.insert(1, AccessMode.READ) is False
        assert state.insert(2, AccessMode.READ) is False
        assert state.active_readers == {1, 2}

    def test_writer_after_readers_waits(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.READ)
        assert state.insert(2, AccessMode.WRITE) is True

    def test_writer_after_writer_waits(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.WRITE)
        assert state.insert(2, AccessMode.WRITE) is True

    def test_reader_queues_behind_waiting_writer(self):
        # r1 active, w waiting, r2 must queue behind w (program order).
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.READ)
        state.insert(2, AccessMode.WRITE)
        assert state.insert(3, AccessMode.READ) is True
        assert state.kickoff_length == 2

    def test_readwrite_behaves_as_writer(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.READ)
        assert state.insert(2, AccessMode.READWRITE) is True


class TestFinish:
    def test_writer_finish_releases_readers(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.WRITE)
        state.insert(2, AccessMode.READ)
        state.insert(3, AccessMode.READ)
        released = state.finish(1)
        assert {w.task_id for w in released} == {2, 3}
        assert state.active_readers == {2, 3}

    def test_writer_finish_releases_single_writer(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.WRITE)
        state.insert(2, AccessMode.WRITE)
        state.insert(3, AccessMode.WRITE)
        released = state.finish(1)
        assert [w.task_id for w in released] == [2]
        assert state.active_writer == 2

    def test_readers_release_waiting_writer_only_when_all_done(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.READ)
        state.insert(2, AccessMode.READ)
        state.insert(3, AccessMode.WRITE)
        assert state.finish(1) == []
        released = state.finish(2)
        assert [w.task_id for w in released] == [3]
        assert state.active_writer == 3

    def test_release_stops_at_second_writer(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.WRITE)
        state.insert(2, AccessMode.READ)
        state.insert(3, AccessMode.WRITE)
        released = state.finish(1)
        assert [w.task_id for w in released] == [2]
        released = state.finish(2)
        assert [w.task_id for w in released] == [3]

    def test_finish_unknown_task_raises(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.WRITE)
        with pytest.raises(SimulationError):
            state.finish(99)

    def test_idle_after_all_finish(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.WRITE)
        state.insert(2, AccessMode.READ)
        state.finish(1)
        state.finish(2)
        assert state.is_idle

    def test_statistics(self):
        state = AddressState(address=0x1)
        state.insert(1, AccessMode.WRITE)
        for task in range(2, 6):
            state.insert(task, AccessMode.READ)
        assert state.total_waiters_enqueued == 4
        assert state.max_kickoff_length == 4
