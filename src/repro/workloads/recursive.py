"""Recursive dynamic workloads: nested task parallelism at runtime.

These generators produce :class:`~repro.trace.dynamic.DynamicProgram`
objects — programs whose tasks spawn child tasks and join them with
``taskwait`` while the machine runs.  They model the classic recursive
OmpSs/Cilk benchmarks the static trace registry cannot express:

* :func:`fib_program` — binary recursion with a combine task per node
  (the canonical nested-parallelism microbenchmark);
* :func:`nqueens_program` — irregular fan-out: each node spawns one
  child per *valid* queen placement, so the tree shape is data-driven;
* :func:`recursive_sort_program` — merge sort over blocks: leaves sort
  their block in place, merges touch the representative addresses of
  both halves (deep RAW/WAW chains up the tree);
* :func:`strassen_program` — Strassen-style blocked recursion: seven
  recursive products per node, then add/pack combine tasks.

Determinism: the whole spawn tree — every :class:`~repro.trace.dynamic.
TaskRequest`, every address, every duration — is prebuilt when the
program factory runs, in deterministic depth-first order, from a seeded
RNG.  Task *bodies* only replay the prebuilt requests, so the program's
structure is identical regardless of how a run interleaves (the
determinism contract of :mod:`repro.trace.dynamic`), and replays are
exact.

Deadlock freedom: internal (control) tasks declare no parameters; data
addresses are only touched by leaves and by combine tasks that are
spawned *after* the ``taskwait`` joining their producers — so no task
ever waits on an address held by one of its ancestors (the contract in
:mod:`repro.trace.dynamic`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.trace.dynamic import Compute, DynamicProgram, Spawn, Taskwait, TaskRequest, task_request
from repro.workloads.addressing import AddressSpace


def _jitter(rng, base_us: float, amount: float = 0.2) -> float:
    """A deterministic duration around ``base_us`` (±``amount``·base)."""
    return float(base_us * (1.0 + amount * (rng.random() * 2.0 - 1.0)))


def _spawn_join_body(children: Tuple[TaskRequest, ...],
                     pre_us: float,
                     combine: Optional[TaskRequest] = None):
    """Body factory: compute, spawn children, join, spawn combine, join."""

    def body():
        yield Compute(pre_us)
        for child in children:
            yield Spawn(child)
        yield Taskwait()
        if combine is not None:
            yield Spawn(combine)
            yield Taskwait()

    return body


# ---------------------------------------------------------------------------
# fib
# ---------------------------------------------------------------------------

def fib_program(
    n: int = 12,
    *,
    seed: Optional[int] = None,
    scale: float = 1.0,
    leaf_us: float = 4.0,
    split_us: float = 1.0,
    combine_us: float = 2.0,
) -> DynamicProgram:
    """Recursive Fibonacci: ``fib(n)`` spawns ``fib(n-1)`` and ``fib(n-2)``.

    Each internal node joins its two recursive children, then spawns a
    combine task that reads both results and writes the node's own —
    RAW dependencies that climb the whole tree.

    >>> program = fib_program(5, seed=1)
    >>> program.elaborate().num_tasks == program.metadata["num_tasks"]
    True
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    rng = make_rng(seed, "fib", n)
    space = AddressSpace(seed=seed)
    count = 0

    def build(k: int) -> Tuple[TaskRequest, int]:
        nonlocal count
        count += 1
        result = space.alloc_one()
        if k < 2:
            return task_request(
                "fib_leaf", _jitter(rng, leaf_us * scale), outputs=[result]), result
        left, left_addr = build(k - 1)
        right, right_addr = build(k - 2)
        count += 1  # the combine task
        combine = task_request(
            "fib_combine", _jitter(rng, combine_us * scale),
            inputs=[left_addr, right_addr], outputs=[result])
        pre = _jitter(rng, split_us * scale)
        node = task_request(
            "fib", pre, body=_spawn_join_body((left, right), pre, combine))
        return node, result

    root, root_addr = build(n)

    def master():
        _ = yield Spawn(root)
        yield Taskwait()

    return DynamicProgram(
        f"fib-{n}", master,
        metadata={"workload": "fib", "n": n, "seed": seed, "scale": scale,
                  "num_tasks": count, "result_address": root_addr},
    )


# ---------------------------------------------------------------------------
# nqueens
# ---------------------------------------------------------------------------

def nqueens_program(
    n: int = 6,
    *,
    seed: Optional[int] = None,
    scale: float = 1.0,
    explore_us: float = 2.0,
    reduce_us: float = 1.0,
    leaf_us: float = 3.0,
) -> DynamicProgram:
    """N-queens solution counting with one task per partial placement.

    The fan-out of every node is the number of *valid* placements in the
    next row, so the spawn tree is irregular and data-driven — dead ends
    become cheap leaves, full placements become solution leaves.  Each
    internal node joins its children and spawns a reduce task summing
    their counts.

    >>> program = nqueens_program(4, seed=1)
    >>> program.metadata["num_solutions"]
    2
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    rng = make_rng(seed, "nqueens", n)
    space = AddressSpace(seed=seed)
    count = 0
    solutions = 0

    def valid(placed: Tuple[int, ...], col: int) -> bool:
        row = len(placed)
        for prev_row, prev_col in enumerate(placed):
            if prev_col == col or abs(prev_col - col) == row - prev_row:
                return False
        return True

    def build(placed: Tuple[int, ...]) -> Tuple[TaskRequest, int]:
        nonlocal count, solutions
        count += 1
        result = space.alloc_one()
        row = len(placed)
        if row == n:
            solutions += 1
            return task_request(
                "nq_solution", _jitter(rng, leaf_us * scale), outputs=[result]), result
        children: List[TaskRequest] = []
        child_addrs: List[int] = []
        for col in range(n):
            if valid(placed, col):
                child, child_addr = build(placed + (col,))
                children.append(child)
                child_addrs.append(child_addr)
        if not children:
            return task_request(
                "nq_dead_end", _jitter(rng, 0.5 * leaf_us * scale), outputs=[result]), result
        count += 1  # the reduce task
        reduce = task_request(
            "nq_reduce",
            _jitter(rng, (reduce_us + 0.2 * len(children)) * scale),
            inputs=child_addrs, outputs=[result])
        pre = _jitter(rng, explore_us * scale)
        node = task_request(
            "nq_explore", pre, body=_spawn_join_body(tuple(children), pre, reduce))
        return node, result

    root, root_addr = build(())

    def master():
        _ = yield Spawn(root)
        yield Taskwait()

    return DynamicProgram(
        f"nqueens-{n}", master,
        metadata={"workload": "nqueens", "n": n, "seed": seed, "scale": scale,
                  "num_tasks": count, "num_solutions": solutions,
                  "result_address": root_addr},
    )


# ---------------------------------------------------------------------------
# recursive sort
# ---------------------------------------------------------------------------

def recursive_sort_program(
    num_blocks: int = 32,
    *,
    seed: Optional[int] = None,
    scale: float = 1.0,
    block_us: float = 6.0,
    merge_us_per_block: float = 1.5,
) -> DynamicProgram:
    """Parallel merge sort over ``num_blocks`` data blocks.

    Leaves sort their block in place (``inout``); each merge task updates
    the representative addresses of its two halves, so every level of the
    tree serialises against the level below through real WAW/RAW hazards
    on the block addresses — spawned only after the joining ``taskwait``.

    >>> recursive_sort_program(8, seed=1).metadata["num_tasks"]
    22
    """
    if num_blocks <= 0:
        raise ConfigurationError(f"num_blocks must be positive, got {num_blocks}")
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    rng = make_rng(seed, "recursive-sort", num_blocks)
    space = AddressSpace(seed=seed)
    blocks = space.alloc(num_blocks)
    count = 0

    def build(lo: int, hi: int) -> TaskRequest:
        nonlocal count
        count += 1
        if hi - lo == 1:
            return task_request(
                "sort_block", _jitter(rng, block_us * scale), inouts=[blocks[lo]])
        mid = (lo + hi) // 2
        left = build(lo, mid)
        right = build(mid, hi)
        count += 1  # the merge task
        merge = task_request(
            "merge", _jitter(rng, merge_us_per_block * (hi - lo) * scale),
            inouts=[blocks[lo], blocks[mid]])
        pre = _jitter(rng, 0.5 * scale)
        node = task_request(
            "sort_split", pre, body=_spawn_join_body((left, right), pre, merge))
        return node

    root = build(0, num_blocks)

    def master():
        _ = yield Spawn(root)
        yield Taskwait()

    return DynamicProgram(
        f"recursive-sort-{num_blocks}", master,
        metadata={"workload": "recursive-sort", "num_blocks": num_blocks,
                  "seed": seed, "scale": scale, "num_tasks": count},
    )


# ---------------------------------------------------------------------------
# strassen
# ---------------------------------------------------------------------------

def strassen_program(
    depth: int = 2,
    *,
    seed: Optional[int] = None,
    scale: float = 1.0,
    mul_us: float = 8.0,
    add_us: float = 2.0,
    pack_us: float = 1.0,
) -> DynamicProgram:
    """Strassen-style blocked matrix multiply: 7 recursive products per node.

    Every internal node spawns seven product children, joins them, then
    spawns four quadrant-add tasks (each reading a subset of the seven
    products) and finally a pack task collapsing the quadrants into the
    node's result address.

    >>> strassen_program(1, seed=1).metadata["num_tasks"]
    13
    """
    if depth <= 0:
        raise ConfigurationError(f"depth must be positive, got {depth}")
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    rng = make_rng(seed, "strassen", depth)
    space = AddressSpace(seed=seed)
    count = 0
    # Which of the 7 Strassen products feed each C quadrant.
    _QUADRANT_PRODUCTS = ((0, 3, 4, 6), (2, 4), (1, 3), (0, 1, 2, 5))

    def build(level: int) -> Tuple[TaskRequest, int]:
        nonlocal count
        count += 1
        result = space.alloc_one()
        if level == 0:
            return task_request(
                "strassen_mul", _jitter(rng, mul_us * scale), outputs=[result]), result
        products: List[TaskRequest] = []
        product_addrs: List[int] = []
        for _ in range(7):
            child, child_addr = build(level - 1)
            products.append(child)
            product_addrs.append(child_addr)
        quadrant_addrs = space.alloc(4)
        adds = tuple(
            task_request(
                "strassen_add", _jitter(rng, add_us * scale),
                inputs=[product_addrs[p] for p in _QUADRANT_PRODUCTS[q]],
                outputs=[quadrant_addrs[q]])
            for q in range(4)
        )
        count += 5  # four adds plus the pack task
        pack = task_request(
            "strassen_pack", _jitter(rng, pack_us * scale),
            inputs=list(quadrant_addrs), outputs=[result])
        pre = _jitter(rng, 0.5 * scale)

        def body(products=tuple(products), adds=adds, pack=pack, pre=pre):
            yield Compute(pre)
            for product in products:
                yield Spawn(product)
            yield Taskwait()
            for add in adds:
                yield Spawn(add)
            yield Taskwait()
            yield Spawn(pack)
            yield Taskwait()

        node = task_request("strassen_split", pre, body=body)
        return node, result

    root, root_addr = build(depth)

    def master():
        _ = yield Spawn(root)
        yield Taskwait()

    return DynamicProgram(
        f"strassen-{depth}", master,
        metadata={"workload": "strassen", "depth": depth, "seed": seed,
                  "scale": scale, "num_tasks": count, "result_address": root_addr},
    )
