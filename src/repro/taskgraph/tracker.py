"""The functional dependency engine shared by all hardware manager models.

Nexus++ and Nexus# differ in *where* the per-address state lives (one
central task graph vs. several distributed ones) and in the cycle cost of
getting information in and out, but the dependency bookkeeping itself is
identical.  :class:`DependencyTracker` implements that bookkeeping over a
configurable number of :class:`~repro.taskgraph.table.AddressTable`
instances:

* :meth:`insert_task` registers a new task's accesses and reports, per
  parameter, which task graph it went to and whether it had to wait;
* :meth:`finish_task` replays a finished task's accesses, kicks off
  waiting tasks and reports which tasks became ready.

The timing layers in :mod:`repro.nexus` translate these reports into
pipeline occupancy; the functional result (who waits for whom) is
identical for every hardware configuration, which the property-based
tests assert against the reference DAG.

Two execution paths produce identical results (pinned against each other
— and against the frozen pre-compiled engine — by the golden
tracker-equivalence suite):

* the **compiled path**: :meth:`bind_program` resolves a trace's
  :class:`~repro.trace.compiled.CompiledAccessProgram` against this
  tracker's distribution function and table geometry once, yielding one
  preresolved ``(address_id, raw address, mode, flags, table_index,
  set_index)`` row per deduplicated access.  ``insert_task`` /
  ``finish_task`` then run over those int rows and an address-id-indexed
  cell array — no per-submit merging, no address re-hashing, no
  distribution hashing, and evicted cells are recycled through a free
  list.  Resolutions are cached on the program (keyed by
  ``distribution_key`` + geometry), so every tracker of the same manager
  configuration shares one resolution per trace;
* the **dynamic path** (no bound program): the original access-by-access
  algorithm over the tables' raw-address API, used by streaming replays
  and direct callers whose tasks are not known up front.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.taskgraph.address_state import AccessMode, AddressCell, MODE_OF_FLAGS
from repro.taskgraph.dep_counts import DependenceCountsTable
from repro.taskgraph.function_table import FunctionTable
from repro.taskgraph.table import AddressTable, ways_for
from repro.taskgraph.task_pool import TaskPool
from repro.trace.compiled import CompiledAccessProgram
from repro.trace.task import Direction, TaskDescriptor

# The result records below are NamedTuples, not dataclasses: two of them
# are created per task on the simulation hot path, and tuple construction
# is several times cheaper than a frozen-dataclass __init__.


class AccessRecord(NamedTuple):
    """One deduplicated address access of a task."""

    address: int
    mode: AccessMode
    table_index: int
    must_wait: bool
    set_conflict: bool


class InsertResult(NamedTuple):
    """Outcome of inserting one task into the task graph(s)."""

    task_id: int
    accesses: Tuple[AccessRecord, ...]
    dependence_count: int
    ready: bool
    pool_was_full: bool
    #: Number of accesses that hit a structurally full set (precounted so
    #: the timing layers do not re-scan the access list per task).
    set_conflict_count: int = 0

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    @property
    def num_set_conflicts(self) -> int:
        """Number of accesses that hit a structurally full set."""
        return self.set_conflict_count

    def accesses_per_table(self) -> Dict[int, int]:
        """Number of accesses routed to each task graph."""
        counts: Dict[int, int] = {}
        for access in self.accesses:
            counts[access.table_index] = counts.get(access.table_index, 0) + 1
        return counts


class FinishAccessRecord(NamedTuple):
    """Cleanup of one address access when its task finishes."""

    address: int
    table_index: int
    kicked_off: Tuple[int, ...]


class FinishResult(NamedTuple):
    """Outcome of retiring one finished task."""

    task_id: int
    accesses: Tuple[FinishAccessRecord, ...]
    newly_ready: Tuple[int, ...]
    #: Total kicked-off waiters over all accesses (precounted so the
    #: timing layers do not re-scan the access list per task).
    kickoff_count: int = 0

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    @property
    def num_kickoffs(self) -> int:
        return self.kickoff_count

    def accesses_per_table(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for access in self.accesses:
            counts[access.table_index] = counts.get(access.table_index, 0) + 1
        return counts


#: Direction -> AccessMode for the common single-occurrence case.
_MODE_OF_DIRECTION = {
    Direction.IN: AccessMode.READ,
    Direction.OUT: AccessMode.WRITE,
    Direction.INOUT: AccessMode.READWRITE,
}


def merge_access_modes(task: TaskDescriptor) -> List[Tuple[int, AccessMode]]:
    """Deduplicate a task's parameter list into one access per address.

    A task may legally list the same address several times (e.g. an array
    block passed both as ``in`` and as part of an ``inout`` region); the
    hardware tracks the address once, with the union of the access modes.
    Declaration order of the first occurrence is preserved because the
    Input Parser distributes parameters in arrival order.

    This is the dynamic-path twin of the compile-time merge in
    :class:`~repro.trace.compiled.CompiledAccessProgram`; it runs once
    per task submission when no program is bound (the tracker caches the
    result for the task's retirement).
    """
    params = task.params
    merged: Dict[int, AccessMode] = {}
    mode_of = _MODE_OF_DIRECTION
    for param in params:
        address = param.address
        mode = mode_of[param.direction]
        previous = merged.get(address)
        if previous is None:
            merged[address] = mode
        elif previous is not mode:
            # Any two distinct modes union to READWRITE (READ|WRITE,
            # READ|READWRITE, WRITE|READWRITE all read and write).
            merged[address] = AccessMode.READWRITE
    # Python dicts preserve insertion order == first-occurrence order.
    return list(merged.items())


class _ResolvedProgram:
    """A compiled access program resolved against one tracker config.

    ``rows[slot]`` holds one preresolved tuple per deduplicated access of
    the task in that slot: ``(address_id, raw address, AccessMode,
    direction flags, table index, set index)``.  Everything the hot loops
    consume is an int (or a preresolved object), so the per-access work
    collapses to tuple unpacking plus the state transition itself.

    Growable programs (dynamic runs interning tasks as they are spawned)
    are supported by :meth:`extend`: new addresses and new task rows are
    *appended* — existing entries never move — so a resolution shared by
    several trackers of the same configuration stays valid while any of
    them extends it.
    """

    __slots__ = ("program", "rows", "num_addresses",
                 "_num_tables", "_distribute", "_set_bits", "_table_of", "_set_of")

    def __init__(
        self,
        program: CompiledAccessProgram,
        num_tables: int,
        distribute: Callable[[int], int],
        set_bits: List[int],
    ) -> None:
        self.program = program
        self.rows: List[Tuple[Tuple[int, int, AccessMode, int, int, int], ...]] = []
        self.num_addresses = 0
        self._num_tables = num_tables
        self._distribute = distribute
        self._set_bits = set_bits
        self._table_of: List[int] = []
        self._set_of: List[int] = []
        self.extend()

    def extend(self) -> None:
        """Resolve everything the program interned since the last call."""
        program = self.program
        addresses = program.addresses
        count = len(addresses)
        table_of = self._table_of
        set_of = self._set_of
        if count > len(table_of):
            num_tables = self._num_tables
            distribute = self._distribute
            set_bits = self._set_bits
            for dense in range(len(table_of), count):
                address = addresses[dense]
                table_index = distribute(address)
                if not 0 <= table_index < num_tables:
                    raise SimulationError(
                        f"distribution function returned table {table_index} for address "
                        f"{address:#x}; valid range is [0, {num_tables})"
                    )
                table_of.append(table_index)
                set_of.append((address >> 6) & set_bits[table_index])
            self.num_addresses = count
        rows = self.rows
        num_tasks = program.num_tasks
        if num_tasks > len(rows):
            modes = MODE_OF_FLAGS
            offsets = program.offsets
            addr_ids = program.addr_ids
            flags = program.flags
            for slot in range(len(rows), num_tasks):
                start, end = offsets[slot], offsets[slot + 1]
                rows.append(tuple(
                    (
                        addr_ids[i],
                        addresses[addr_ids[i]],
                        modes[flags[i]],
                        flags[i],
                        table_of[addr_ids[i]],
                        set_of[addr_ids[i]],
                    )
                    for i in range(start, end)
                ))


class DependencyTracker:
    """Functional dependency resolution over one or more address tables.

    Parameters
    ----------
    num_tables:
        Number of task graphs the addresses are distributed over.
    distribute:
        Function mapping an address to a table index in
        ``range(num_tables)``.  Defaults to "always table 0", which is the
        Nexus++ (centralised) behaviour.
    table_factory:
        Callable creating the :class:`AddressTable` for a given index,
        allowing callers to configure geometry.
    task_pool / function_table:
        Optional pre-configured structures (defaults are created
        otherwise).
    distribution_key:
        Hashable identity of ``distribute``'s behaviour (e.g.
        ``("nexus-hash", 6)``).  When given, program resolutions are
        cached on the compiled program and shared by every tracker with
        the same key and table geometry; without it each
        :meth:`bind_program` resolves privately.
    """

    def __init__(
        self,
        num_tables: int = 1,
        distribute: Optional[Callable[[int], int]] = None,
        table_factory: Optional[Callable[[int], AddressTable]] = None,
        task_pool: Optional[TaskPool] = None,
        function_table: Optional[FunctionTable] = None,
        distribution_key: Optional[object] = None,
    ) -> None:
        if num_tables <= 0:
            raise ConfigurationError(f"num_tables must be positive, got {num_tables}")
        self.num_tables = num_tables
        self._distribute = distribute or (lambda address: 0)
        self._distribution_key = distribution_key
        factory = table_factory or (lambda index: AddressTable(name=f"TG{index}"))
        self.tables: List[AddressTable] = [factory(i) for i in range(num_tables)]
        self.dep_counts = DependenceCountsTable()
        self.task_pool = task_pool or TaskPool()
        self.function_table = function_table or FunctionTable()
        #: tasks that were reported ready and are waiting to run or running
        self._in_flight: Dict[int, TaskDescriptor] = {}
        #: per-task merged accesses of the dynamic path, computed at insert
        #: and replayed at finish (recomputing the merge would double the
        #: hot-path cost)
        self._merged_accesses: Dict[int, List[Tuple[int, AccessMode]]] = {}
        # -- compiled-path state (populated by bind_program) ---------------
        self._resolved: Optional[_ResolvedProgram] = None
        #: dense address id -> live cell (compiled path)
        self._cells: List[Optional[AddressCell]] = []
        #: evicted cells recycled across insertions (and across runs)
        self._free_cells: List[AddressCell] = []
        # Per-table structures prefetched at bind time so the compiled hot
        # loops index parallel lists instead of chasing attributes (the
        # stats / occupancy objects are replaced by AddressTable.reset, so
        # these are refreshed on every bind).
        self._stats_by: List = []
        self._occ_by: List[List[int]] = []
        self._ways_by: List[int] = []
        self._cap_by: List[int] = []
        self.total_inserted = 0
        self.total_finished = 0

    # -- helpers --------------------------------------------------------------
    def table_for(self, address: int) -> int:
        """Index of the task graph responsible for ``address``."""
        index = self._distribute(address)
        if not 0 <= index < self.num_tables:
            raise SimulationError(
                f"distribution function returned table {index} for address {address:#x}; "
                f"valid range is [0, {self.num_tables})"
            )
        return index

    @property
    def in_flight_tasks(self) -> int:
        """Number of tasks inserted but not yet finished."""
        return len(self._in_flight)

    @property
    def bound_program(self) -> Optional[CompiledAccessProgram]:
        """The compiled access program currently bound, if any."""
        return self._resolved.program if self._resolved is not None else None

    # -- program binding --------------------------------------------------------
    def bind_program(self, program: Optional[CompiledAccessProgram]) -> None:
        """Switch the tracker onto the compiled path for ``program``.

        Resolves the program against this tracker's distribution function
        and table geometry (cached on the program when a
        ``distribution_key`` identifies the configuration) and allocates
        the dense cell array.  Passing ``None`` unbinds, returning the
        tracker to the dynamic access-by-access path.  Binding requires an
        empty tracker (call :meth:`reset` first): mixing per-path state
        for the same address would corrupt the bookkeeping.
        """
        if self._in_flight:
            raise SimulationError(
                "cannot (re)bind an access program while tasks are in flight"
            )
        if program is None:
            self._resolved = None
            self._recycle_cells()
            return
        resolved: Optional[_ResolvedProgram] = None
        cache_key: Optional[tuple] = None
        set_bits = [table.num_sets - 1 for table in self.tables]
        if self._distribution_key is not None:
            cache_key = (self._distribution_key, self.num_tables, tuple(set_bits))
            resolved = program.resolution_cache.get(cache_key)  # type: ignore[assignment]
        if resolved is None:
            resolved = _ResolvedProgram(program, self.num_tables, self._distribute, set_bits)
            if cache_key is not None:
                program.resolution_cache[cache_key] = resolved
        self._resolved = resolved
        self._recycle_cells()
        self._cells = [None] * resolved.num_addresses
        tables = self.tables
        self._stats_by = [table.stats for table in tables]
        self._occ_by = [table.set_occupancy_array for table in tables]
        self._ways_by = [table.ways for table in tables]
        self._cap_by = [table.kickoff_capacity for table in tables]

    def _recycle_cells(self) -> None:
        """Move any live dense cells onto the free list."""
        cells = self._cells
        if cells:
            free = self._free_cells
            for cell in cells:
                if cell is not None:
                    free.append(cell)
        self._cells = []

    # -- main interface ---------------------------------------------------------
    def insert_task(self, task: TaskDescriptor) -> InsertResult:
        """Insert ``task`` into the task graph(s) and compute its readiness."""
        task_id = task.task_id
        if task_id in self._in_flight:
            raise SimulationError(f"task {task_id} inserted twice")
        resolved = self._resolved
        if resolved is not None:
            slot = resolved.program.slot(task_id)
            if slot < 0:
                raise SimulationError(
                    f"task {task_id} is not in the bound access program; "
                    "intern it (CompiledAccessProgram.add_task), reset the "
                    "tracker, or bind the right trace first"
                )
            rows = resolved.rows
            if slot >= len(rows):
                # The bound program grew (dynamic run): resolve the new
                # addresses/rows and widen the dense cell array to match.
                resolved.extend()
            cells = self._cells
            if resolved.num_addresses > len(cells):
                cells.extend([None] * (resolved.num_addresses - len(cells)))
            return self._insert_compiled(task, rows[slot])
        self._in_flight[task_id] = task
        pool_was_full = self.task_pool.insert(task)
        self.function_table.intern(task.function)
        merged = merge_access_modes(task)
        self._merged_accesses[task_id] = merged
        accesses: List[AccessRecord] = []
        append = accesses.append
        tables = self.tables
        distribute = self._distribute
        num_tables = self.num_tables
        dependence_count = 0
        conflict_count = 0
        for address, mode in merged:
            table_index = distribute(address)
            if not 0 <= table_index < num_tables:
                raise SimulationError(
                    f"distribution function returned table {table_index} for address "
                    f"{address:#x}; valid range is [0, {num_tables})"
                )
            must_wait, set_conflict = tables[table_index].insert_access(address, task_id, mode)
            if must_wait:
                dependence_count += 1
            if set_conflict:
                conflict_count += 1
            append(AccessRecord(address, mode, table_index, must_wait, set_conflict))
        self.dep_counts.register(task_id, dependence_count)
        self.total_inserted += 1
        return InsertResult(
            task_id,
            tuple(accesses),
            dependence_count,
            dependence_count == 0,
            pool_was_full,
            conflict_count,
        )

    def _insert_compiled(self, task: TaskDescriptor, rows) -> InsertResult:
        """Compiled-path insertion over preresolved access rows."""
        task_id = task.task_id
        self._in_flight[task_id] = task
        pool_was_full = self.task_pool.insert(task)
        self.function_table.intern(task.function)
        cells = self._cells
        free = self._free_cells
        tables = self.tables
        stats_by = self._stats_by
        occ_by = self._occ_by
        ways_by = self._ways_by
        cap_by = self._cap_by
        dependence_count = 0
        conflict_count = 0
        accesses: List[AccessRecord] = []
        append = accesses.append
        record = AccessRecord
        for aid, address, mode, flag, table_index, set_idx in rows:
            cell = cells[aid]
            stats = stats_by[table_index]
            stats.lookups += 1
            set_conflict = False
            if cell is None:
                occupancy = occ_by[table_index]
                ways_in_use = occupancy[set_idx]
                if ways_in_use >= ways_by[table_index]:
                    # Structurally the hardware would stall until a way
                    # frees up; functionally the address is still tracked
                    # (dummy entries guarantee forward progress) and the
                    # conflict is reported so timing can charge for it.
                    set_conflict = True
                    conflict_count += 1
                    stats.set_conflicts += 1
                if free:
                    cell = free.pop()
                    cell.recycle(address)
                else:
                    cell = AddressCell(address)
                cells[aid] = cell
                occupancy[set_idx] = ways_in_use + 1
                table = tables[table_index]
                live = table._dense_live + 1
                table._dense_live = live
                stats.insertions += 1
                if live > stats.max_live_entries:
                    stats.max_live_entries = live
                # A fresh cell has no owners and no waiters: the access
                # proceeds immediately (the common no-conflict fast path).
                if flag & 2:
                    cell.writer = task_id
                else:
                    cell.readers.add(task_id)
                must_wait = False
            else:
                length_before = cell.klen
                must_wait = cell.insert(task_id, flag)
                if must_wait:
                    dependence_count += 1
                    capacity = cap_by[table_index]
                    if length_before + 1 > capacity:
                        before_ways = ways_for(length_before, capacity)
                        after_ways = ways_for(length_before + 1, capacity)
                        if after_ways != before_ways:
                            occ_by[table_index][set_idx] += after_ways - before_ways
                            if after_ways - 1 > stats.dummy_entries_peak:
                                stats.dummy_entries_peak = after_ways - 1
            append(record(address, mode, table_index, must_wait, set_conflict))
        self.dep_counts.register(task_id, dependence_count)
        self.total_inserted += 1
        return InsertResult(
            task_id,
            tuple(accesses),
            dependence_count,
            dependence_count == 0,
            pool_was_full,
            conflict_count,
        )

    def finish_task(self, task_id: int) -> FinishResult:
        """Retire ``task_id``: release its addresses and kick off waiters."""
        task = self._in_flight.pop(task_id, None)
        if task is None:
            raise SimulationError(f"finish for unknown or already finished task {task_id}")
        dep_counts = self.dep_counts
        if dep_counts.pending(task_id) != 0:
            raise SimulationError(
                f"task {task_id} finished while still having "
                f"{dep_counts.pending(task_id)} unresolved dependencies"
            )
        self.task_pool.remove(task_id)
        resolved = self._resolved
        if resolved is not None:
            return self._finish_compiled(task_id, resolved.rows[resolved.program.slot(task_id)])
        merged = self._merged_accesses.pop(task_id)
        accesses: List[FinishAccessRecord] = []
        append = accesses.append
        newly_ready: List[int] = []
        tables = self.tables
        distribute = self._distribute
        num_tables = self.num_tables
        decrement = dep_counts.decrement
        kickoff_count = 0
        for address, _mode in merged:
            table_index = distribute(address)
            if not 0 <= table_index < num_tables:
                raise SimulationError(
                    f"distribution function returned table {table_index} for address "
                    f"{address:#x}; valid range is [0, {num_tables})"
                )
            released = tables[table_index].finish_access(address, task_id)
            kicked: List[int] = []
            for waiter in released:
                waiter_id = waiter.task_id
                kicked.append(waiter_id)
                if decrement(waiter_id):
                    newly_ready.append(waiter_id)
            kickoff_count += len(kicked)
            append(FinishAccessRecord(address, table_index, tuple(kicked)))
        dep_counts.remove(task_id)
        self.total_finished += 1
        return FinishResult(task_id, tuple(accesses), tuple(newly_ready), kickoff_count)

    def _finish_compiled(self, task_id: int, rows) -> FinishResult:
        """Compiled-path retirement over preresolved access rows."""
        cells = self._cells
        free = self._free_cells
        tables = self.tables
        occ_by = self._occ_by
        cap_by = self._cap_by
        stats_by = self._stats_by
        pending = self.dep_counts._pending
        accesses: List[FinishAccessRecord] = []
        append = accesses.append
        newly_ready: List[int] = []
        record = FinishAccessRecord
        kickoff_count = 0
        for aid, address, _mode, _flag, table_index, set_idx in rows:
            cell = cells[aid]
            if cell is None:
                raise SimulationError(
                    f"{tables[table_index].name}: finish on untracked address {address:#x}"
                )
            length_before = cell.klen
            released = cell.finish(task_id)
            if released:
                kickoff_count += len(released)
                for waiter_id in released:
                    count = pending[waiter_id] - 1
                    pending[waiter_id] = count
                    if count == 0:
                        newly_ready.append(waiter_id)
                kicked = tuple(released)
            else:
                kicked = ()
            if cell.writer < 0 and cell.klen == 0 and not cell.readers:
                # Idle: evict the cell, free its way(s), recycle it.
                cells[aid] = None
                free.append(cell)
                occupancy = occ_by[table_index]
                before_ways = ways_for(length_before, cap_by[table_index])
                remaining = occupancy[set_idx] - before_ways
                occupancy[set_idx] = remaining if remaining > 0 else 0
                table = tables[table_index]
                table._dense_live -= 1
                stats_by[table_index].evictions += 1
            else:
                capacity = cap_by[table_index]
                length_after = cell.klen
                if length_before > capacity or length_after > capacity:
                    before_ways = ways_for(length_before, capacity)
                    after_ways = ways_for(length_after, capacity)
                    if after_ways != before_ways:
                        occupancy = occ_by[table_index]
                        remaining = occupancy[set_idx] + (after_ways - before_ways)
                        occupancy[set_idx] = remaining if remaining > 0 else 0
            append(record(address, table_index, kicked))
        self.dep_counts.remove(task_id)
        self.total_finished += 1
        return FinishResult(task_id, tuple(accesses), tuple(newly_ready), kickoff_count)

    def reset(self) -> None:
        """Return the tracker to its initial empty state (and unbind)."""
        for table in self.tables:
            table.reset()
        self.dep_counts.reset()
        self.task_pool.reset()
        self.function_table.reset()
        self._in_flight.clear()
        self._merged_accesses.clear()
        self._resolved = None
        self._recycle_cells()
        self.total_inserted = 0
        self.total_finished = 0
