"""Deterministic fault injection for the sweep fabric and serving layer.

Chaos here is *seeded and replayable*: a :class:`FaultPlan` maps
``(seed, scope, event index)`` to fault decisions with a hash, so the
same seed produces the same fault sequence run after run — which is
what lets CI soak the resilience layer and still demand byte-identical
sweep output.  The shims wrap the real seams:

* :class:`ChaosFrameStream` — wire faults on fabric frames (drop,
  duplicate, corrupt, truncate mid-frame, delay, reset);
* :class:`ChaosResultCache` — shared-store damage (bit flips, torn
  ``*.tmp`` writes, slow reads);
* :class:`WorkerChaos` — process faults per executed cell (crash,
  straggle, silent hang);
* :class:`ServeChaos` — engine exceptions on the Kth serving request.

Activate via ``SweepRunner(chaos=...)``, the ``--chaos-seed`` /
``--chaos-profile`` CLI flags, or the ``REPRO_CHAOS`` environment knob
(e.g. ``REPRO_CHAOS=soak:2015``) used by the CI soak job.
"""

from repro.chaos.cache import ChaosResultCache
from repro.chaos.hooks import ServeChaos, WorkerChaos
from repro.chaos.plan import (
    CHAOS_ENV,
    PROFILES,
    FaultPlan,
    FaultProfile,
    parse_chaos,
    plan_from_env,
)
from repro.chaos.stream import ChaosFrameStream

__all__ = [
    "CHAOS_ENV",
    "PROFILES",
    "ChaosFrameStream",
    "ChaosResultCache",
    "FaultPlan",
    "FaultProfile",
    "ServeChaos",
    "WorkerChaos",
    "parse_chaos",
    "plan_from_env",
]
