"""Tests for SweepRunner: execution, caching, JSONL and study bridging."""

import os

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import SweepRunner, resolve_worker_count, run_sweep
from repro.experiments.spec import SweepSpec, WorkloadSpec
from repro.system import machine as machine_module
from repro.system.machine import simulate
from repro.trace.serialization import iter_jsonl
from repro.workloads.registry import get_workload
from repro.workloads.synthetic import generate_independent


def small_spec(**overrides):
    defaults = dict(
        workloads=["microbench", "c-ray"],
        managers=["ideal", "nexus#2"],
        core_counts=[1, 4],
        scale=0.05,
        seeds=(2015,),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestSerialExecution:
    def test_results_match_direct_simulation(self):
        spec = small_spec()
        outcome = SweepRunner().run(spec)
        assert outcome.executed == len(outcome.points) == 8
        assert outcome.cache_hits == 0
        for point, result in zip(outcome.points, outcome.results):
            trace = get_workload(point.workload.name, scale=0.05, seed=2015)
            direct = simulate(trace, point.factory(), point.cores, keep_schedule=False)
            assert result.makespan_us == direct.makespan_us
            assert result.num_cores == point.cores

    def test_study_bridging_matches_grid(self):
        spec = small_spec()
        studies = SweepRunner().run(spec).studies()
        assert set(studies) == {"microbench", "c-ray"}
        study = studies["c-ray"]
        assert set(study.curves) == {"Ideal", "Nexus# 2TG"}
        assert study.curves["Ideal"].core_counts == (1, 4)
        assert study.curves["Ideal"].speedup_at(1) == pytest.approx(1.0)

    def test_fully_filtered_grid_yields_empty_curves(self):
        spec = small_spec(core_counts=[64], max_cores={"Ideal": 1, "Nexus# 2TG": 1})
        outcome = SweepRunner().run(spec)
        assert outcome.points == [] and outcome.executed == 0
        studies = outcome.studies()
        assert set(studies) == {"microbench", "c-ray"}
        for study in studies.values():
            assert set(study.curves) == {"Ideal", "Nexus# 2TG"}
            for curve in study.curves.values():
                assert curve.core_counts == ()
                assert curve.max_speedup == 0.0

    def test_partially_capped_manager_still_gets_a_curve(self):
        # All of Nanos' core counts are above its cap; the other manager runs.
        spec = small_spec(
            workloads=["microbench"],
            managers=["ideal", "nanos"],
            core_counts=[16, 64],
            max_cores={"Nanos": 8},
        )
        study = SweepRunner().run(spec).study("microbench")
        assert study.curves["Nanos"].core_counts == ()
        assert study.curves["Nanos"].max_speedup == 0.0
        assert study.curves["Ideal"].core_counts == (16, 64)

    def test_non_ascending_core_counts_keep_spec_order(self):
        spec = small_spec(workloads=["microbench"], managers=["ideal"], core_counts=[4, 1])
        study = SweepRunner().run(spec).study("microbench")
        curve = study.curves["Ideal"]
        assert study.core_counts == (4, 1)
        assert curve.core_counts == (4, 1)
        # The 1-core cell must carry the 1-core speedup, wherever it sits.
        assert curve.speedup_at(1) == pytest.approx(1.0)
        assert curve.speedup_at(4) > 1.0

    def test_invalid_n_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(n_jobs=0)


class TestJsonl:
    def test_jsonl_rows_are_self_describing(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        outcome = run_sweep(small_spec(), jsonl_path=path)
        rows = list(iter_jsonl(path))
        assert len(rows) == len(outcome.points)
        first = rows[0]
        assert first["point"]["workload"]["name"] == "microbench"
        assert first["point"]["manager"] == "Ideal"
        assert first["result"]["makespan_us"] > 0
        # File bytes match the in-memory canonical rendering.
        text = path.read_text(encoding="utf-8")
        assert text == "".join(line + "\n" for line in outcome.jsonl_lines())

    def test_gz_output_round_trips(self, tmp_path):
        path = tmp_path / "rows.jsonl.gz"
        outcome = run_sweep(small_spec(workloads=["microbench"]), jsonl_path=path)
        rows = list(iter_jsonl(path))
        assert len(rows) == len(outcome.points)
        assert rows[0]["result"]["makespan_us"] > 0


class TestCaching:
    def test_warm_cache_rerun_performs_zero_machine_runs(self, tmp_path, monkeypatch):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        cold = SweepRunner(cache=cache).run(spec)
        assert cold.executed == len(cold.points)
        assert cold.cache_hits == 0

        def forbidden(self, trace):  # pragma: no cover - failure path
            raise AssertionError("Machine.run called on a warm cache")

        monkeypatch.setattr(machine_module.Machine, "run", forbidden)
        warm = SweepRunner(cache=cache).run(spec)
        assert warm.executed == 0
        assert warm.cache_hits == len(warm.points)
        assert warm.jsonl_lines() == cold.jsonl_lines()

    def test_partial_cache_runs_only_missing_points(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        narrow = small_spec(workloads=["microbench"])
        SweepRunner(cache=cache).run(narrow)
        wide = small_spec()  # superset grid
        outcome = SweepRunner(cache=cache).run(wide)
        assert outcome.cache_hits == 4  # the microbench half
        assert outcome.executed == 4  # only the c-ray half ran

    def test_config_change_invalidates_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache).run(small_spec())
        retuned = small_spec(managers=["ideal", "nexus#2@100"])
        outcome = SweepRunner(cache=cache).run(retuned)
        assert outcome.cache_hits == 4  # ideal half unchanged
        assert outcome.executed == 4  # retuned Nexus# half re-ran

    def test_opaque_factories_bypass_the_cache(self, tmp_path):
        from repro.managers.nanos import NanosConfig, NanosManager

        cache = ResultCache(tmp_path / "cache")
        cheap = NanosConfig(task_creation_us=0.1)
        spec_a = small_spec(workloads=["microbench"], managers={"custom": lambda: NanosManager()})
        spec_b = small_spec(workloads=["microbench"], managers={"custom": lambda: NanosManager(cheap)})
        first = SweepRunner(cache=cache).run(spec_a)
        second = SweepRunner(cache=cache).run(spec_b)
        # Same label, same opaque description — but never served stale.
        assert second.cache_hits == 0
        assert second.executed == len(second.points)
        assert len(cache) == 0
        makespans_a = [r.makespan_us for r in first.results]
        makespans_b = [r.makespan_us for r in second.results]
        assert makespans_a != makespans_b

    def test_cache_dir_convenience(self, tmp_path):
        run_sweep(small_spec(), cache_dir=tmp_path / "cache")
        warm = run_sweep(small_spec(), cache_dir=tmp_path / "cache")
        assert warm.executed == 0


class TestParallelExecution:
    def test_parallel_results_identical_to_serial(self):
        spec = small_spec()
        serial = SweepRunner(n_jobs=1).run(spec)
        parallel = SweepRunner(n_jobs=4).run(spec)
        assert parallel.jsonl_lines() == serial.jsonl_lines()
        assert parallel.executed == len(parallel.points)

    def test_distinct_workloads_sharing_a_name_are_not_merged(self):
        # Two inline traces with the same name but different content.
        a = generate_independent(8, duration_us=10.0, seed=1)
        b = generate_independent(8, duration_us=20.0, seed=2)
        assert a.name == b.name
        spec = SweepSpec(workloads=(a, b), managers=["ideal"], core_counts=[1, 2])
        studies = SweepRunner().run(spec).studies()
        assert len(studies) == 2
        for study in studies.values():
            assert study.curves["Ideal"].core_counts == (1, 2)
        # Same name at two scales via named workloads, too.
        spec2 = SweepSpec(
            workloads=(
                WorkloadSpec.of("c-ray", scale=0.02),
                WorkloadSpec.of("c-ray", scale=0.05),
            ),
            managers=["ideal"],
            core_counts=[1],
        )
        studies2 = SweepRunner().run(spec2).studies()
        assert set(studies2) == {"c-ray#scale=0.02", "c-ray#scale=0.05"}

    def test_stale_result_format_becomes_a_cache_miss(self, tmp_path):
        from repro.experiments import spec as spec_module
        from repro.trace import serialization

        cache = ResultCache(tmp_path / "cache")
        grid = small_spec(workloads=["microbench"])
        SweepRunner(cache=cache).run(grid)
        original = serialization.RESULT_FORMAT_VERSION
        try:
            serialization.RESULT_FORMAT_VERSION = original + 1
            spec_module.RESULT_FORMAT_VERSION = original + 1
            outcome = SweepRunner(cache=cache).run(grid)
            # Old-format entries must not be served: everything re-runs.
            assert outcome.cache_hits == 0
            assert outcome.executed == len(outcome.points)
        finally:
            serialization.RESULT_FORMAT_VERSION = original
            spec_module.RESULT_FORMAT_VERSION = original

    def test_parallel_with_unpicklable_factory_fails_clearly(self):
        from repro.managers.ideal import IdealManager

        spec = SweepSpec(
            workloads=["microbench"],
            managers={"closure": lambda: IdealManager()},
            core_counts=[1, 2, 3],
        )
        with pytest.raises(ConfigurationError, match="not picklable"):
            SweepRunner(n_jobs=2).run(spec)
        # The same grid still runs serially.
        assert SweepRunner(n_jobs=1).run(spec).executed == 3

    def test_parallel_with_inline_trace(self):
        trace = generate_independent(12, duration_us=10.0, seed=5)
        spec = SweepSpec(workloads=(trace,), managers=["ideal"], core_counts=[1, 2, 3, 4])
        serial = SweepRunner(n_jobs=1).run(spec)
        parallel = SweepRunner(n_jobs=2).run(spec)
        assert parallel.jsonl_lines() == serial.jsonl_lines()
        speedups = [r.speedup_vs_serial for r in parallel.results]
        assert speedups == pytest.approx([1.0, 2.0, 3.0, 4.0])


class TestWorkerCountResolution:
    def test_integers_pass_through(self):
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count(8) == 8
        assert resolve_worker_count("4") == 4

    def test_auto_uses_cpu_count(self):
        assert resolve_worker_count("auto") == (os.cpu_count() or 1)
        assert resolve_worker_count(" AUTO ") == (os.cpu_count() or 1)

    def test_minimum_is_enforced(self):
        assert resolve_worker_count(0, minimum=0) == 0
        with pytest.raises(ConfigurationError, match="n_jobs must be >= 1"):
            resolve_worker_count(0)
        with pytest.raises(ConfigurationError, match="workers must be >= 0"):
            resolve_worker_count(-1, flag="workers", minimum=0)

    def test_garbage_is_rejected(self):
        for bad in ("many", "1.5", "", 2.0, None, True):
            with pytest.raises(ConfigurationError):
                resolve_worker_count(bad)

    def test_inline_trace_sweeps_distribute(self):
        # Inline traces are interned and shipped once per socket worker.
        trace = generate_independent(12, duration_us=10.0, seed=5)
        spec = SweepSpec(workloads=(trace,), managers=["ideal"],
                         core_counts=[1, 2, 3, 4])
        serial = SweepRunner(n_jobs=1).run(spec)
        distributed = SweepRunner(transport="sockets", workers=2).run(spec)
        assert distributed.jsonl_lines() == serial.jsonl_lines()
