"""c-ray: ray-tracing workload (Starbench).

Section V-A: "c-ray and rot-cc have simple dependency patterns, with
tasks working on each line of the input image independently.  For c-ray,
there is only one task per line, which means that all tasks are
independent.  c-ray is a best case for this type of runtime, as it has
long tasks and ample parallelism."

Table II: 1200 tasks, 7381 ms total work, 6151 µs average task size,
1 parameter per task.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.trace.events import TraceEvent
from repro.trace.stream import EventEmitter, TraceStream, materialize
from repro.trace.trace import Trace
from repro.workloads.addressing import AddressSpace

#: Paper values (Table II).
PAPER_NUM_TASKS = 1200
PAPER_AVG_TASK_US = 6151.0
PAPER_TOTAL_WORK_MS = 7381.0


def stream_cray(
    scale: float = 1.0,
    seed: Optional[int] = None,
    *,
    num_lines: Optional[int] = None,
    avg_task_us: float = PAPER_AVG_TASK_US,
    duration_cv: float = 0.15,
) -> TraceStream:
    """Stream a c-ray trace (see :func:`generate_cray` for parameters)."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    if num_lines is None:
        num_lines = max(1, round(PAPER_NUM_TASKS * scale))
    if num_lines <= 0:
        raise ConfigurationError(f"num_lines must be positive, got {num_lines}")
    lines = num_lines

    def events() -> Iterator[TraceEvent]:
        rng = make_rng(seed, "c-ray")
        space = AddressSpace(seed=seed)
        emit = EventEmitter()
        line_addresses = space.alloc(lines)
        durations = rng.normal(avg_task_us, avg_task_us * duration_cv, size=lines)
        durations = durations.clip(min=avg_task_us * 0.1)
        for line, address in enumerate(line_addresses):
            yield emit.task(
                "render_line",
                duration_us=float(durations[line]),
                outputs=[address],
            )
        yield emit.taskwait()

    return TraceStream(
        "c-ray",
        events,
        metadata={
            "suite": "Starbench",
            "num_lines": num_lines,
            "avg_task_us": avg_task_us,
            "scale": scale,
        },
    )


def generate_cray(
    scale: float = 1.0,
    seed: Optional[int] = None,
    *,
    num_lines: Optional[int] = None,
    avg_task_us: float = PAPER_AVG_TASK_US,
    duration_cv: float = 0.15,
) -> Trace:
    """Generate a c-ray trace.

    Parameters
    ----------
    scale:
        Task-count scale factor relative to the paper's 1200 lines.
    seed:
        Seed for the per-task duration jitter.
    num_lines:
        Explicit number of image lines (overrides ``scale``).
    avg_task_us:
        Mean per-line rendering time in micro-seconds.
    duration_cv:
        Coefficient of variation of the task durations (ray tracing lines
        vary with scene content).
    """
    return materialize(stream_cray(
        scale, seed,
        num_lines=num_lines, avg_task_us=avg_task_us, duration_cv=duration_cv))
