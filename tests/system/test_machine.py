"""Tests for the multicore machine simulator."""

import pytest

from repro.common.errors import ConfigurationError
from repro.managers.ideal import IdealManager
from repro.nexus.nexuspp import NexusPlusPlusManager
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.system.machine import Machine, MachineConfig, simulate
from repro.trace.trace import TraceBuilder
from repro.workloads.synthetic import generate_chain, generate_fork_join, generate_independent


class TestIdealScheduling:
    def test_single_core_makespan_equals_total_work(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 1, validate=True)
        assert result.makespan_us == pytest.approx(independent_trace.total_work_us)
        assert result.speedup_vs_serial == pytest.approx(1.0)

    def test_independent_tasks_scale_linearly(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 4, validate=True)
        assert result.speedup_vs_serial == pytest.approx(4.0)

    def test_more_cores_than_tasks(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 1000, validate=True)
        # 20 tasks of 10 µs: everything runs at once.
        assert result.makespan_us == pytest.approx(10.0)

    def test_chain_cannot_scale(self, chain_trace):
        serial = simulate(chain_trace, IdealManager(), 1, validate=True)
        parallel = simulate(chain_trace, IdealManager(), 8, validate=True)
        assert parallel.makespan_us == pytest.approx(serial.makespan_us)

    def test_diamond_critical_path(self, tiny_diamond_trace):
        result = simulate(tiny_diamond_trace, IdealManager(), 4, validate=True)
        assert result.makespan_us == pytest.approx(30.0)

    def test_all_tasks_executed_exactly_once(self, random_dag_trace):
        result = simulate(random_dag_trace, IdealManager(), 8, validate=True)
        assert result.num_tasks == random_dag_trace.num_tasks
        assert len(result.finish_times) == random_dag_trace.num_tasks

    def test_makespan_at_least_critical_path_and_at_most_serial(self, random_dag_trace):
        from repro.trace.dag import build_dependency_graph

        graph = build_dependency_graph(random_dag_trace)
        result = simulate(random_dag_trace, IdealManager(), 4, validate=True)
        assert result.makespan_us >= graph.critical_path_length() - 1e-6
        assert result.makespan_us <= graph.total_work() + 1e-6


class TestBarriers:
    def test_taskwait_serialises_phases(self):
        builder = TraceBuilder("barrier")
        builder.add_task("a", 10.0, outputs=[0x40])
        builder.add_task("b", 10.0, outputs=[0x80])
        builder.add_taskwait()
        builder.add_task("c", 10.0, outputs=[0xC0])
        trace = builder.build()
        result = simulate(trace, IdealManager(), 4, validate=True)
        # Phase 1 (10 µs, two tasks in parallel) then c (10 µs).
        assert result.makespan_us == pytest.approx(20.0)
        assert result.start_times[2] >= max(result.finish_times[0], result.finish_times[1])

    def test_taskwait_on_only_waits_for_the_named_writer(self):
        builder = TraceBuilder("taskwait-on")
        builder.add_task("slow", 100.0, outputs=[0x40])
        builder.add_task("fast", 1.0, outputs=[0x80])
        builder.add_taskwait_on(0x80)
        builder.add_task("after", 1.0, outputs=[0xC0])
        trace = builder.build()
        result = simulate(trace, IdealManager(), 4, validate=True)
        # "after" must not wait for "slow".
        assert result.start_times[2] < 100.0

    def test_taskwait_on_degrades_to_full_taskwait_without_support(self):
        builder = TraceBuilder("taskwait-on-degraded")
        builder.add_task("slow", 100.0, outputs=[0x40])
        builder.add_task("fast", 1.0, outputs=[0x80])
        builder.add_taskwait_on(0x80)
        builder.add_task("after", 1.0, outputs=[0xC0])
        trace = builder.build()
        result = simulate(trace, NexusPlusPlusManager(), 4, validate=True)
        # Nexus++ has no taskwait-on support: "after" waits for everything.
        assert result.start_times[2] >= 100.0

    def test_taskwait_on_unwritten_address_is_noop(self):
        builder = TraceBuilder("noop-barrier")
        builder.add_task("a", 10.0, outputs=[0x40])
        builder.add_taskwait_on(0xDEAD00)
        builder.add_task("b", 10.0, outputs=[0x80])
        trace = builder.build()
        result = simulate(trace, IdealManager(), 2, validate=True)
        assert result.makespan_us == pytest.approx(10.0)

    def test_leading_and_trailing_barriers(self):
        builder = TraceBuilder("edge-barriers")
        builder.add_taskwait()
        builder.add_task("a", 5.0, outputs=[0x40])
        builder.add_taskwait()
        builder.add_taskwait()
        trace = builder.build()
        result = simulate(trace, IdealManager(), 1, validate=True)
        assert result.makespan_us == pytest.approx(5.0)


class TestHardwareManagersOnMachine:
    @pytest.mark.parametrize("num_tg", [1, 4, 6])
    def test_nexus_sharp_executes_fork_join(self, fork_join_trace, num_tg):
        manager = NexusSharpManager(NexusSharpConfig(num_task_graphs=num_tg, frequency_mhz=100.0))
        result = simulate(fork_join_trace, manager, 4, validate=True)
        assert result.num_tasks == fork_join_trace.num_tasks
        assert result.makespan_us > 0

    def test_manager_overhead_slows_execution_down(self, independent_trace):
        ideal = simulate(independent_trace, IdealManager(), 4)
        hardware = simulate(independent_trace, NexusPlusPlusManager(), 4)
        assert hardware.makespan_us >= ideal.makespan_us

    def test_worker_overhead_added_to_execution(self):
        from repro.managers.nanos import NanosManager

        trace = generate_independent(4, duration_us=10.0, seed=0)
        manager = NanosManager()
        result = simulate(trace, manager, 1, validate=True)
        expected_work = 4 * (10.0 + manager.worker_overhead_us)
        assert result.makespan_us >= expected_work - 1e-6


class TestResultMetrics:
    def test_core_utilization_bounds(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 4)
        assert 0.0 < result.core_utilization <= 1.0

    def test_summary_keys(self, independent_trace):
        summary = simulate(independent_trace, IdealManager(), 2).summary()
        assert {"trace", "manager", "cores", "makespan_ms", "speedup"} <= set(summary)

    def test_keep_schedule_false_drops_schedules(self, independent_trace):
        result = simulate(independent_trace, IdealManager(), 2, keep_schedule=False)
        assert result.start_times == {}
        assert result.makespan_us > 0

    def test_latency_metrics_non_negative(self, fork_join_trace):
        result = simulate(fork_join_trace, NexusPlusPlusManager(), 2)
        assert result.mean_ready_latency_us >= 0.0
        assert result.mean_queue_latency_us >= 0.0

    def test_invalid_core_count(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_cores=0)

    def test_machine_reusable_across_traces(self):
        machine = Machine(IdealManager(), MachineConfig(num_cores=2))
        first = machine.run(generate_independent(6, seed=1))
        second = machine.run(generate_chain(6, seed=1))
        assert first.num_tasks == 6 and second.num_tasks == 6


class TestDeterminism:
    def test_same_inputs_same_makespan(self, random_dag_trace):
        manager_a = NexusSharpManager(NexusSharpConfig(num_task_graphs=4, frequency_mhz=100.0))
        manager_b = NexusSharpManager(NexusSharpConfig(num_task_graphs=4, frequency_mhz=100.0))
        first = simulate(random_dag_trace, manager_a, 8)
        second = simulate(random_dag_trace, manager_b, 8)
        assert first.makespan_us == pytest.approx(second.makespan_us)
