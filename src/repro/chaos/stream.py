"""Wire-level fault injection: a chaotic :class:`FrameStream`.

``ChaosFrameStream`` is a drop-in ``FrameStream`` whose :meth:`send`
consults a :class:`~repro.chaos.plan.FaultPlan` before every frame and
may drop it, send it twice, corrupt its body, truncate it mid-frame, or
sever the connection outright.  Faults are injected **send-side only**:
every receive-side symptom the fabric must survive (a missing frame, a
duplicate, a JSON-garbage body, a mid-frame EOF, a reset) is exactly
what the peer observes when the sender misbehaves, and send-side
injection keeps the decision index — the per-stream sent-frame counter
— deterministic under any thread interleaving (senders are already
serialized by the stream's send lock).

The handshake (``hello``/``setup``) is deliberately run on the plain
stream and the chaos wrapper adopted afterwards via :meth:`adopt`: a
worker that cannot even handshake exercises nothing, and the setup
frame is how the fault plan itself reaches remote workers.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict

from repro.chaos.plan import FaultPlan
from repro.distributed.protocol import _LENGTH, FrameStream, pack_frame


class ChaosFrameStream(FrameStream):
    """A ``FrameStream`` that injects plan-scheduled faults on send."""

    def __init__(self, sock: socket.socket, plan: FaultPlan, scope: str) -> None:
        super().__init__(sock)
        self._init_chaos(plan, scope)

    def _init_chaos(self, plan: FaultPlan, scope: str) -> None:
        self.plan = plan
        self.scope = scope
        self._sent = 0
        #: fault kind -> injection count, for tests and event logs.
        self.injected: Dict[str, int] = {}

    @classmethod
    def adopt(cls, stream: FrameStream, plan: FaultPlan,
              scope: str) -> "ChaosFrameStream":
        """Rewrap an existing stream (post-handshake), preserving its
        socket, receive buffer, EOF latch and send lock."""
        chaos = cls.__new__(cls)
        chaos.sock = stream.sock
        chaos.eof = stream.eof
        chaos.peer = stream.peer
        chaos._buffer = stream._buffer
        chaos._send_lock = stream._send_lock
        chaos._init_chaos(plan, scope)
        return chaos

    # -- fault injection ----------------------------------------------------
    def send(self, doc: Dict[str, Any]) -> None:
        data = pack_frame(doc)
        with self._send_lock:
            index = self._sent
            self._sent += 1
            fault = self.plan.decide_frame(self.scope, index)
            if fault is not None:
                self.injected[fault] = self.injected.get(fault, 0) + 1
            if fault is None:
                self.sock.sendall(data)
            elif fault == "drop":
                pass  # the peer's recovery paths must resend/respeculate
            elif fault == "duplicate":
                self.sock.sendall(data)
                self.sock.sendall(data)
            elif fault == "delay":
                time.sleep(self.plan.profile.frame_delay_s)
                self.sock.sendall(data)
            elif fault == "corrupt":
                self.sock.sendall(self._corrupted(data, index))
            elif fault == "truncate":
                # Length prefix plus a strict prefix of the body, then a
                # hard close: the peer sees EOF mid-frame.
                cut = _LENGTH.size + max(0, (len(data) - _LENGTH.size) // 2)
                try:
                    self.sock.sendall(data[:cut])
                finally:
                    self.close()
                raise ConnectionResetError(
                    f"chaos[{self.scope}]: frame {index} truncated mid-send")
            else:  # reset
                self.close()
                raise ConnectionResetError(
                    f"chaos[{self.scope}]: connection reset at frame {index}")

    def _corrupted(self, data: bytes, index: int) -> bytes:
        """Flip one body byte (never the length prefix — a corrupt length
        would test the allocation guard, which has its own unit test,
        instead of the JSON-garbage path every corrupt frame hits)."""
        body = bytearray(data)
        position = _LENGTH.size + int(
            self.plan.fraction(self.scope, index, "corrupt-at")
            * (len(body) - _LENGTH.size))
        body[position] ^= 0xFF
        return bytes(body)
