"""Hypothesis-driven differential verification of the dynamic runtime.

Random :class:`~repro.workloads.fuzz.FuzzSpec` configurations are run
under the golden managers through both dynamic tracking paths; every
example asserts the same invariants the pinned corpus pins
(``test_corpus.py``), so a failing example here is a new regression case
to add there.

The CI workflow selects the ``ci`` hypothesis profile (registered in
``tests/conftest.py``: derandomized, bounded examples, no deadline), so
these tests are exactly reproducible across CI runs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.machine import Machine, MachineConfig
from repro.workloads.fuzz import FuzzSpec, fuzz_program

from golden_manager_factories import GOLDEN_TEST_MANAGERS


@st.composite
def fuzz_specs(draw) -> FuzzSpec:
    """Random fuzzer configurations, bounded for test runtime."""
    return FuzzSpec(
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        max_depth=draw(st.integers(min_value=0, max_value=4)),
        max_children=draw(st.integers(min_value=0, max_value=4)),
        roots=draw(st.integers(min_value=1, max_value=6)),
        conflict_density=draw(st.floats(min_value=0.0, max_value=1.0)),
        inout_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
        join_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
        mid_taskwait_probability=draw(st.floats(min_value=0.0, max_value=0.5)),
        master_barrier_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
        duration_range_us=(0.0, draw(st.floats(min_value=0.5, max_value=30.0))),
        max_tasks=draw(st.integers(min_value=8, max_value=150)),
        recurse_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
    )


@given(spec=fuzz_specs(),
       cores=st.integers(min_value=1, max_value=6),
       manager_key=st.sampled_from(sorted(GOLDEN_TEST_MANAGERS)))
@settings(max_examples=30, deadline=None)
def test_differential_paths_and_invariants(spec, cores, manager_key):
    """run (compiled) vs run_stream (dynamic) must agree bit-for-bit."""
    factory = GOLDEN_TEST_MANAGERS[manager_key]
    program = fuzz_program(spec)

    compiled_machine = Machine(factory(), MachineConfig(num_cores=cores, validate=True))
    compiled = compiled_machine.run(program)

    dynamic_machine = Machine(factory(), MachineConfig(num_cores=cores, validate=True))
    dynamic = dynamic_machine.run_stream(program)

    assert compiled.makespan_us == dynamic.makespan_us
    assert compiled_machine.last_ready_order == dynamic_machine.last_ready_order
    assert compiled.start_times == dynamic.start_times
    assert compiled.finish_times == dynamic.finish_times
    assert compiled.num_tasks == program.metadata["num_tasks"]
    assert len(compiled.finish_times) == compiled.num_tasks
    # Work conservation: the busy time the cores report covers at least
    # the declared compute of every task (worker overhead may add more).
    assert compiled.core_busy_us >= compiled.total_work_us - 1e-6


@given(spec=fuzz_specs())
@settings(max_examples=15, deadline=None)
def test_elaboration_matches_dynamic_task_set(spec):
    """The serial elaboration spawns exactly the tasks the dynamic run does
    (ids differ — submission order vs depth-first — but counts, functions
    and parameter multisets must match)."""
    program = fuzz_program(spec)
    trace = program.elaborate()

    machine = Machine(GOLDEN_TEST_MANAGERS["ideal"](),
                      MachineConfig(num_cores=4, validate=True))
    result = machine.run(program)

    assert trace.num_tasks == result.num_tasks
    assert trace.functions()  # non-empty
    # Elaboration is itself deterministic: a second build is identical.
    elaborated_params = sorted(
        (task.function, tuple(sorted((p.address, p.direction.value) for p in task.params)))
        for task in trace.tasks())
    rerun_params = sorted(
        (task.function, tuple(sorted((p.address, p.direction.value) for p in task.params)))
        for task in fuzz_program(spec).elaborate().tasks())
    assert elaborated_params == rerun_params


@given(spec=fuzz_specs(), cores=st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_backpressure_preserves_invariants(spec, cores):
    """max_in_flight window stalls never starve or deadlock the run."""
    program = fuzz_program(spec)
    machine = Machine(GOLDEN_TEST_MANAGERS["nexussharp"](),
                      MachineConfig(num_cores=cores, validate=True))
    result = machine.run_dynamic(program, compiled=False, max_in_flight=3)
    assert result.num_tasks == program.metadata["num_tasks"]
    assert len(result.finish_times) == result.num_tasks
