"""Worker quarantine: tell a bad worker from a poisoned cell.

When a worker dies the scheduler requeues its cells — but *why* it died
matters for what happens next:

* **Poisoned cell** — the same cell kills every worker that touches it.
  The frontier's per-cell ``max_attempts`` budget already fail-fasts
  this case (a cell that kills N diverse workers in a row is a bug, not
  bad luck); the quarantine deliberately does **not** count such deaths
  against the workers involved.
* **Bad worker** — one worker keeps dying while holding *diverse* cells
  (a broken host, flaky NIC, chaos injection).  After ``max_deaths``
  deaths spanning at least ``min_distinct_cells`` distinct cells, the
  worker identity is quarantined: the scheduler refuses its future
  handshakes and stops respawning it, so a crash-looping worker cannot
  burn the whole sweep's retry budget.  The default budget (5 deaths)
  is deliberately generous: under chaotic wire conditions a healthy
  worker legitimately dies a few times per sweep (corrupt frames,
  injected crashes), and quarantining the whole pool would sink the
  sweep a retry could have saved.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.common.errors import ConfigurationError


class WorkerQuarantine:
    """Death ledger per worker identity with a diversity-aware trip rule."""

    def __init__(self, *, max_deaths: int = 5, min_distinct_cells: int = 2) -> None:
        if max_deaths < 1:
            raise ConfigurationError(f"max_deaths must be >= 1, got {max_deaths}")
        if min_distinct_cells < 1:
            raise ConfigurationError(
                f"min_distinct_cells must be >= 1, got {min_distinct_cells}")
        self.max_deaths = max_deaths
        self.min_distinct_cells = min_distinct_cells
        self._deaths: Dict[str, int] = {}
        self._cells_seen: Dict[str, Set[int]] = {}
        self._quarantined: Set[str] = set()

    def record_death(self, worker_id: str, cells: Iterable[int]) -> bool:
        """Record one death of ``worker_id`` holding ``cells``.

        Returns ``True`` when this death tips the worker into
        quarantine.  A death with no cells in flight still counts as a
        death (a worker that dies idle over and over is just as bad),
        but cell diversity is what distinguishes it from a poisoned
        cell: a worker whose every death involves the *same* single cell
        never trips the quarantine — the cell's own attempt budget
        handles that case.
        """
        cells = list(cells)
        self._deaths[worker_id] = self._deaths.get(worker_id, 0) + 1
        self._cells_seen.setdefault(worker_id, set()).update(cells)
        if worker_id in self._quarantined:
            return False
        diverse = len(self._cells_seen[worker_id]) >= self.min_distinct_cells
        if self._deaths[worker_id] >= self.max_deaths and diverse:
            self._quarantined.add(worker_id)
            return True
        return False

    def is_quarantined(self, worker_id: str) -> bool:
        return worker_id in self._quarantined

    def deaths(self, worker_id: str) -> int:
        return self._deaths.get(worker_id, 0)

    @property
    def quarantined(self) -> List[str]:
        return sorted(self._quarantined)

    def to_json(self) -> dict:
        return {
            "quarantined": self.quarantined,
            "deaths": dict(sorted(self._deaths.items())),
        }
