"""The event-driven multicore machine simulator.

The machine reproduces the paper's testbench loop (Section V-B):

    "It submits new tasks to Nexus#, receives ready task information from
    it, schedules ready tasks to worker cores and simulates their
    execution, and finally notifies Nexus# of finished tasks."

The master thread walks the trace: every task submission goes to the
manager (whose ``accept_time`` throttles the submission rate — IO
back-pressure for the hardware managers, software creation cost for
Nanos), every ``taskwait`` blocks until all outstanding tasks finish, and
every ``taskwait on`` blocks until the last writer of the given address
finishes — unless the manager does not support the pragma (Nexus++), in
which case it degrades to a full ``taskwait`` exactly as the paper
describes.

Ready tasks are dispatched to worker cores in the order the manager
reports them (the RTS reads them from the Nexus IO unit in FIFO order);
"free worker cores start executing tasks directly after they are
reported as ready", with no extra communication overhead, matching the
paper's *Nexus# only* simulation mode.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Set, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.validation import check_positive
from repro.managers.base import TaskManagerModel
from repro.system.results import MachineResult
from repro.trace.dag import build_dependency_graph, validate_schedule
from repro.trace.events import TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent
from repro.trace.task import TaskDescriptor
from repro.trace.trace import Trace

# Event kinds, ordered by processing priority at equal timestamps: task
# completions first (they free cores and resolve barriers), then ready
# notifications, then master progress.
_PRIORITY_DONE = 0
_PRIORITY_READY = 1
_PRIORITY_MASTER = 2


@dataclass(frozen=True)
class MachineConfig:
    """Configuration of a machine simulation."""

    #: Number of worker cores executing tasks.
    num_cores: int
    #: When true, the resulting schedule is checked against the reference
    #: dependency DAG (slow for very large traces; used by tests).
    validate: bool = False
    #: When true, per-task schedule times are kept in the result (they are
    #: always collected; this flag only controls whether they are retained,
    #: to save memory on very large sweeps).
    keep_schedule: bool = True

    def __post_init__(self) -> None:
        check_positive("num_cores", self.num_cores)


class Machine:
    """Simulates one trace on one manager with a fixed number of cores."""

    def __init__(self, manager: TaskManagerModel, config: MachineConfig) -> None:
        self.manager = manager
        self.config = config

    # -- public API -------------------------------------------------------------
    def run(self, trace: Trace) -> MachineResult:
        """Replay ``trace`` and return the resulting schedule and metrics."""
        manager = self.manager
        manager.reset()

        heap: List[Tuple[float, int, int, object]] = []
        counter = itertools.count()

        def push(time: float, priority: int, payload: object) -> None:
            heapq.heappush(heap, (time, priority, next(counter), payload))

        # --- state -------------------------------------------------------------
        events = trace.events
        num_events = len(events)
        event_index = 0
        master_time = 0.0
        master_blocked: Optional[Tuple[str, Optional[int]]] = None
        master_done = False

        idle_cores = self.config.num_cores
        ready_queue: Deque[int] = deque()
        outstanding = 0

        task_map: Dict[int, TaskDescriptor] = {}
        last_writer: Dict[int, int] = {}
        finished: Set[int] = set()

        submit_times: Dict[int, float] = {}
        ready_times: Dict[int, float] = {}
        start_times: Dict[int, float] = {}
        finish_times: Dict[int, float] = {}
        core_busy_us = 0.0
        makespan = 0.0

        worker_overhead = manager.worker_overhead_us

        # --- helpers -------------------------------------------------------------
        def start_task(task_id: int, now: float) -> None:
            nonlocal idle_cores, core_busy_us
            task = task_map[task_id]
            start = now
            duration = worker_overhead + task.duration_us
            end = start + duration
            idle_cores -= 1
            core_busy_us += duration
            start_times[task_id] = start
            finish_times[task_id] = end
            push(end, _PRIORITY_DONE, ("done", task_id))

        def dispatch_ready(task_id: int, now: float) -> None:
            if task_id in start_times:
                raise SimulationError(f"task {task_id} reported ready twice")
            if idle_cores > 0:
                start_task(task_id, now)
            else:
                ready_queue.append(task_id)

        def barrier_satisfied(now: float) -> bool:
            """Check (and clear) the master's barrier if it is resolved."""
            nonlocal master_blocked, master_time
            if master_blocked is None:
                return False
            kind, waited_task = master_blocked
            if kind == "all":
                if outstanding != 0:
                    return False
            else:
                assert waited_task is not None
                if waited_task not in finished:
                    return False
            master_blocked = None
            master_time = max(master_time, now)
            return True

        def advance_master(now: float) -> None:
            """Process trace events until a submission, a block, or the end."""
            nonlocal event_index, master_time, master_blocked, master_done, outstanding
            master_time = max(master_time, now)
            while event_index < num_events:
                event = events[event_index]
                if isinstance(event, TaskSubmitEvent):
                    task = event.task
                    event_index += 1
                    task_map[task.task_id] = task
                    submit_times[task.task_id] = master_time
                    outstanding += 1
                    for param in task.params:
                        if param.direction.writes:
                            last_writer[param.address] = task.task_id
                    outcome = manager.submit(task, master_time)
                    for notification in outcome.ready:
                        ready_times[notification.task_id] = notification.time_us
                        push(max(notification.time_us, master_time), _PRIORITY_READY,
                             ("ready", notification.task_id))
                    next_time = max(outcome.accept_time_us,
                                    master_time + task.creation_overhead_us)
                    if next_time < master_time:
                        raise SimulationError(
                            f"manager {manager.name} accepted task {task.task_id} in the past"
                        )
                    master_time = next_time
                    if event_index < num_events:
                        push(master_time, _PRIORITY_MASTER, ("master", None))
                    else:
                        master_done = True
                    return
                if isinstance(event, TaskwaitEvent):
                    if outstanding == 0:
                        event_index += 1
                        continue
                    master_blocked = ("all", None)
                    return
                if isinstance(event, TaskwaitOnEvent):
                    degrade = not manager.supports_taskwait_on
                    if degrade:
                        if outstanding == 0:
                            event_index += 1
                            continue
                        master_blocked = ("all", None)
                        return
                    writer = last_writer.get(event.address)
                    if writer is None or writer in finished:
                        event_index += 1
                        continue
                    master_blocked = ("task", writer)
                    return
                raise SimulationError(f"unknown trace event {event!r}")
            master_done = True

        # --- main loop ------------------------------------------------------------
        advance_master(0.0)
        while heap:
            now, _priority, _seq, payload = heapq.heappop(heap)
            makespan = max(makespan, now)
            kind = payload[0]
            if kind == "master":
                if master_blocked is None and not master_done:
                    advance_master(now)
            elif kind == "ready":
                dispatch_ready(payload[1], now)
            elif kind == "done":
                task_id = payload[1]
                outstanding -= 1
                finished.add(task_id)
                outcome = manager.finish(task_id, now)
                for notification in outcome.ready:
                    ready_times[notification.task_id] = notification.time_us
                    push(max(notification.time_us, now), _PRIORITY_READY,
                         ("ready", notification.task_id))
                # The freed core picks up the next queued ready task, if any.
                idle_cores += 1
                if ready_queue:
                    next_task = ready_queue.popleft()
                    start_task(next_task, now)
                # Barriers resolve on completions.
                if barrier_satisfied(now) and not master_done:
                    push(master_time, _PRIORITY_MASTER, ("master", None))
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event payload {payload!r}")

        # --- consistency checks -----------------------------------------------------
        expected_tasks = trace.num_tasks
        if len(finish_times) != expected_tasks:
            missing = expected_tasks - len(finish_times)
            raise SimulationError(
                f"{manager.name} on {trace.name}: {missing} of {expected_tasks} tasks never ran "
                "(deadlock or lost ready notification)"
            )
        if not master_done or master_blocked is not None:
            raise SimulationError(
                f"{manager.name} on {trace.name}: master thread did not reach the end of the trace"
            )
        makespan = max(makespan, master_time)

        if self.config.validate:
            validate_schedule(trace, start_times, finish_times)

        keep = self.config.keep_schedule
        return MachineResult(
            trace_name=trace.name,
            manager_name=manager.name,
            num_cores=self.config.num_cores,
            makespan_us=makespan,
            total_work_us=trace.total_work_us,
            num_tasks=expected_tasks,
            submit_times=submit_times if keep else {},
            ready_times=ready_times if keep else {},
            start_times=start_times if keep else {},
            finish_times=finish_times if keep else {},
            master_finish_us=master_time,
            core_busy_us=core_busy_us,
            manager_stats=dict(manager.statistics()),
        )


def simulate(
    trace: Trace,
    manager: TaskManagerModel,
    num_cores: int,
    *,
    validate: bool = False,
    keep_schedule: bool = True,
) -> MachineResult:
    """Convenience wrapper: run ``trace`` on ``manager`` with ``num_cores``."""
    machine = Machine(manager, MachineConfig(num_cores=num_cores, validate=validate, keep_schedule=keep_schedule))
    return machine.run(trace)
