"""streamcluster: k-median streaming clustering workload (Starbench).

Section V-A: "streamcluster is a streaming data analysis kernel with
fork-join-style parallelism.  It consists of a chain of groups of about
400 tasks followed by a taskwait."  Table II: 652776 tasks, 237908 ms of
work, 364 µs average task size, 1-3 dependencies per task.

The generated structure mirrors that description: the input stream is
processed in *rounds*; each round evaluates a candidate set of centres by
fanning out ~``group_size`` gain-computation tasks (each reading the
shared centre table and updating its own chunk of points), joining with a
``taskwait``, and then running a short serial ``recluster`` task that
rewrites the centre table — which is what makes consecutive rounds
dependent and gives the runtime its periodic synchronisation cost.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.trace.events import TraceEvent
from repro.trace.stream import EventEmitter, TraceStream, materialize
from repro.trace.trace import Trace
from repro.workloads.addressing import AddressSpace

#: Paper values (Table II).
PAPER_NUM_TASKS = 652776
PAPER_AVG_TASK_US = 364.0
#: "groups of about 400 tasks"
PAPER_GROUP_SIZE = 400


def stream_streamcluster(
    scale: float = 1.0,
    seed: Optional[int] = None,
    *,
    num_rounds: Optional[int] = None,
    group_size: int = PAPER_GROUP_SIZE,
    avg_task_us: float = PAPER_AVG_TASK_US,
    recluster_us: float = 900.0,
    duration_cv: float = 0.25,
) -> TraceStream:
    """Stream a streamcluster trace (see :func:`generate_streamcluster`).

    Live generator state is O(group_size) — the paper's full 652776-task
    workload streams with the same footprint as a single round.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    if group_size <= 0:
        raise ConfigurationError(f"group_size must be positive, got {group_size}")
    if num_rounds is None:
        paper_rounds = PAPER_NUM_TASKS / (PAPER_GROUP_SIZE + 1)
        num_rounds = max(1, round(paper_rounds * scale))
    if num_rounds <= 0:
        raise ConfigurationError(f"num_rounds must be positive, got {num_rounds}")
    rounds = num_rounds

    def events() -> Iterator[TraceEvent]:
        rng = make_rng(seed, "streamcluster")
        space = AddressSpace(seed=seed)
        emit = EventEmitter()
        centers_address = space.alloc_one()
        chunk_addresses = space.alloc(group_size)
        for _round in range(rounds):
            jitter = rng.normal(1.0, duration_cv, size=group_size).clip(min=0.1)
            for chunk in range(group_size):
                yield emit.task(
                    "compute_gain",
                    duration_us=float(avg_task_us * jitter[chunk]),
                    inputs=[centers_address],
                    inouts=[chunk_addresses[chunk]],
                )
            yield emit.taskwait()
            yield emit.task(
                "recluster",
                duration_us=float(max(recluster_us * 0.1,
                                      rng.normal(recluster_us, recluster_us * duration_cv))),
                inouts=[centers_address],
            )
        yield emit.taskwait()

    return TraceStream(
        "streamcluster",
        events,
        metadata={
            "suite": "Starbench",
            "num_rounds": num_rounds,
            "group_size": group_size,
            "avg_task_us": avg_task_us,
            "scale": scale,
        },
    )


def generate_streamcluster(
    scale: float = 1.0,
    seed: Optional[int] = None,
    *,
    num_rounds: Optional[int] = None,
    group_size: int = PAPER_GROUP_SIZE,
    avg_task_us: float = PAPER_AVG_TASK_US,
    recluster_us: float = 900.0,
    duration_cv: float = 0.25,
) -> Trace:
    """Generate a streamcluster trace.

    Parameters
    ----------
    scale:
        Scales the number of rounds (task count scales with it).
    seed:
        Seed for duration jitter.
    num_rounds:
        Explicit number of fork-join rounds (overrides ``scale``).
    group_size:
        Number of gain-computation tasks per round (~400 in the paper).
    avg_task_us:
        Mean duration of the gain-computation tasks.
    recluster_us:
        Duration of the serial per-round recluster task.
    duration_cv:
        Coefficient of variation of task durations.
    """
    return materialize(stream_streamcluster(
        scale, seed,
        num_rounds=num_rounds, group_size=group_size,
        avg_task_us=avg_task_us, recluster_us=recluster_us, duration_cv=duration_cv))
