"""Set-associative address table.

The hardware keeps the per-address state of
:class:`repro.taskgraph.address_state.AddressCell` in a cache-like,
set-associative memory ("It uses the same set-associative data structure
to maintain a Kick-Off List for each incoming memory address",
Section IV-C).  Functionally the table behaves like a dictionary keyed by
address; structurally it has a bounded number of sets and ways, and an
insertion that maps to a full set stalls the task graph "until one task
finishes, which its parameters share the same line" (Section IV-D).

This model keeps the functional behaviour exact while accounting for the
structural hazards: entries occupy ways in their set while any unfinished
task references them, long kick-off lists spill into chained *dummy
entries* that occupy additional ways (the mechanism the
Gaussian-elimination experiment validates), and set-conflict events are
counted so the timing layer can charge stall cycles for them.

Two access paths share the storage model:

* the **raw-address API** (:meth:`AddressTable.insert_access` /
  :meth:`finish_access`) keeps a dictionary of
  :class:`~repro.taskgraph.address_state.AddressCell` cells — the path
  for direct users and streams whose address set is not known up front;
* the **compiled path** of
  :class:`repro.taskgraph.tracker.DependencyTracker` owns cells in a
  flat array indexed by the trace's dense address ids and only uses the
  table for its structural accounting — the per-set occupancy array
  (``set_occupancy_array``), the way/dummy-entry arithmetic
  (:func:`ways_for`) and the statistics/live counters (``stats`` /
  ``_dense_live``), updated inline in the tracker's hot loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.common.constants import (
    DEFAULT_KICKOFF_CAPACITY,
    DEFAULT_TABLE_SETS,
    DEFAULT_TABLE_WAYS,
)
from repro.common.errors import SimulationError
from repro.common.validation import check_positive, check_power_of_two
from repro.taskgraph.address_state import AccessMode, AddressCell, MODE_OF_FLAGS, Waiter


def _set_index(address: int, num_sets: int) -> int:
    """Set (line) index an address maps to.

    Addresses are cache-line aligned in the generated traces; skip the
    low 6 offset bits so consecutive lines land in consecutive sets.
    Module-level so the hot access paths and :meth:`AddressTable.
    set_index` share one definition.
    """
    return (address >> 6) & (num_sets - 1)


def ways_for(kickoff_length: int, kickoff_capacity: int) -> int:
    """Ways an entry with ``kickoff_length`` waiters occupies.

    One way for the entry itself plus one chained dummy entry per
    overflowing chunk of the kick-off list (the paper's dummy-entry
    mechanism).  The hot paths only evaluate this when a kick-off list
    actually crosses the capacity boundary (``kickoff_length`` and its
    neighbour both ``<= capacity`` means one way on both sides).
    """
    if kickoff_length <= kickoff_capacity:
        return 1
    overflow = kickoff_length - kickoff_capacity
    return 1 + -(-overflow // kickoff_capacity)


@dataclass(slots=True)
class TableStats:
    """Cumulative statistics of an :class:`AddressTable`.

    ``slots=True``: the lookup/insertion counters are bumped once per
    access on the dependency hot path.
    """

    lookups: int = 0
    insertions: int = 0
    evictions: int = 0
    set_conflicts: int = 0
    dummy_entries_peak: int = 0
    max_live_entries: int = 0


class AddressTable:
    """Set-associative container of per-address dependency state.

    Parameters
    ----------
    num_sets:
        Number of sets (lines); must be a power of two so the set index is
        a simple bit slice of the address, as in the hardware.
    ways:
        Associativity of each set.
    kickoff_capacity:
        Number of waiting-task slots one entry can hold before the kick-off
        list spills into a chained dummy entry occupying another way.
    name:
        Identifier used in statistics (e.g. ``"TG3"``).
    """

    def __init__(
        self,
        num_sets: int = DEFAULT_TABLE_SETS,
        ways: int = DEFAULT_TABLE_WAYS,
        kickoff_capacity: int = DEFAULT_KICKOFF_CAPACITY,
        name: str = "task-graph",
    ) -> None:
        check_power_of_two("num_sets", num_sets)
        check_positive("ways", ways)
        check_positive("kickoff_capacity", kickoff_capacity)
        self.num_sets = num_sets
        self.ways = ways
        self.kickoff_capacity = kickoff_capacity
        self.name = name
        self._entries: Dict[int, AddressCell] = {}
        #: Ways in use per set — a flat list (the compiled engine indexes
        #: it with precomputed set indices; a dict would re-hash per access).
        self._set_occupancy: List[int] = [0] * num_sets
        #: Entries owned by the compiled engine (dense cells live in the
        #: tracker's array, not in ``_entries``).
        self._dense_live = 0
        self.stats = TableStats()

    # -- geometry -----------------------------------------------------------
    def set_index(self, address: int) -> int:
        """Set (line) index the address maps to."""
        return _set_index(address, self.num_sets)

    @property
    def capacity_entries(self) -> int:
        """Total number of entries (ways) in the table."""
        return self.num_sets * self.ways

    @property
    def live_entries(self) -> int:
        """Number of addresses currently tracked (raw + compiled)."""
        return len(self._entries) + self._dense_live

    def ways_used(self, address: int) -> int:
        """Number of ways the entry for ``address`` occupies (with dummies)."""
        entry = self._entries.get(address)
        if entry is None:
            return 0
        return ways_for(entry.kickoff_length, self.kickoff_capacity)

    def set_occupancy(self, set_idx: int) -> int:
        """Number of ways currently used in set ``set_idx``."""
        return self._set_occupancy[set_idx]

    @property
    def set_occupancy_array(self) -> List[int]:
        """The mutable per-set way counters (compiled-engine hot path)."""
        return self._set_occupancy

    # -- functional interface -------------------------------------------------
    def lookup(self, address: int) -> Optional[AddressCell]:
        """Return the entry for ``address`` if it is currently tracked."""
        self.stats.lookups += 1
        return self._entries.get(address)

    def insert_access(self, address: int, task_id: int, mode: AccessMode) -> tuple[bool, bool]:
        """Record that ``task_id`` accesses ``address``.

        Returns ``(must_wait, set_conflict)`` where ``must_wait`` says the
        task was appended to the address' kick-off list and
        ``set_conflict`` says the insertion hit a structurally full set
        (the timing layer charges a stall for it).
        """
        stats = self.stats
        stats.lookups += 1
        entries = self._entries
        entry = entries.get(address)
        set_idx = _set_index(address, self.num_sets)
        occupancy = self._set_occupancy
        set_conflict = False
        if entry is None:
            if occupancy[set_idx] >= self.ways:
                # Structurally the hardware would stall until a way frees
                # up; functionally we still track the address (the paper's
                # dummy-entry mechanism guarantees forward progress) but
                # report the conflict so timing can charge for it.
                set_conflict = True
                stats.set_conflicts += 1
            entry = AddressCell(address)
            entries[address] = entry
            occupancy[set_idx] += 1
            stats.insertions += 1
            live = len(entries) + self._dense_live
            if live > stats.max_live_entries:
                stats.max_live_entries = live
            # A fresh entry has no waiters: the access always proceeds.
            must_wait = entry.insert(task_id, mode.flags)
            return must_wait, set_conflict
        capacity = self.kickoff_capacity
        length_before = entry.kickoff_length
        must_wait = entry.insert(task_id, mode.flags)
        if must_wait and length_before + 1 > capacity:
            before_ways = ways_for(length_before, capacity)
            after_ways = ways_for(length_before + 1, capacity)
            if after_ways != before_ways:
                occupancy[set_idx] += after_ways - before_ways
                if after_ways - 1 > stats.dummy_entries_peak:
                    stats.dummy_entries_peak = after_ways - 1
        return must_wait, set_conflict

    def finish_access(self, address: int, task_id: int) -> List[Waiter]:
        """Record that ``task_id`` (an active accessor of ``address``) finished.

        Returns the list of :class:`~repro.taskgraph.address_state.Waiter`
        records that were kicked off.  When the address becomes idle its
        entry is evicted, freeing its way(s).
        """
        entry = self._entries.get(address)
        if entry is None:
            raise SimulationError(f"{self.name}: finish on untracked address {address:#x}")
        set_idx = _set_index(address, self.num_sets)
        capacity = self.kickoff_capacity
        length_before = entry.kickoff_length
        released_flags: List[int] = []
        released_ids = entry.finish(task_id, flags_out=released_flags)
        occupancy = self._set_occupancy
        if entry.is_idle:
            del self._entries[address]
            before_ways = ways_for(length_before, capacity)
            occupancy[set_idx] = max(0, occupancy[set_idx] - before_ways)
            self.stats.evictions += 1
        elif length_before > capacity or entry.kickoff_length > capacity:
            before_ways = ways_for(length_before, capacity)
            after_ways = ways_for(entry.kickoff_length, capacity)
            if after_ways != before_ways:
                occupancy[set_idx] = max(0, occupancy[set_idx] + (after_ways - before_ways))
        modes = MODE_OF_FLAGS
        return [
            Waiter(waiter_id, modes[flag])
            for waiter_id, flag in zip(released_ids, released_flags)
        ]

    def iter_entries(self) -> Iterator[AddressCell]:
        """Iterate over the raw-path tracked address entries."""
        return iter(self._entries.values())

    def reset(self) -> None:
        """Drop all entries and statistics."""
        self._entries.clear()
        self._set_occupancy = [0] * self.num_sets
        self._dense_live = 0
        self.stats = TableStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AddressTable({self.name!r}, sets={self.num_sets}, ways={self.ways}, "
            f"live={self.live_entries})"
        )
