"""Store-level fault injection: a chaotic :class:`ResultCache`.

``ChaosResultCache`` is a drop-in shared result store that damages its
own entries on the schedule of a :class:`~repro.chaos.plan.FaultPlan`:

* **bitflip** — the entry is published normally, then one byte of the
  file is flipped in place (bit rot / unclean filesystem).  The store's
  self-healing read path must detect, quarantine and re-simulate it.
* **torn-tmp** — the write "dies" before its atomic rename: an orphan
  ``*.tmp`` with half the document is left in the entry directory and
  no entry is published.  ``clear`` must sweep it; readers must ignore
  it; the sweep must still complete (the result frame, not the store,
  is the path of record).
* **slow-read** — a read stalls (cold NFS, contended disk) before
  returning normally; nothing downstream may deadlock on it.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.chaos.plan import FaultPlan
from repro.experiments.cache import ResultCache
from repro.trace.serialization import canonical_json_line


class ChaosResultCache(ResultCache):
    """A ``ResultCache`` that injects plan-scheduled store damage."""

    def __init__(self, root: Union[str, Path], plan: FaultPlan,
                 scope: str) -> None:
        super().__init__(root)
        self.plan = plan
        self.scope = scope
        self._lock = threading.Lock()
        self._gets = 0
        self._puts = 0
        self.injected: Dict[str, int] = {}

    def _decide(self, op: str) -> Optional[str]:
        with self._lock:
            if op == "get":
                index = self._gets
                self._gets += 1
            else:
                index = self._puts
                self._puts += 1
        fault = self.plan.decide_cache(self.scope, index, op)
        if fault is not None:
            self.injected[fault] = self.injected.get(fault, 0) + 1
        return fault

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        if self._decide("get") == "slow-read":
            time.sleep(self.plan.profile.cache_slow_read_s)
        return super().get(key)

    def put(self, key: str, document: Dict[str, Any]) -> Path:
        fault = self._decide("put")
        if fault == "torn-tmp":
            # A writer killed between mkstemp and os.replace: half the
            # document, no published entry.
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            text = canonical_json_line(document)
            fd, _ = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text[:max(1, len(text) // 2)])
            return path
        path = super().put(key, document)
        if fault == "bitflip":
            raw = bytearray(path.read_bytes())
            if raw:
                position = int(self.plan.fraction(
                    self.scope, self._puts, "bitflip-at") * len(raw))
                raw[position] ^= 0x20
                path.write_bytes(bytes(raw))
        return path
