"""Unit tests of the frontier: chunking, stealing, requeue, budgets."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.distributed.frontier import SweepFrontier


def drain(frontier, worker):
    """Pop chunks for ``worker`` until the queue is dry."""
    chunks = []
    while True:
        chunk = frontier.next_chunk(worker)
        if not chunk:
            return chunks
        chunks.append(chunk)


class TestChunking:
    def test_ungrouped_cells_split_by_chunk_size(self):
        frontier = SweepFrontier(range(10), chunk_size=4)
        assert drain(frontier, "w0") == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_locality_runs_are_never_split(self):
        groups = ["a", "a", "b", "b", "b", "a"]
        frontier = SweepFrontier(range(6), groups, chunk_size=16)
        assert drain(frontier, "w0") == [[0, 1], [2, 3, 4], [5]]

    def test_long_runs_still_respect_chunk_size(self):
        frontier = SweepFrontier(range(7), ["x"] * 7, chunk_size=3)
        assert drain(frontier, "w0") == [[0, 1, 2], [3, 4, 5], [6]]

    def test_validation(self):
        with pytest.raises(SimulationError):
            SweepFrontier([1], chunk_size=0)
        with pytest.raises(SimulationError):
            SweepFrontier([1], max_attempts=0)
        with pytest.raises(SimulationError):
            SweepFrontier([1, 2], ["only-one-key"])


class TestProgress:
    def test_complete_tracks_done_and_assignment(self):
        frontier = SweepFrontier(range(4), chunk_size=2)
        chunk = frontier.next_chunk("w0")
        assert frontier.remaining_for("w0") == 2
        assert frontier.complete("w0", chunk[0]) is True
        assert frontier.remaining_for("w0") == 1
        assert frontier.done_count == 1
        assert not frontier.is_done

    def test_duplicate_completion_is_tolerated(self):
        frontier = SweepFrontier(range(2), chunk_size=2)
        frontier.next_chunk("w0")
        assert frontier.complete("w0", 0) is True
        assert frontier.complete("w1", 0) is False  # raced steal duplicate
        assert frontier.done_count == 1

    def test_is_done_after_all_cells(self):
        frontier = SweepFrontier(range(3), chunk_size=8)
        for cell in frontier.next_chunk("w0"):
            frontier.complete("w0", cell)
        assert frontier.is_done
        assert not frontier.has_queued


class TestStealing:
    def test_steal_moves_tail_half(self):
        frontier = SweepFrontier(range(8), chunk_size=8)
        frontier.next_chunk("victim")
        stolen = frontier.steal("victim", "thief")
        assert stolen == [4, 5, 6, 7]  # victim keeps the head it is running
        assert frontier.remaining_for("victim") == 4
        assert frontier.remaining_for("thief") == 4

    def test_steal_rounds_in_victims_favour(self):
        frontier = SweepFrontier(range(5), chunk_size=8)
        frontier.next_chunk("victim")
        assert frontier.steal("victim", "thief") == [3, 4]

    def test_small_assignments_are_not_stolen(self):
        frontier = SweepFrontier(range(1), chunk_size=8)
        frontier.next_chunk("victim")
        assert frontier.steal("victim", "thief") == []

    def test_steal_victim_picks_most_loaded(self):
        frontier = SweepFrontier(range(12), chunk_size=4)
        frontier.next_chunk("small")     # 4 cells
        frontier.next_chunk("big")       # 4 cells
        frontier.next_chunk("big")       # 8 cells total
        assert frontier.steal_victim("thief") == "big"
        assert frontier.steal_victim("big") == "small"

    def test_steal_victim_ignores_single_cell_workers(self):
        frontier = SweepFrontier(range(1), chunk_size=1)
        frontier.next_chunk("busy")
        assert frontier.steal_victim("thief") is None


class TestFailure:
    def test_fail_worker_requeues_at_front_in_order(self):
        frontier = SweepFrontier(range(8), chunk_size=2)
        dead = frontier.next_chunk("dead") + frontier.next_chunk("dead")  # [0..3]
        frontier.complete("dead", dead[0])
        assert frontier.fail_worker("dead") == [1, 2, 3]
        # Requeued cells come back first, still in grid order, then the
        # untouched remainder of the original queue.
        assert drain(frontier, "w1") == [[1], [2, 3], [4, 5], [6, 7]]

    def test_fail_worker_without_assignment_is_noop(self):
        frontier = SweepFrontier(range(2), chunk_size=2)
        assert frontier.fail_worker("stranger") == []

    def test_attempt_budget_exhaustion_raises(self):
        frontier = SweepFrontier(range(2), chunk_size=2, max_attempts=2)
        frontier.next_chunk("w0")          # attempt 1
        frontier.fail_worker("w0")
        frontier.next_chunk("w1")          # attempt 2 == budget
        with pytest.raises(SimulationError, match="giving up"):
            frontier.fail_worker("w1")

    def test_steals_count_against_the_budget(self):
        frontier = SweepFrontier(range(4), chunk_size=4, max_attempts=2)
        frontier.next_chunk("victim")              # attempt 1 for all
        frontier.steal("victim", "thief")          # attempt 2 for [2, 3]
        with pytest.raises(SimulationError):
            frontier.fail_worker("thief")
        # The victim's untouched head is still within budget.
