"""Dependency analysis of traces.

The task managers under study derive dependencies *dynamically* from the
parameter addresses, exactly like the OmpSs runtime: a task depends on an
earlier task when both touch the same address and at least one of them
writes it (RAW, WAR and WAW hazards).  This module performs the same
analysis *statically* on a trace, producing a reference DAG used for

* the Ideal ("No Overhead") manager, which needs ground-truth readiness;
* schedule validation — every simulated execution is checked against the
  DAG so a buggy hardware model cannot silently produce wrong speedups;
* workload statistics (dependency counts for Table II, critical paths).

The analysis is address-based, so it reproduces the managers' view of the
program rather than the programmer's intent; this matters e.g. for the
Gaussian-elimination workload, where many tasks read the address produced
by a single pivot task.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.common.errors import SimulationError, TraceError
from repro.trace.events import TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent
from repro.trace.task import TaskDescriptor
from repro.trace.trace import Trace


@dataclass
class DependencyGraph:
    """The task dependency DAG of a trace.

    Attributes
    ----------
    trace_name:
        Name of the originating trace.
    predecessors / successors:
        Adjacency maps keyed by task id.  Barrier-induced orderings are
        *not* included here — barriers constrain the master thread, not
        the data-flow between tasks — but the last-writer map needed to
        resolve ``taskwait on`` is exposed separately.
    last_writer_before_barrier:
        For every ``taskwait on`` event index in the trace, the id of the
        task the barrier waits for (or ``None`` if no prior writer).
    """

    trace_name: str
    predecessors: Dict[int, Set[int]] = field(default_factory=dict)
    successors: Dict[int, Set[int]] = field(default_factory=dict)
    durations: Dict[int, float] = field(default_factory=dict)
    submission_order: List[int] = field(default_factory=list)

    # -- basic queries ------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self.submission_order)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self.successors.values())

    def in_degree(self, task_id: int) -> int:
        return len(self.predecessors[task_id])

    def out_degree(self, task_id: int) -> int:
        return len(self.successors[task_id])

    def roots(self) -> List[int]:
        """Tasks with no predecessors (ready as soon as submitted)."""
        return [t for t in self.submission_order if not self.predecessors[t]]

    def dependency_count_range(self) -> Tuple[int, int]:
        """Min and max number of direct predecessors over all tasks."""
        if not self.submission_order:
            return (0, 0)
        degrees = [len(self.predecessors[t]) for t in self.submission_order]
        return (min(degrees), max(degrees))

    # -- critical path ------------------------------------------------------
    def critical_path_length(self) -> float:
        """Length (in µs of task execution) of the longest dependency chain.

        This bounds the makespan from below on any number of cores with a
        zero-overhead manager, and therefore bounds the achievable
        speedup from above by ``total_work / critical_path``.
        """
        finish: Dict[int, float] = {}
        # submission_order is a topological order because dependencies only
        # ever point backwards in submission order.
        for task_id in self.submission_order:
            earliest = 0.0
            for pred in self.predecessors[task_id]:
                earliest = max(earliest, finish[pred])
            finish[task_id] = earliest + self.durations[task_id]
        return max(finish.values(), default=0.0)

    def total_work(self) -> float:
        """Sum of all task durations (µs)."""
        return sum(self.durations.values())

    def max_parallelism(self) -> float:
        """Upper bound on speedup: total work / critical path."""
        cp = self.critical_path_length()
        if cp <= 0:
            return float(self.num_tasks) if self.num_tasks else 0.0
        return self.total_work() / cp

    def topological_generations(self) -> List[List[int]]:
        """Group tasks into dependency levels (ASAP schedule levels)."""
        level: Dict[int, int] = {}
        generations: List[List[int]] = []
        for task_id in self.submission_order:
            lvl = 0
            for pred in self.predecessors[task_id]:
                lvl = max(lvl, level[pred] + 1)
            level[task_id] = lvl
            while len(generations) <= lvl:
                generations.append([])
            generations[lvl].append(task_id)
        return generations


def build_dependency_graph(trace: Trace) -> DependencyGraph:
    """Derive the dependency DAG of ``trace`` using OmpSs address semantics.

    For every address the analysis tracks the last writer and the set of
    readers since that writer:

    * a task reading the address depends on the last writer (RAW);
    * a task writing the address depends on the last writer (WAW) and on
      all readers since then (WAR);
    * barriers do not create inter-task edges.
    """
    graph = DependencyGraph(trace_name=trace.name)
    last_writer: Dict[int, int] = {}
    readers_since_write: Dict[int, List[int]] = defaultdict(list)

    for event in trace.events:
        if not isinstance(event, TaskSubmitEvent):
            continue
        task = event.task
        task_id = task.task_id
        graph.submission_order.append(task_id)
        graph.durations[task_id] = task.duration_us
        preds: Set[int] = set()
        # First pass: collect dependencies from all parameters.
        for param in task.params:
            addr = param.address
            if param.direction.reads:
                if addr in last_writer:
                    preds.add(last_writer[addr])
            if param.direction.writes:
                if addr in last_writer:
                    preds.add(last_writer[addr])
                preds.update(readers_since_write[addr])
        preds.discard(task_id)
        graph.predecessors[task_id] = preds
        graph.successors.setdefault(task_id, set())
        for pred in preds:
            graph.successors.setdefault(pred, set()).add(task_id)
        # Second pass: update the address state with this task's accesses.
        for param in task.params:
            addr = param.address
            if param.direction.writes:
                last_writer[addr] = task_id
                readers_since_write[addr] = []
            if param.direction.reads and not param.direction.writes:
                readers_since_write[addr].append(task_id)
            elif param.direction.writes and param.direction.reads:
                # inout: the task is both the new last writer and the sole
                # reader "since" its own write (no extra bookkeeping
                # needed — future readers depend on it via last_writer).
                pass
    return graph


def last_writer_map(trace: Trace) -> Dict[int, Optional[int]]:
    """For every event index of a ``taskwait on`` event, the task id waited for.

    Mirrors the resolution the runtime performs: the barrier waits for the
    most recent previously submitted task that *writes* the address; if no
    such task exists the barrier does not block.
    """
    result: Dict[int, Optional[int]] = {}
    last_writer: Dict[int, int] = {}
    for index, event in enumerate(trace.events):
        if isinstance(event, TaskSubmitEvent):
            for param in event.task.params:
                if param.direction.writes:
                    last_writer[param.address] = event.task.task_id
        elif isinstance(event, TaskwaitOnEvent):
            result[index] = last_writer.get(event.address)
    return result


def validate_schedule(
    trace: Trace,
    start_times: Mapping[int, float],
    finish_times: Mapping[int, float],
    *,
    graph: Optional[DependencyGraph] = None,
    tolerance: float = 1e-9,
) -> None:
    """Check that a simulated schedule respects every data dependency.

    Raises :class:`SimulationError` when a task started before one of its
    predecessors finished, when a task is missing from the schedule, or
    when a task finished before it started.
    """
    graph = graph or build_dependency_graph(trace)
    for task_id in graph.submission_order:
        if task_id not in start_times or task_id not in finish_times:
            raise SimulationError(f"task {task_id} missing from the schedule")
        if finish_times[task_id] + tolerance < start_times[task_id]:
            raise SimulationError(
                f"task {task_id} finishes at {finish_times[task_id]} before it starts "
                f"at {start_times[task_id]}"
            )
    for task_id in graph.submission_order:
        start = start_times[task_id]
        for pred in graph.predecessors[task_id]:
            if start + tolerance < finish_times[pred]:
                raise SimulationError(
                    f"dependency violation: task {task_id} starts at {start} before its "
                    f"predecessor {pred} finishes at {finish_times[pred]}"
                )
