"""The Dependence Counts Arbiter (gather step of the scatter-gather scheme).

Because a task's parameters are scattered over several task graphs, a
final gather must combine the per-task-graph results before the task's
readiness is known (Section IV-C).  The arbiter:

* collects, per new task, one result per parameter ("Rdy Tasks Buffer"
  for immediately-ready single-parameter tasks, "Dep. Counts Buffer"
  otherwise), keeping partial counts for tasks whose parameters have not
  all been processed yet in the *Sim(-ultaneous) Tasks Dep. Counts
  Buffer*;
* when the last parameter of a task reports, concludes its final
  dependence count and either forwards it to the Internal Ready Tasks
  Buffer or stores the count in the global Dep. Counts Table;
* when a finished task kicks off waiting tasks, decrements their counts
  one by one and forwards those reaching zero.

The functional part of the bookkeeping (who waits on how many addresses)
already lives in :class:`repro.taskgraph.tracker.DependencyTracker`; the
arbiter model here tracks the *gather timing*: the arbiter is a serial
unit, so its occupancy contributes to the ready-task latency, and with
many task graphs it becomes the convergence point the paper warns about
("the Dependence Count Arbiter handles a relatively large amount of
computation, which might eventually make it a bottleneck").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import SimulationError
from repro.sim.resource import SerialResource


@dataclass
class _PendingGather:
    """Partial gather state of one in-flight new task."""

    expected_results: int
    collected_results: int = 0
    last_result_time_us: float = 0.0


class DependenceCountsArbiter:
    """Serial gather unit combining per-task-graph insertion results."""

    def __init__(self, cycles_per_result: float, conclude_cycles: float, decrement_cycles: float, cycle_us: float) -> None:
        if cycle_us <= 0:
            raise SimulationError(f"cycle time must be positive, got {cycle_us}")
        self._resource = SerialResource("dependence-counts-arbiter")
        self._cycles_per_result = cycles_per_result
        self._conclude_cycles = conclude_cycles
        self._decrement_cycles = decrement_cycles
        self._cycle_us = cycle_us
        # Precomputed per-operation occupancies (µs): the batch paths run
        # pure float arithmetic instead of one reserve() call per result.
        self._result_us = cycles_per_result * cycle_us
        self._conclude_us = conclude_cycles * cycle_us
        self._decrement_us = decrement_cycles * cycle_us
        self._pending: Dict[int, _PendingGather] = {}
        self.tasks_concluded = 0
        self.decrements_processed = 0

    # -- new-task gather -------------------------------------------------------
    def begin_task(self, task_id: int, expected_results: int) -> None:
        """Start tracking the gather of a newly inserted task."""
        if task_id in self._pending:
            raise SimulationError(f"arbiter already tracking task {task_id}")
        if expected_results <= 0:
            raise SimulationError(f"task {task_id} must expect at least one result, got {expected_results}")
        self._pending[task_id] = _PendingGather(expected_results=expected_results)

    def collect_result(self, task_id: int, result_ready_us: float) -> Optional[float]:
        """Collect one per-parameter result available at ``result_ready_us``.

        Returns ``None`` while results are still outstanding; when the last
        result is collected, returns the time at which the arbiter
        concluded the task's final dependence count.
        """
        pending = self._pending.get(task_id)
        if pending is None:
            raise SimulationError(f"arbiter received a result for unknown task {task_id}")
        _, end = self._resource.reserve(result_ready_us, self._cycles_per_result * self._cycle_us)
        pending.collected_results += 1
        pending.last_result_time_us = end
        if pending.collected_results < pending.expected_results:
            return None
        # Last result: conclude the final dependence count.
        _, conclude_end = self._resource.reserve(end, self._conclude_cycles * self._cycle_us)
        del self._pending[task_id]
        self.tasks_concluded += 1
        return conclude_end

    # -- batch interfaces (one call per task / per access) ---------------------
    def gather(self, result_times_sorted) -> float:
        """Gather a whole task's per-task-graph results in one call.

        ``result_times_sorted`` are the per-parameter result-ready times
        in non-decreasing order.  Equivalent to ``begin_task`` followed by
        one :meth:`collect_result` per time — same serial-resource
        arithmetic, same returned conclude time — but without the pending
        bookkeeping and per-result reserve calls.
        """
        resource = self._resource
        stats = resource.stats
        next_free = resource._next_free
        result_us = self._result_us
        count = 0
        for ready in result_times_sorted:
            start = ready if ready > next_free else next_free
            next_free = start + result_us
            stats.busy_time += result_us
            stats.total_wait += start - ready
            count += 1
        # Conclude the final dependence count: the reservation starts the
        # moment the last result was collected, so it never waits.
        next_free += self._conclude_us
        stats.busy_time += self._conclude_us
        stats.reservations += count + 1
        stats.last_busy_until = next_free
        resource._next_free = next_free
        self.tasks_concluded += 1
        return next_free

    def decrement_many(self, ready_us: float, count: int) -> list:
        """Process ``count`` back-to-back decrements available at ``ready_us``.

        Returns the per-decrement completion times, in order — identical
        to ``count`` sequential :meth:`decrement` calls.
        """
        resource = self._resource
        stats = resource.stats
        next_free = resource._next_free
        decrement_us = self._decrement_us
        ends = []
        append = ends.append
        for _ in range(count):
            start = ready_us if ready_us > next_free else next_free
            next_free = start + decrement_us
            stats.busy_time += decrement_us
            stats.total_wait += start - ready_us
            append(next_free)
        stats.reservations += count
        stats.last_busy_until = next_free
        resource._next_free = next_free
        self.decrements_processed += count
        return ends

    # -- finished-task decrements -------------------------------------------------
    def decrement(self, ready_us: float) -> float:
        """Process one dependence-count decrement; return its completion time."""
        _, end = self._resource.reserve(ready_us, self._decrement_cycles * self._cycle_us)
        self.decrements_processed += 1
        return end

    # -- misc -------------------------------------------------------------------
    @property
    def pending_tasks(self) -> int:
        """Number of tasks whose gather is still incomplete."""
        return len(self._pending)

    @property
    def busy_time_us(self) -> float:
        return self._resource.stats.busy_time

    def reset(self) -> None:
        self._resource.reset()
        self._pending.clear()
        self.tasks_concluded = 0
        self.decrements_processed = 0
