"""Per-address dependency bookkeeping.

For every memory address it tracks, the task graph must answer two
questions:

1. *insertion*: does a newly submitted task that accesses this address
   have to wait, and if so, put it on the address' kick-off list;
2. *completion*: when a task that accessed this address finishes, which
   waiting tasks can now be kicked off?

The scheme below serialises accesses per address the same way the OmpSs
runtime (and the Nexus++ hardware) does:

* readers since the last writer may run concurrently;
* a writer waits for the previous writer *and* all readers since then
  (WAW + WAR);
* a reader waits for the last writer if it has not finished (RAW);
* to preserve program order per address, any task arriving while others
  are already waiting on the address queues behind them.

The result is exactly the partial order of the reference dependency DAG
(:mod:`repro.trace.dag`), which the integration tests assert.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, NamedTuple, Optional, Set

from repro.common.errors import SimulationError


class AccessMode(enum.Enum):
    """How a task accesses an address (collapsed from the pragma clauses).

    ``reads`` / ``writes`` / ``flags`` are precomputed member attributes
    (not properties): they are consulted for every access on the
    dependency hot path.
    """

    READ = "read"
    WRITE = "write"
    READWRITE = "readwrite"

    #: True for READ and READWRITE.
    reads: bool
    #: True for WRITE and READWRITE.
    writes: bool
    #: Integer direction flags (bit 0 = reads, bit 1 = writes), matching
    #: :mod:`repro.trace.compiled`; the compiled dependency engine works
    #: on these plain ints instead of enum members.
    flags: int


AccessMode.READ.reads = True
AccessMode.READ.writes = False
AccessMode.READ.flags = 1
AccessMode.WRITE.reads = False
AccessMode.WRITE.writes = True
AccessMode.WRITE.flags = 2
AccessMode.READWRITE.reads = True
AccessMode.READWRITE.writes = True
AccessMode.READWRITE.flags = 3

#: Direction flags -> AccessMode (index with ``flags``; 0 is invalid).
MODE_OF_FLAGS: tuple = (None, AccessMode.READ, AccessMode.WRITE, AccessMode.READWRITE)


class Waiter(NamedTuple):
    """One entry of an address' kick-off list."""

    task_id: int
    mode: AccessMode


class AddressState:
    """Dependency state of a single tracked address.

    Attributes
    ----------
    address:
        The tracked 48-bit address.
    active_writer:
        Task currently owning the address for writing (not yet finished),
        or ``None``.
    active_readers:
        Unfinished tasks currently allowed to read the address.
    waiters:
        Kick-off list: tasks that accessed the address after the current
        owners and must wait, in program order.
    total_waiters_enqueued / max_kickoff_length:
        Cumulative statistics.

    One instance exists per live address, created and destroyed as tasks
    come and go — a ``__slots__`` class keeps that churn cheap.
    """

    __slots__ = ("address", "active_writer", "active_readers", "waiters",
                 "total_waiters_enqueued", "max_kickoff_length")

    def __init__(
        self,
        address: int,
        active_writer: Optional[int] = None,
        active_readers: Optional[Set[int]] = None,
        waiters: Optional[Deque[Waiter]] = None,
        total_waiters_enqueued: int = 0,
        max_kickoff_length: int = 0,
    ) -> None:
        self.address = address
        self.active_writer = active_writer
        self.active_readers = active_readers if active_readers is not None else set()
        self.waiters = waiters if waiters is not None else deque()
        self.total_waiters_enqueued = total_waiters_enqueued
        self.max_kickoff_length = max_kickoff_length

    # -- queries -------------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """True when no unfinished task references this address."""
        return self.active_writer is None and not self.active_readers and not self.waiters

    @property
    def kickoff_length(self) -> int:
        """Current number of tasks waiting on this address."""
        return len(self.waiters)

    # -- insertion -------------------------------------------------------------
    def insert(self, task_id: int, mode: AccessMode) -> bool:
        """Register that ``task_id`` accesses the address with ``mode``.

        Returns ``True`` when the task must *wait* on this address (it was
        appended to the kick-off list) and ``False`` when it may proceed
        immediately (it became an active reader/writer).
        """
        if self.waiters:
            # Program order per address: queue behind earlier waiters.
            self._enqueue(task_id, mode)
            return True
        if mode.writes:
            if self.active_writer is None and not self.active_readers:
                self.active_writer = task_id
                if mode.reads:
                    # inout: the task also reads, but as the sole owner no
                    # extra bookkeeping is required.
                    pass
                return False
            self._enqueue(task_id, mode)
            return True
        # pure reader
        if self.active_writer is None:
            self.active_readers.add(task_id)
            return False
        self._enqueue(task_id, mode)
        return True

    def _enqueue(self, task_id: int, mode: AccessMode) -> None:
        self.waiters.append(Waiter(task_id, mode))
        self.total_waiters_enqueued += 1
        length = len(self.waiters)
        if length > self.max_kickoff_length:
            self.max_kickoff_length = length

    # -- completion -------------------------------------------------------------
    def finish(self, task_id: int) -> List[Waiter]:
        """Register that ``task_id`` finished; return the kicked-off waiters.

        The returned waiters have been *activated* on this address (they
        became active readers / the active writer); the caller must
        decrement their dependence counts.
        """
        released: List[Waiter] = []
        if self.active_writer == task_id:
            self.active_writer = None
        elif task_id in self.active_readers:
            self.active_readers.discard(task_id)
        else:
            raise SimulationError(
                f"task {task_id} finished but is neither the active writer nor an active "
                f"reader of address {self.address:#x}"
            )
        released.extend(self._activate_waiters())
        return released

    def _activate_waiters(self) -> List[Waiter]:
        """Move waiters to active status while the address allows it."""
        released: List[Waiter] = []
        while self.waiters:
            head = self.waiters[0]
            if head.mode.writes:
                if self.active_writer is None and not self.active_readers:
                    self.waiters.popleft()
                    self.active_writer = head.task_id
                    released.append(head)
                break
            # head is a pure reader: it can start as soon as no writer owns
            # the address; multiple consecutive readers start together.
            if self.active_writer is not None:
                break
            self.waiters.popleft()
            self.active_readers.add(head.task_id)
            released.append(head)
        return released


class AddressCell:
    """Array-backed per-address state used by the compiled engine.

    Same dependency semantics as :class:`AddressState` (the golden
    tracker-equivalence suite pins the two against each other), laid out
    for the hot path:

    * the kick-off list is two parallel plain lists (``waiter_ids`` /
      ``waiter_flags``) consumed through a ``waiter_head`` cursor, so
      activation is index arithmetic instead of ``deque`` object churn
      (the cursor region is compacted opportunistically);
    * access modes are the integer direction flags of
      :data:`MODE_OF_FLAGS` (bit 0 = reads, bit 1 = writes) — no enum
      attribute lookups per access;
    * ``recycle()`` re-initialises the cell in place, so the tracker
      keeps evicted cells on a free list instead of allocating a fresh
      reader set and waiter lists for every address insertion.
    """

    __slots__ = ("address", "writer", "readers", "waiter_ids", "waiter_flags",
                 "waiter_head", "klen", "total_waiters_enqueued", "max_kickoff_length")

    def __init__(self, address: int) -> None:
        self.address = address
        #: Task currently owning the address for writing, or -1.
        self.writer = -1
        self.readers: Set[int] = set()
        self.waiter_ids: List[int] = []
        self.waiter_flags: List[int] = []
        self.waiter_head = 0
        #: Pending waiter count (``len(waiter_ids) - waiter_head``), kept
        #: as a field so the hot paths read one attribute instead of
        #: recomputing list lengths.
        self.klen = 0
        self.total_waiters_enqueued = 0
        self.max_kickoff_length = 0

    def recycle(self, address: int) -> None:
        """Re-initialise the (evicted) cell for a new address, in place."""
        self.address = address
        self.writer = -1
        self.readers.clear()
        self.waiter_ids.clear()
        self.waiter_flags.clear()
        self.waiter_head = 0
        self.klen = 0
        self.total_waiters_enqueued = 0
        self.max_kickoff_length = 0

    # -- queries -------------------------------------------------------------
    @property
    def kickoff_length(self) -> int:
        """Current number of tasks waiting on this address."""
        return self.klen

    @property
    def is_idle(self) -> bool:
        """True when no unfinished task references this address."""
        return self.writer < 0 and not self.readers and self.klen == 0

    # -- insertion -------------------------------------------------------------
    def insert(self, task_id: int, flags: int) -> bool:
        """Register an access with direction ``flags``; True = must wait."""
        if self.klen == 0:
            # No queued waiters: the access may become an owner directly;
            # otherwise it queues (program order per address).
            if flags & 2:  # writes
                if self.writer < 0 and not self.readers:
                    self.writer = task_id
                    return False
            elif self.writer < 0:  # pure reader
                self.readers.add(task_id)
                return False
        self.waiter_ids.append(task_id)
        self.waiter_flags.append(flags)
        self.total_waiters_enqueued += 1
        length = self.klen + 1
        self.klen = length
        if length > self.max_kickoff_length:
            self.max_kickoff_length = length
        return True

    # -- completion -------------------------------------------------------------
    def finish(self, task_id: int, flags_out: Optional[List[int]] = None) -> List[int]:
        """Register that ``task_id`` finished; return the kicked-off ids.

        The returned tasks have been activated on this address (they
        became active readers / the writer); the caller must decrement
        their dependence counts, in order.  When ``flags_out`` is given,
        the direction flags of the released waiters are appended to it
        (the raw table API uses this to rebuild ``Waiter`` records; the
        compiled engine needs the ids only).
        """
        if self.writer == task_id:
            self.writer = -1
        elif task_id in self.readers:
            self.readers.discard(task_id)
        else:
            raise SimulationError(
                f"task {task_id} finished but is neither the active writer nor an active "
                f"reader of address {self.address:#x}"
            )
        released: List[int] = []
        if self.klen:
            ids = self.waiter_ids
            head = self.waiter_head
            end = len(ids)
            flags = self.waiter_flags
            readers = self.readers
            while head < end:
                flag = flags[head]
                if flag & 2:
                    if self.writer < 0 and not readers:
                        waiter = ids[head]
                        head += 1
                        self.writer = waiter
                        released.append(waiter)
                        if flags_out is not None:
                            flags_out.append(flag)
                    break
                # head is a pure reader: consecutive readers start together.
                if self.writer >= 0:
                    break
                waiter = ids[head]
                head += 1
                readers.add(waiter)
                released.append(waiter)
                if flags_out is not None:
                    flags_out.append(flag)
            if released:
                self.klen = end - head
            if head >= end:
                ids.clear()
                flags.clear()
                head = 0
            elif head > 64 and head * 2 >= end:
                # Compact the consumed prefix so long-lived kick-off lists
                # stay O(pending waiters), like the deque they replace.
                del ids[:head]
                del flags[:head]
                head = 0
            self.waiter_head = head
        return released
