"""Result container of one machine simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.common.errors import AnalysisError


@dataclass
class MachineResult:
    """Outcome of simulating one trace on one manager and core count.

    All times are micro-seconds of simulated wall-clock time.
    """

    trace_name: str
    manager_name: str
    num_cores: int
    makespan_us: float
    total_work_us: float
    num_tasks: int
    submit_times: Dict[int, float] = field(default_factory=dict)
    ready_times: Dict[int, float] = field(default_factory=dict)
    start_times: Dict[int, float] = field(default_factory=dict)
    finish_times: Dict[int, float] = field(default_factory=dict)
    master_finish_us: float = 0.0
    core_busy_us: float = 0.0
    manager_stats: Mapping[str, object] = field(default_factory=dict)

    # -- derived metrics -----------------------------------------------------
    @property
    def speedup_vs_serial(self) -> float:
        """Speedup against the serial (single-core, zero-overhead) time.

        The paper computes all speedups "against the single core execution
        time of the ideal curve", which equals the total work of the trace.
        """
        if self.makespan_us <= 0:
            raise AnalysisError(f"non-positive makespan {self.makespan_us} for {self.trace_name}")
        return self.total_work_us / self.makespan_us

    @property
    def core_utilization(self) -> float:
        """Fraction of core-time spent executing task bodies."""
        if self.makespan_us <= 0 or self.num_cores <= 0:
            return 0.0
        return min(1.0, self.core_busy_us / (self.makespan_us * self.num_cores))

    @property
    def mean_ready_latency_us(self) -> float:
        """Mean time between a task's submission and its ready notification."""
        if not self.ready_times:
            return 0.0
        total = 0.0
        count = 0
        for task_id, ready in self.ready_times.items():
            submitted = self.submit_times.get(task_id)
            if submitted is not None:
                total += ready - submitted
                count += 1
        return total / count if count else 0.0

    @property
    def mean_queue_latency_us(self) -> float:
        """Mean time tasks spend between ready notification and start."""
        if not self.start_times:
            return 0.0
        total = 0.0
        count = 0
        for task_id, start in self.start_times.items():
            ready = self.ready_times.get(task_id)
            if ready is not None:
                total += start - ready
                count += 1
        return total / count if count else 0.0

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by reports and benchmark output."""
        return {
            "trace": self.trace_name,
            "manager": self.manager_name,
            "cores": self.num_cores,
            "makespan_ms": self.makespan_us / 1000.0,
            "speedup": round(self.speedup_vs_serial, 2),
            "core_utilization": round(self.core_utilization, 3),
            "mean_ready_latency_us": round(self.mean_ready_latency_us, 3),
        }
