"""Tests for trace (de)serialization."""

import json

import pytest

from repro.common.errors import TraceError
from repro.trace.serialization import load_trace, save_trace, trace_from_json, trace_to_json
from repro.trace.trace import TraceBuilder
from repro.workloads.synthetic import generate_random_dag


def sample_trace():
    builder = TraceBuilder("sample", metadata={"purpose": "test", "n": 3})
    builder.add_task("f", 2.5, inputs=[0x100], outputs=[0x200])
    builder.add_taskwait_on(0x200)
    builder.add_task("g", 1.5, inouts=[0x200])
    builder.add_taskwait()
    return builder.build()


class TestJsonRoundTrip:
    def test_roundtrip_preserves_everything(self):
        original = sample_trace()
        restored = trace_from_json(trace_to_json(original))
        assert restored.name == original.name
        assert dict(restored.metadata) == dict(original.metadata)
        assert len(restored) == len(original)
        for a, b in zip(original.tasks(), restored.tasks()):
            assert a == b

    def test_roundtrip_random_dag(self):
        original = generate_random_dag(50, seed=3)
        restored = trace_from_json(trace_to_json(original))
        assert [e.kind for e in restored.events] == [e.kind for e in original.events]
        assert restored.total_work_us == pytest.approx(original.total_work_us)

    def test_document_is_json_serialisable(self):
        text = json.dumps(trace_to_json(sample_trace()))
        assert "sample" in text

    def test_unknown_version_rejected(self):
        document = trace_to_json(sample_trace())
        document["format_version"] = 999
        with pytest.raises(TraceError):
            trace_from_json(document)

    def test_unknown_event_kind_rejected(self):
        document = trace_to_json(sample_trace())
        document["events"][0]["k"] = "zzz"
        with pytest.raises(TraceError):
            trace_from_json(document)

    def test_malformed_document_rejected(self):
        with pytest.raises(TraceError):
            trace_from_json({"format_version": 1, "name": "x"})


class TestFileRoundTrip:
    def test_plain_file(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(sample_trace(), path)
        restored = load_trace(path)
        assert restored.name == "sample"

    def test_gzip_file(self, tmp_path):
        path = tmp_path / "trace.json.gz"
        save_trace(sample_trace(), path)
        restored = load_trace(path)
        assert restored.num_tasks == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "missing.json")

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TraceError):
            load_trace(path)
