"""Result container of one machine simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.common.errors import AnalysisError


@dataclass
class MachineResult:
    """Outcome of simulating one trace on one manager and core count.

    All times are micro-seconds of simulated wall-clock time.
    """

    trace_name: str
    manager_name: str
    num_cores: int
    makespan_us: float
    total_work_us: float
    num_tasks: int
    submit_times: Dict[int, float] = field(default_factory=dict)
    ready_times: Dict[int, float] = field(default_factory=dict)
    start_times: Dict[int, float] = field(default_factory=dict)
    finish_times: Dict[int, float] = field(default_factory=dict)
    master_finish_us: float = 0.0
    core_busy_us: float = 0.0
    manager_stats: Mapping[str, object] = field(default_factory=dict)
    #: Ready-task dispatch policy the machine ran ("fifo" unless swept).
    scheduler: str = "fifo"
    #: Topology identity (``CoreTopology.describe()``; empty for legacy
    #: results deserialised from old documents).
    topology: Mapping[str, object] = field(default_factory=dict)
    #: Busy time accumulated by each core, indexed by core id.
    per_core_busy_us: Tuple[float, ...] = ()
    #: Core that executed each task (kept only with ``keep_schedule``).
    task_cores: Dict[int, int] = field(default_factory=dict)

    # -- derived metrics -----------------------------------------------------
    @property
    def speedup_vs_serial(self) -> float:
        """Speedup against the serial (single-core, zero-overhead) time.

        The paper computes all speedups "against the single core execution
        time of the ideal curve", which equals the total work of the trace.
        """
        if self.makespan_us <= 0:
            raise AnalysisError(f"non-positive makespan {self.makespan_us} for {self.trace_name}")
        return self.total_work_us / self.makespan_us

    @property
    def core_utilization(self) -> float:
        """Fraction of core-time spent executing task bodies."""
        if self.makespan_us <= 0 or self.num_cores <= 0:
            return 0.0
        return min(1.0, self.core_busy_us / (self.makespan_us * self.num_cores))

    @property
    def per_core_utilization(self) -> Tuple[float, ...]:
        """Fraction of the makespan each core spent busy, by core id.

        Empty when the machine did not report per-core busy times (old
        serialised results).
        """
        if self.makespan_us <= 0:
            return tuple(0.0 for _ in self.per_core_busy_us)
        return tuple(min(1.0, busy / self.makespan_us) for busy in self.per_core_busy_us)

    @property
    def core_utilization_imbalance(self) -> float:
        """Max minus min per-core utilisation (0.0 = perfectly balanced)."""
        utilisation = self.per_core_utilization
        if not utilisation:
            return 0.0
        return max(utilisation) - min(utilisation)

    @property
    def mean_ready_latency_us(self) -> float:
        """Mean time between a task's submission and its ready notification."""
        if not self.ready_times:
            return 0.0
        total = 0.0
        count = 0
        for task_id, ready in self.ready_times.items():
            submitted = self.submit_times.get(task_id)
            if submitted is not None:
                total += ready - submitted
                count += 1
        return total / count if count else 0.0

    @property
    def mean_queue_latency_us(self) -> float:
        """Mean time tasks spend between ready notification and start."""
        if not self.start_times:
            return 0.0
        total = 0.0
        count = 0
        for task_id, start in self.start_times.items():
            ready = self.ready_times.get(task_id)
            if ready is not None:
                total += start - ready
                count += 1
        return total / count if count else 0.0

    def _non_default_topology_label(self) -> "str | None":
        """Label for the topology when it differs from the paper's machine.

        The default is *homogeneous at unit speed* — a homogeneous
        topology with any other speed factor still changes every timing
        and must be reported (e.g. ``homogeneous:0.5``).
        """
        if not self.topology:
            return None
        kind = str(self.topology.get("kind", "homogeneous"))
        speeds = self.topology.get("speed_factors") or ()
        if kind == "homogeneous":
            if all(speed == 1.0 for speed in speeds):
                return None
            return f"homogeneous:{speeds[0]:g}" if speeds else "homogeneous"
        return kind

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by reports and benchmark output."""
        summary: Dict[str, object] = {
            "trace": self.trace_name,
            "manager": self.manager_name,
            "cores": self.num_cores,
            "makespan_ms": self.makespan_us / 1000.0,
            "speedup": round(self.speedup_vs_serial, 2),
            "core_utilization": round(self.core_utilization, 3),
            "mean_ready_latency_us": round(self.mean_ready_latency_us, 3),
        }
        if self.scheduler != "fifo":
            summary["scheduler"] = self.scheduler
        topology_label = self._non_default_topology_label()
        if topology_label is not None:
            summary["topology"] = topology_label
        utilisation = self.per_core_utilization
        if utilisation:
            summary["core_util_min"] = round(min(utilisation), 3)
            summary["core_util_max"] = round(max(utilisation), 3)
        return summary
