"""Unit tests of the dynamic task-graph runtime (spawn + taskwait).

Covers the engine semantics hand-computably (exact times on the ideal
manager), the two taskwait-core policies, dispatch interaction with the
scheduler queue, back-pressure, error paths, the growable timeline, and
the mid-run-exception teardown fix.
"""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError, TraceError
from repro.managers.ideal import IdealManager
from repro.managers.nanos import NanosManager
from repro.nexus.nexuspp import NexusPlusPlusManager
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.system.machine import Machine, MachineConfig, simulate, simulate_dynamic
from repro.system.timeline import TaskTimeline
from repro.trace.dynamic import (
    Compute,
    DynamicProgram,
    Spawn,
    Taskwait,
    TaskwaitOn,
    task_request,
)
from repro.workloads.recursive import fib_program
from repro.workloads.synthetic import generate_random_dag


def leaf(function="leaf", duration=10.0, addr=None, inputs=()):
    outputs = [] if addr is None else [addr]
    return task_request(function, duration, inputs=list(inputs), outputs=outputs)


class TestBasicSemantics:
    def test_two_independent_children(self):
        def master():
            _ = yield Spawn(leaf(addr=0x1000))
            _ = yield Spawn(leaf(addr=0x1040))
            yield Taskwait()

        result = simulate_dynamic(DynamicProgram("pair", master), IdealManager(),
                                  num_cores=2, validate=True)
        assert result.makespan_us == 10.0
        assert result.num_tasks == 2

    def test_nested_spawn_exact_times(self):
        """Parent computes 5, spawns two 10 µs children, joins, computes 5.

        On the ideal manager with 4 cores: children start at t=5, finish
        at 15; the parent resumes at 15 and finishes at 20.
        """
        def parent_body():
            yield Compute(5.0)
            _ = yield Spawn(leaf(addr=0x2000))
            _ = yield Spawn(leaf(addr=0x2040))
            yield Taskwait()
            yield Compute(5.0)

        def master():
            _ = yield Spawn(task_request("parent", 10.0, body=parent_body))
            yield Taskwait()

        result = simulate_dynamic(DynamicProgram("nested", master), IdealManager(),
                                  num_cores=4, validate=True)
        assert result.start_times[0] == 0.0
        assert result.start_times[1] == 5.0
        assert result.start_times[2] == 5.0
        assert result.finish_times[1] == 15.0
        assert result.finish_times[0] == 20.0
        assert result.makespan_us == 20.0

    def test_spawned_child_ids_are_submission_ordered(self):
        seen = []

        def body():
            first = yield Spawn(leaf(addr=0x3000))
            second = yield Spawn(leaf(addr=0x3040))
            seen.append((first, second))
            yield Taskwait()

        def master():
            root = yield Spawn(task_request("root", 0.0, body=body))
            seen.append(root)
            yield Taskwait()

        simulate_dynamic(DynamicProgram("ids", master), IdealManager(), num_cores=2)
        # The root (submitted first) is id 0; its children get the next
        # ids in submission order.  The root's body runs — and spawns —
        # before the master's generator observes the spawn response
        # (ready events outrank master steps at equal timestamps, exactly
        # like the static loop), hence the list order.
        assert seen == [(1, 2), 0]

    def test_sibling_address_conflicts_serialise(self):
        """A later sibling reading an earlier sibling's output waits for it."""
        def master():
            _ = yield Spawn(leaf("writer", 10.0, addr=0x4000))
            _ = yield Spawn(leaf("reader", 5.0, inputs=[0x4000]))
            yield Taskwait()

        result = simulate_dynamic(DynamicProgram("conflict", master), IdealManager(),
                                  num_cores=4, validate=True)
        assert result.start_times[1] == result.finish_times[0]
        assert result.makespan_us == 15.0

    def test_dangling_children_drain_at_master_barrier(self):
        """A parent may finish with children in flight; the program still joins."""
        def body():
            _ = yield Spawn(leaf(duration=30.0, addr=0x5000))
            yield Compute(1.0)
            # no Taskwait: the child outlives its parent

        def master():
            _ = yield Spawn(task_request("parent", 1.0, body=body))
            yield Taskwait()

        result = simulate_dynamic(DynamicProgram("dangling", master), IdealManager(),
                                  num_cores=2, validate=True)
        assert result.num_tasks == 2
        assert result.finish_times[1] > result.finish_times[0]

    def test_master_taskwait_on_waits_for_last_writer_only(self):
        def master():
            _ = yield Spawn(leaf("slow", 50.0, addr=0x6000))
            _ = yield Spawn(leaf("fast", 5.0, addr=0x6040))
            yield TaskwaitOn(0x6040)
            _ = yield Spawn(leaf("after", 5.0, addr=0x6080))
            yield Taskwait()

        result = simulate_dynamic(DynamicProgram("twon", master), IdealManager(),
                                  num_cores=4, validate=True)
        # "after" is submitted once the fast writer finished, not the slow one.
        assert result.submit_times[2] == 5.0
        assert result.makespan_us == 50.0

    def test_taskwait_on_degrades_without_support(self):
        """Nexus++ has no taskwait-on: it degrades to a full taskwait."""
        def master():
            _ = yield Spawn(leaf("slow", 50.0, addr=0x6000))
            _ = yield Spawn(leaf("fast", 5.0, addr=0x6040))
            yield TaskwaitOn(0x6040)
            _ = yield Spawn(leaf("after", 5.0, addr=0x6080))
            yield Taskwait()

        program = DynamicProgram("twon-degrade", master)
        supported = simulate_dynamic(program, NexusSharpManager(), num_cores=4)
        degraded = simulate_dynamic(program, NexusPlusPlusManager(), num_cores=4)
        # Degradation forces the third submission behind the slow writer.
        assert degraded.submit_times[2] > 50.0
        assert supported.submit_times[2] < 50.0

    def test_master_compute_is_a_serial_section(self):
        def master():
            yield Compute(7.0)
            _ = yield Spawn(leaf(duration=3.0, addr=0x7000))
            yield Taskwait()

        result = simulate_dynamic(DynamicProgram("serial", master), IdealManager(),
                                  num_cores=1, validate=True)
        assert result.submit_times[0] == 7.0
        assert result.makespan_us == 10.0


class TestCoreSemantics:
    def test_taskwait_releases_core_by_default(self):
        """Recursion deeper than the core count completes (scheduling point)."""
        result = simulate_dynamic(fib_program(7, seed=1), IdealManager(),
                                  num_cores=1, validate=True)
        assert result.num_tasks == fib_program(7, seed=1).metadata["num_tasks"]

    def test_taskwait_holds_core_deadlocks_and_reports(self):
        program = fib_program(7, seed=1)
        with pytest.raises(SimulationError, match="taskwait_holds_core"):
            simulate_dynamic(program, IdealManager(), num_cores=2,
                             taskwait_holds_core=True)

    def test_taskwait_holds_core_succeeds_with_enough_cores(self):
        program = fib_program(4, seed=1)
        held = simulate_dynamic(program, IdealManager(), num_cores=32,
                                taskwait_holds_core=True, validate=True)
        released = simulate_dynamic(program, IdealManager(), num_cores=32,
                                    validate=True)
        # With cores to spare the two policies schedule identically.
        assert held.makespan_us == released.makespan_us

    def test_resuming_parent_outranks_queued_ready_tasks(self):
        """On the single free core, a drained parent resumes before new work."""
        def parent_body():
            _ = yield Spawn(leaf("child", 10.0, addr=0x8000))
            yield Taskwait()
            yield Compute(1.0)

        def master():
            _ = yield Spawn(task_request("parent", 1.0, body=parent_body))
            _ = yield Spawn(leaf("rival", 20.0, addr=0x8040))
            _ = yield Spawn(leaf("rival2", 20.0, addr=0x8080))
            yield Taskwait()

        result = simulate_dynamic(DynamicProgram("resume-prio", master),
                                  IdealManager(), num_cores=2, validate=True)
        # ids: parent=0, child=1 (spawned before the master continues),
        # rival=2, rival2=3.  When the child frees its core at t=10 the
        # suspended parent resumes first (10 -> 11); the queued rival2
        # only starts afterwards.
        assert result.finish_times[1] == 10.0
        assert result.finish_times[0] == 11.0
        assert result.start_times[3] == 11.0

    def test_heterogeneous_topology(self):
        result = simulate_dynamic(fib_program(6, seed=2), IdealManager(),
                                  num_cores=4, topology="biglittle:0.5",
                                  validate=True)
        assert result.topology["kind"] == "big_little"
        assert result.num_tasks == fib_program(6, seed=2).metadata["num_tasks"]


class TestBackpressureAndErrors:
    def test_max_in_flight_stalls_master(self):
        def master():
            for i in range(8):
                _ = yield Spawn(leaf(duration=10.0, addr=0x9000 + 64 * i))
            yield Taskwait()

        program = DynamicProgram("window", master)
        free = simulate_dynamic(program, IdealManager(), num_cores=8)
        capped = simulate_dynamic(program, IdealManager(), num_cores=8,
                                  max_in_flight=2)
        assert free.makespan_us == 10.0
        assert capped.makespan_us == 40.0  # pairs of two, strictly windowed

    def test_invalid_max_in_flight_rejected(self):
        program = fib_program(3, seed=1)
        with pytest.raises(SimulationError, match="max_in_flight"):
            simulate_dynamic(program, IdealManager(), num_cores=2, max_in_flight=0)

    def test_taskwait_on_inside_body_rejected(self):
        def body():
            yield TaskwaitOn(0x1000)

        def master():
            _ = yield Spawn(task_request("bad", 0.0, body=body))
            yield Taskwait()

        with pytest.raises(SimulationError, match="master-only"):
            simulate_dynamic(DynamicProgram("bad-op", master), IdealManager(),
                             num_cores=1)

    def test_unknown_op_rejected(self):
        def master():
            yield object()

        with pytest.raises(SimulationError, match="unknown master op"):
            simulate_dynamic(DynamicProgram("bad-master", master), IdealManager(),
                             num_cores=1)

    def test_keep_schedule_false_collects_nothing(self):
        result = simulate_dynamic(fib_program(5, seed=1), IdealManager(),
                                  num_cores=2, keep_schedule=False)
        assert result.start_times == {} and result.finish_times == {}
        assert result.num_tasks == fib_program(5, seed=1).metadata["num_tasks"]


class TestGrowableTimeline:
    def test_growable_append_and_export(self):
        timeline = TaskTimeline.growable()
        assert timeline.add_task(5) == 0
        assert timeline.add_task(2) == 1
        timeline.start[0] = 1.0
        timeline.finish[0] = 2.0
        timeline.core[1] = 3
        assert timeline.start_dict() == {5: 1.0}
        assert timeline.finish_dict() == {5: 2.0}
        assert timeline.core_dict() == {2: 3}

    def test_static_timeline_rejects_add_task(self):
        with pytest.raises(ValueError, match="growable"):
            TaskTimeline(4).add_task(0)


class _FlakyNexusSharp(NexusSharpManager):
    """A manager whose ``finish`` raises on the N-th call (test-only)."""

    def __init__(self, fail_at: int):
        super().__init__(NexusSharpConfig())
        self.fail_at = fail_at
        self.calls = 0

    def finish(self, task_id, time_us):
        self.calls += 1
        if self.calls == self.fail_at:
            raise RuntimeError("injected mid-run failure")
        return super().finish(task_id, time_us)


class TestMidRunExceptionTeardown:
    """A failed run must not poison the manager for the rest of the process.

    Pre-fix, an exception inside ``Machine.run`` left the manager's
    tracker bound to the trace's shared ``access_program()`` cache with
    tasks still in flight, so a later direct ``bind_program`` raised
    "cannot (re)bind ... while tasks are in flight".
    """

    def test_failed_run_leaves_no_stale_binding(self):
        trace = generate_random_dag(40, seed=3)
        manager = _FlakyNexusSharp(fail_at=10)
        machine = Machine(manager, MachineConfig(num_cores=4))
        with pytest.raises(RuntimeError, match="injected"):
            machine.run(trace)
        assert manager._tracker.bound_program is None
        assert manager._tracker.in_flight_tasks == 0
        # Direct rebinding now works (the reproducing step of the bug).
        manager._tracker.bind_program(trace.access_program())

    def test_failed_run_does_not_poison_the_next_run(self):
        trace = generate_random_dag(40, seed=3)
        manager = _FlakyNexusSharp(fail_at=10)
        machine = Machine(manager, MachineConfig(num_cores=4))
        with pytest.raises(RuntimeError):
            machine.run(trace)
        reused = machine.run(trace)  # fail_at already consumed: clean run
        fresh = simulate(trace, NexusSharpManager(), num_cores=4)
        assert reused.makespan_us == fresh.makespan_us
        assert reused.manager_stats == fresh.manager_stats

    def test_failed_stream_run_also_cleans_up(self):
        trace = generate_random_dag(40, seed=3)
        manager = _FlakyNexusSharp(fail_at=10)
        machine = Machine(manager, MachineConfig(num_cores=4))
        with pytest.raises(RuntimeError):
            machine.run_stream(trace)
        assert manager._tracker.in_flight_tasks == 0
        manager._tracker.bind_program(trace.access_program())

    def test_failed_dynamic_run_also_cleans_up(self):
        manager = _FlakyNexusSharp(fail_at=10)
        machine = Machine(manager, MachineConfig(num_cores=4))
        with pytest.raises(RuntimeError):
            machine.run(fib_program(7, seed=1))
        assert manager._tracker.bound_program is None
        assert manager._tracker.in_flight_tasks == 0
        result = machine.run(fib_program(7, seed=1))
        fresh = simulate_dynamic(fib_program(7, seed=1), NexusSharpManager(),
                                 num_cores=4)
        assert result.makespan_us == fresh.makespan_us


class TestDynamicStaticEquivalence:
    def test_spawn_free_program_matches_static_replay(self):
        """A dynamic program without bodies == static replay of its elaboration."""
        def master():
            for i in range(20):
                _ = yield Spawn(leaf(duration=10.0 + i, addr=0xA000 + 64 * i))
                if i % 5 == 4:
                    yield Taskwait()

        program = DynamicProgram("flat", master)
        trace = program.elaborate()
        for factory in (IdealManager, NanosManager, NexusPlusPlusManager,
                        NexusSharpManager):
            dynamic = simulate_dynamic(program, factory(), num_cores=4,
                                       validate=True)
            static = simulate(trace, factory(), num_cores=4, validate=True)
            assert dynamic.makespan_us == static.makespan_us, factory.__name__
            assert dynamic.start_times == static.start_times, factory.__name__

    def test_body_task_request_validation(self):
        with pytest.raises(TraceError):
            task_request("", 1.0)
        with pytest.raises(TraceError):
            task_request("x", -1.0)
        with pytest.raises(TraceError):
            Compute(-1.0)
        with pytest.raises(TraceError):
            Spawn("not a request")
