"""Exception hierarchy for the Nexus# reproduction.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to distinguish configuration mistakes from
simulation-time problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied.

    Raised eagerly, at object-construction time, so that a mis-configured
    experiment fails before any simulation work is done.
    """


class TraceError(ReproError):
    """A trace (workload description) is malformed.

    Examples: a task referencing an undefined function identifier, a
    ``taskwait on`` event naming an address no prior task produced, or a
    serialized trace file with an unknown schema version.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state.

    This signals a bug in a manager model (for example a dependence count
    going negative or a task reported ready twice), never a user error.
    """


class CapacityError(ReproError):
    """A hardware structure ran permanently out of capacity.

    The hardware models stall when a table or FIFO is full and resume when
    space frees up; :class:`CapacityError` is only raised when forward
    progress is provably impossible (for instance a task with more
    parameters than the whole task pool can hold).
    """


class AnalysisError(ReproError):
    """An analysis/report step was asked to summarise inconsistent data."""
