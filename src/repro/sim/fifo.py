"""Latency FIFOs.

The Nexus# block diagram (Figure 2 of the paper) decouples every pair of
pipeline stages with a FIFO: the *New Args. Buffers* and *Finished Args.
Buffers* in front of every task graph, the *Rdy Tasks* / *Dep. Counts* /
*Wait. Tasks* buffers behind them, and the *Internal Ready Tasks Buffer*
in front of the Write-Back stage.  Two properties of these FIFOs matter
for the timing model:

* **fall-through latency** — "the data written to them needs 3 cycles to
  appear at their output" (Section IV-D);
* **bounded capacity** — when a FIFO is full the producer stalls, which
  is how back-pressure propagates from a stalled task graph back to the
  Input Parser.

:class:`LatencyFifo` models both while staying cheap: it tracks, for each
entry, the time it becomes *visible* at the FIFO head and the time the
consumer drains it; a producer that finds the FIFO full is told when a
slot frees up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from repro.common.errors import ConfigurationError, SimulationError


@dataclass
class FifoStats:
    """Aggregate statistics for a :class:`LatencyFifo`."""

    pushes: int = 0
    pops: int = 0
    producer_stalls: int = 0
    producer_stall_time: float = 0.0
    max_occupancy: int = 0


class LatencyFifo:
    """A bounded FIFO with a fixed fall-through latency.

    The FIFO is driven with explicit timestamps rather than simulator
    events: the producer calls :meth:`push` with the time it *wants* to
    write, and receives the time the write actually happened (later if
    the FIFO was full).  The consumer calls :meth:`pop` with the time it
    is ready to read and receives the time the data was actually
    available plus the stored item.
    """

    __slots__ = ("name", "capacity", "latency", "_entries", "_drain_times", "stats")

    def __init__(self, name: str, capacity: int, latency: float) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"{name}: FIFO capacity must be positive, got {capacity}")
        if latency < 0:
            raise ConfigurationError(f"{name}: FIFO latency must be >= 0, got {latency}")
        self.name = name
        self.capacity = capacity
        self.latency = latency
        #: entries currently in flight: (visible_time, item)
        self._entries: Deque[tuple[float, Any]] = deque()
        #: drain times of entries that already left, kept only while needed
        #: to answer "when does a slot free up" for a full FIFO.
        self._drain_times: Deque[float] = deque()
        self.stats = FifoStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when no free slot exists right now (ignoring future pops)."""
        return len(self._entries) >= self.capacity

    def push(self, time: float, item: Any) -> float:
        """Write ``item`` at ``time`` (or later if the FIFO is full).

        Returns the actual write time.  The item becomes visible to the
        consumer ``latency`` after the write.
        """
        if time < 0:
            raise SimulationError(f"{self.name}: negative push time {time}")
        write_time = time
        if len(self._entries) >= self.capacity:
            # The producer must wait for the consumer to drain the oldest
            # outstanding entry.  Entries are drained in order, so the
            # (len(entries) - capacity + 1)-th future drain frees our slot.
            # With the machine processing events in time order, the drain
            # times recorded so far are the best information available.
            if not self._drain_times:
                raise SimulationError(
                    f"{self.name}: FIFO full ({self.capacity} entries) and no consumer has "
                    "ever drained it; producer would stall forever"
                )
            free_at = self._drain_times.popleft()
            write_time = max(write_time, free_at)
            self.stats.producer_stalls += 1
            self.stats.producer_stall_time += max(0.0, free_at - time)
        visible = write_time + self.latency
        self._entries.append((visible, item))
        self.stats.pushes += 1
        self.stats.max_occupancy = max(self.stats.max_occupancy, len(self._entries))
        return write_time

    def pop(self, time: float) -> tuple[float, Any]:
        """Read the oldest entry at ``time`` (or when it becomes visible).

        Returns ``(available_time, item)`` where ``available_time`` is the
        max of ``time`` and the entry's visibility time.
        """
        if not self._entries:
            raise SimulationError(f"{self.name}: pop() from an empty FIFO")
        visible, item = self._entries.popleft()
        available = max(time, visible)
        self._drain_times.append(available)
        # Keep the drain-time backlog bounded: only the last `capacity`
        # drains can ever matter for back-pressure.
        while len(self._drain_times) > self.capacity:
            self._drain_times.popleft()
        self.stats.pops += 1
        return available, item

    def peek_visible_time(self) -> Optional[float]:
        """Visibility time of the head entry, or ``None`` when empty."""
        if not self._entries:
            return None
        return self._entries[0][0]

    def reset(self) -> None:
        """Drop all entries and statistics."""
        self._entries.clear()
        self._drain_times.clear()
        self.stats = FifoStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyFifo({self.name!r}, capacity={self.capacity}, "
            f"latency={self.latency}, occupancy={len(self._entries)})"
        )
