"""Multicore machine simulator (the paper's RTS testbench).

The machine replays a trace against a task-manager model on a
configurable number of worker cores: the master thread submits tasks (and
executes ``taskwait`` / ``taskwait on`` barriers), the manager reports
ready tasks, free cores execute them for their traced duration, and
completions are fed back to the manager — exactly the loop described in
Section V-B of the paper.

* :class:`repro.system.machine.Machine` — the event-driven simulator.
* :class:`repro.system.machine.MachineConfig` — core count and options.
* :class:`repro.system.results.MachineResult` — schedule, makespan and
  per-component statistics of one run.
"""

from repro.system.machine import Machine, MachineConfig, simulate
from repro.system.results import MachineResult

__all__ = ["Machine", "MachineConfig", "MachineResult", "simulate"]
