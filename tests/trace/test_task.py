"""Tests for task descriptors and parameters."""

import pytest

from repro.common.constants import ADDRESS_MASK
from repro.common.errors import TraceError
from repro.trace.task import Direction, Parameter, TaskDescriptor, make_params


class TestDirection:
    def test_reads_writes_flags(self):
        assert Direction.IN.reads and not Direction.IN.writes
        assert Direction.OUT.writes and not Direction.OUT.reads
        assert Direction.INOUT.reads and Direction.INOUT.writes

    def test_parse_from_string(self):
        assert Direction.parse("in") is Direction.IN
        assert Direction.parse("INOUT") is Direction.INOUT

    def test_parse_passthrough(self):
        assert Direction.parse(Direction.OUT) is Direction.OUT

    def test_parse_invalid(self):
        with pytest.raises(TraceError):
            Direction.parse("sideways")


class TestParameter:
    def test_valid_parameter(self):
        p = Parameter(address=0x1000, direction=Direction.IN, size=64)
        assert p.is_input and not p.is_output

    def test_string_direction_normalised(self):
        p = Parameter(address=0x1000, direction="out")
        assert p.direction is Direction.OUT

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError):
            Parameter(address=-1, direction=Direction.IN)

    def test_address_wider_than_48_bits_rejected(self):
        with pytest.raises(TraceError):
            Parameter(address=ADDRESS_MASK + 1, direction=Direction.IN)

    def test_negative_size_rejected(self):
        with pytest.raises(TraceError):
            Parameter(address=0, direction=Direction.IN, size=-4)

    def test_replace_address(self):
        p = Parameter(address=0x10, direction=Direction.INOUT, size=8)
        q = p.replace_address(0x20)
        assert q.address == 0x20 and q.direction is Direction.INOUT and q.size == 8


class TestTaskDescriptor:
    def _task(self, **kwargs):
        defaults = dict(
            task_id=0,
            function="work",
            params=make_params(inputs=[0x100], outputs=[0x200]),
            duration_us=5.0,
        )
        defaults.update(kwargs)
        return TaskDescriptor(**defaults)

    def test_basic_properties(self):
        task = self._task()
        assert task.num_params == 2
        assert task.input_addresses == (0x100,)
        assert task.output_addresses == (0x200,)
        assert task.addresses == (0x100, 0x200)

    def test_inout_counted_in_both_views(self):
        task = self._task(params=make_params(inouts=[0x300]))
        assert task.input_addresses == (0x300,)
        assert task.output_addresses == (0x300,)

    def test_negative_id_rejected(self):
        with pytest.raises(TraceError):
            self._task(task_id=-1)

    def test_empty_function_rejected(self):
        with pytest.raises(TraceError):
            self._task(function="")

    def test_negative_duration_rejected(self):
        with pytest.raises(TraceError):
            self._task(duration_us=-1.0)

    def test_non_parameter_entries_rejected(self):
        with pytest.raises(TraceError):
            self._task(params=(0x100,))

    def test_with_duration(self):
        task = self._task().with_duration(99.0)
        assert task.duration_us == 99.0
        assert task.task_id == 0

    def test_with_id(self):
        task = self._task().with_id(7)
        assert task.task_id == 7

    def test_params_list_converted_to_tuple(self):
        task = TaskDescriptor(
            task_id=1,
            function="f",
            params=list(make_params(inputs=[1])),
            duration_us=1.0,
        )
        assert isinstance(task.params, tuple)


class TestMakeParams:
    def test_order_inputs_inouts_outputs(self):
        params = make_params(inputs=[1], outputs=[3], inouts=[2])
        assert [p.direction for p in params] == [Direction.IN, Direction.INOUT, Direction.OUT]
        assert [p.address for p in params] == [1, 2, 3]

    def test_empty(self):
        assert make_params() == ()
