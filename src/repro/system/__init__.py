"""Multicore machine simulator (the paper's RTS testbench).

The machine replays a trace against a task-manager model on a
configurable number of worker cores: the master thread submits tasks (and
executes ``taskwait`` / ``taskwait on`` barriers), the manager reports
ready tasks, free cores execute them for their traced duration, and
completions are fed back to the manager — exactly the loop described in
Section V-B of the paper.

The runtime is layered (see ``README.md``, "Architecture"):

* :class:`repro.system.machine.Machine` — the event-driven simulator,
  running on the shared :class:`repro.sim.engine.Simulator` kernel.
* :class:`repro.system.machine.MachineConfig` — core count, scheduler
  policy, topology and options.
* :class:`repro.system.scheduling.SchedulerPolicy` — pluggable ready-task
  dispatch (``fifo`` / ``sjf`` / ``ljf`` / ``locality``).
* :class:`repro.system.topology.CoreTopology` /
  :class:`repro.system.topology.CorePool` — heterogeneous worker cores
  (per-core speed factors, big.LITTLE splits).
* :class:`repro.system.timeline.TaskTimeline` — struct-of-arrays per-task
  schedule record.
* :class:`repro.system.results.MachineResult` — schedule, makespan and
  per-component statistics of one run (incl. per-core utilisation).
"""

from repro.system.machine import Machine, MachineConfig, simulate, simulate_dynamic, simulate_stream
from repro.system.results import MachineResult
from repro.system.scheduling import (
    DurationPriorityPolicy,
    FifoPolicy,
    LocalityPolicy,
    SchedulerPolicy,
    list_policies,
    make_policy,
)
from repro.system.timeline import TaskTimeline
from repro.system.topology import CorePool, CoreTopology, TopologySpec, resolve_topology

__all__ = [
    "Machine",
    "MachineConfig",
    "MachineResult",
    "simulate",
    "simulate_dynamic",
    "simulate_stream",
    "SchedulerPolicy",
    "FifoPolicy",
    "DurationPriorityPolicy",
    "LocalityPolicy",
    "make_policy",
    "list_policies",
    "CoreTopology",
    "CorePool",
    "TopologySpec",
    "resolve_topology",
    "TaskTimeline",
]
