"""Spec-hash and byte-identity parity across every entry point.

The serving layer's core promise: the same grid submitted over HTTP,
through the ``python -m repro.serve sweep`` CLI, or via a direct
:class:`SweepRunner` produces the same cache keys and byte-identical
JSONL rows.  One server (module-scoped) serves all examples.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import cli as experiments_cli
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepSpec
from repro.serve import ServeClient, ServeConfig, start_in_thread
from repro.serve import cli as serve_cli


@pytest.fixture(scope="module")
def server():
    handle = start_in_thread(ServeConfig(batch_window=0.001))
    yield handle
    handle.stop()


GRIDS = st.fixed_dictionaries({
    "workloads": st.lists(
        st.sampled_from(["microbench", "sparselu", "c-ray"]),
        min_size=1, max_size=2, unique=True),
    "managers": st.lists(
        st.sampled_from(["ideal", "nanos", "nexus#2", "nexus#6"]),
        min_size=1, max_size=2, unique=True),
    "core_counts": st.lists(
        st.sampled_from([1, 2, 4]), min_size=1, max_size=2, unique=True),
    "seeds": st.lists(st.integers(min_value=0, max_value=3),
                      min_size=1, max_size=2, unique=True),
    "scheduler": st.sampled_from(["fifo", "sjf"]),
})


class TestHttpVsRunnerProperty:
    @given(grid=GRIDS)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture,
                                     HealthCheck.too_slow])
    def test_http_sweep_is_byte_identical_to_direct_runner(
            self, server, tmp_path_factory, grid):
        spec = SweepSpec(
            workloads=grid["workloads"],
            managers=grid["managers"],
            core_counts=grid["core_counts"],
            seeds=tuple(grid["seeds"]),
            scale=0.02,
            schedulers=(grid["scheduler"],),
        )
        tmp_path = tmp_path_factory.mktemp("parity")
        outcome = SweepRunner().run(spec, jsonl_path=tmp_path / "direct.jsonl")
        with ServeClient(server.host, server.port, timeout=120) as client:
            raw = client.sweep_raw(
                workloads=grid["workloads"],
                managers=grid["managers"],
                core_counts=grid["core_counts"],
                seeds=grid["seeds"],
                scale=0.02,
                schedulers=[grid["scheduler"]],
            )
        assert raw == (tmp_path / "direct.jsonl").read_bytes()
        # Same cells, same keys: every cacheable point the runner saw is
        # what the server deduped on.
        assert len(raw.splitlines()) == len(outcome.points)


class TestCliParity:
    GRID_FLAGS = ["--workloads", "microbench", "sparselu",
                  "--managers", "ideal", "nexus#2",
                  "--cores", "1", "2",
                  "--seeds", "7",
                  "--scale", "0.05"]

    def test_http_cli_and_runner_rows_are_byte_identical(
            self, server, tmp_path, capsys):
        # 1. Direct runner.
        spec = SweepSpec(workloads=["microbench", "sparselu"],
                         managers=["ideal", "nexus#2"],
                         core_counts=[1, 2], seeds=(7,), scale=0.05)
        SweepRunner().run(spec, jsonl_path=tmp_path / "direct.jsonl")
        direct = (tmp_path / "direct.jsonl").read_bytes()

        # 2. The experiments CLI (serial sweep).
        code = experiments_cli.main(
            ["sweep", *self.GRID_FLAGS, "--quiet",
             "--output", str(tmp_path / "cli.jsonl")])
        assert code == 0
        assert (tmp_path / "cli.jsonl").read_bytes() == direct

        # 3. The serving CLI talking to a live server.
        code = serve_cli.main(
            ["sweep", "--connect", f"{server.host}:{server.port}",
             *self.GRID_FLAGS, "--output", str(tmp_path / "serve.jsonl")])
        assert code == 0
        capsys.readouterr()
        assert (tmp_path / "serve.jsonl").read_bytes() == direct

    def test_all_entry_points_agree_on_cache_keys(self, tmp_path):
        """Populate a store over HTTP, then re-run the same grid with the
        experiments CLI over that store: zero cells may execute — the
        cross-entry-point cache-key identity."""
        store = str(tmp_path / "store")
        handle = start_in_thread(ServeConfig(cache_dir=store))
        try:
            code = serve_cli.main(
                ["sweep", "--connect", f"{handle.host}:{handle.port}",
                 *self.GRID_FLAGS, "--output", str(tmp_path / "via-http.jsonl")])
            assert code == 0
        finally:
            handle.stop()
        spec = SweepSpec(workloads=["microbench", "sparselu"],
                         managers=["ideal", "nexus#2"],
                         core_counts=[1, 2], seeds=(7,), scale=0.05)
        warm = SweepRunner(cache_dir=store).run(
            spec, jsonl_path=tmp_path / "warm.jsonl")
        assert warm.executed == 0
        assert warm.cache_hits == len(list(spec.points()))
        assert (tmp_path / "warm.jsonl").read_bytes() == \
            (tmp_path / "via-http.jsonl").read_bytes()

    def test_spec_hash_subcommand_matches_the_report_endpoint(self, server):
        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            assert experiments_cli.main(["spec-hash", *self.GRID_FLAGS]) == 0
        cli_hash = buffer.getvalue().strip()
        with ServeClient(server.host, server.port, timeout=60) as client:
            report = client.sweep_report(
                workloads=["microbench", "sparselu"],
                managers=["ideal", "nexus#2"],
                core_counts=[1, 2], seeds=[7], scale=0.05)
        assert report["spec_hash"] == cli_hash
