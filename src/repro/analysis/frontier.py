"""Frontier tables for tuner reports.

Renders the per-rung frontiers of a :class:`~repro.tune.report.
TuneReport` document (or a live :class:`~repro.tune.search.TuneResult`)
as the repo's plain-text tables — what ``python -m repro.tune report``
prints and what the tuning benchmark embeds in its summary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.analysis.formatting import render_table

__all__ = ["frontier_table", "render_tune_report"]


def _metric_columns(frontier: Sequence[Mapping[str, Any]]) -> List[str]:
    """Union of metric names across the frontier, in first-seen order."""
    columns: List[str] = []
    for entry in frontier:
        for name in entry.get("metrics", {}):
            if name not in columns:
                columns.append(name)
    return columns


def frontier_table(frontier: Sequence[Mapping[str, Any]], title: str = "") -> str:
    """Render one ranked frontier (a rung's or the final one).

    ``frontier`` is a sequence of serialised
    :class:`~repro.tune.search.ScoredCandidate` documents (``candidate``
    / ``score`` / ``metrics``), best first.
    """
    metric_names = _metric_columns(frontier)
    headers = ["#", "manager", "sched", "topology", "score", *metric_names]
    rows = []
    for rank, entry in enumerate(frontier, start=1):
        candidate = entry["candidate"]
        rows.append([
            rank,
            candidate["display"],
            candidate["scheduler"],
            candidate["topology"],
            float(entry["score"]),
            *(float(entry["metrics"][name]) if name in entry["metrics"] else ""
              for name in metric_names),
        ])
    return render_table(headers, rows, title=title)


def render_tune_report(document: Mapping[str, Any]) -> str:
    """Render a loaded tune report (see :meth:`TuneReport.load`).

    One frontier table per rung, then the winner line with the search's
    cell accounting — enough to audit what the halving kept and dropped
    at every fidelity.
    """
    header = document["header"]
    space: Dict[str, Any] = header.get("space", {})
    blocks = [
        f"search {space.get('name', '?')!r}: objective {header['objective']}, "
        f"eta {header['eta']}, budget "
        f"{header['budget'] if header.get('budget') is not None else 'unbounded'}",
    ]
    for rung in document.get("rungs", []):
        title = (f"rung {rung['rung']}: {len(rung['units'])} units, "
                 f"{rung['cells']} cells "
                 f"({rung['cache_hits']} cached, {rung['executed']} simulated)")
        blocks.append(frontier_table(rung["frontier"], title=title))
    best = document["best"]
    entry = best["best"]
    candidate = entry["candidate"]
    exhausted = " (budget exhausted)" if best.get("budget_exhausted") else ""
    blocks.append(
        f"best: {candidate['display']} / {candidate['scheduler']} / "
        f"{candidate['topology']} with score {entry['score']:.4g}{exhausted} — "
        f"{best['total_cells']} cells, {best['total_executed']} simulated, "
        f"{best['total_cache_hits']} cached")
    return "\n\n".join(blocks)
