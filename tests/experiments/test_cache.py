"""Tests for the content-addressed result cache."""

from repro.experiments.cache import ResultCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestResultCache:
    def test_miss_then_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(KEY) is None
        document = {"makespan_us": 12.5, "nested": {"a": [1, 2]}}
        cache.put(KEY, document)
        assert KEY in cache
        assert cache.get(KEY) == document

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        assert (tmp_path / KEY[:2] / f"{KEY}.json").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        path.write_text("{truncated", encoding="utf-8")
        assert cache.get(KEY) is None

    def test_non_object_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        path.parent.mkdir(parents=True)
        path.write_text("[1,2,3]", encoding="utf-8")
        assert cache.get(KEY) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        cache.put(OTHER, {"y": 2})
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(KEY) is None

    def test_put_overwrites_atomically(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"v": 1})
        cache.put(KEY, {"v": 2})
        assert cache.get(KEY) == {"v": 2}
        # No stray temp files left behind.
        leftovers = [p for p in (tmp_path / KEY[:2]).iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
