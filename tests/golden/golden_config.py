"""Shared configuration of the golden-trace regression harness.

One small, seeded trace per workload generator, and the four golden
manager models the paper compares (``ideal``, ``nanos``, ``nexuspp``,
``nexussharp``).  Both the regeneration script and the regression test
import from here so they can never drift apart.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.factories import (
    ManagerFactory,
    ideal_factory,
    nanos_factory,
    nexus_pp_factory,
    nexus_sharp_factory,
)
from repro.trace.dynamic import DynamicProgram
from repro.trace.trace import Trace
from repro.workloads.cray import generate_cray
from repro.workloads.gaussian import generate_gaussian_elimination
from repro.workloads.h264dec import generate_h264dec
from repro.workloads.microbench import generate_microbenchmark
from repro.workloads.rotcc import generate_rotcc
from repro.workloads.recursive import (
    fib_program,
    nqueens_program,
    recursive_sort_program,
    strassen_program,
)
from repro.workloads.sparselu import generate_sparselu
from repro.workloads.streamcluster import generate_streamcluster
from repro.workloads.synthetic import generate_random_dag

#: Seed used for every seeded golden trace.
GOLDEN_SEED = 20150525

#: The four managers the golden makespans are pinned for.
GOLDEN_MANAGERS: Dict[str, ManagerFactory] = {
    "ideal": ideal_factory(),
    "nanos": nanos_factory(),
    "nexuspp": nexus_pp_factory(),
    "nexussharp": nexus_sharp_factory(6),
}


def golden_traces() -> Dict[str, Trace]:
    """One deterministic miniature trace per workload generator."""
    return {
        "cray": generate_cray(scale=0.05, seed=GOLDEN_SEED),
        "rotcc": generate_rotcc(scale=0.005, seed=GOLDEN_SEED),
        "sparselu": generate_sparselu(scale=0.02, seed=GOLDEN_SEED),
        "streamcluster": generate_streamcluster(scale=0.001, seed=GOLDEN_SEED),
        "h264dec": generate_h264dec(grouping=2, num_frames=3, scale=0.05, seed=GOLDEN_SEED),
        "gaussian": generate_gaussian_elimination(matrix_size=24, seed=GOLDEN_SEED),
        "microbench": generate_microbenchmark(seed=GOLDEN_SEED),
        "synthetic": generate_random_dag(80, max_predecessors=3, seed=GOLDEN_SEED),
    }


def golden_dynamic_programs() -> Dict[str, DynamicProgram]:
    """One seeded dynamic (insert-while-running) program per recursive
    workload.  The golden harness pins their *dynamic-run* makespans for
    every golden manager plus the digest of their serial elaboration."""
    return {
        "fib": fib_program(9, seed=GOLDEN_SEED),
        "nqueens": nqueens_program(5, seed=GOLDEN_SEED),
        "recursive_sort": recursive_sort_program(16, seed=GOLDEN_SEED),
        "strassen": strassen_program(2, seed=GOLDEN_SEED),
    }
