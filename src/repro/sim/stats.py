"""Statistics helpers used by the simulation and analysis layers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` (must be >= 0) and return the new value."""
        if amount < 0:
            raise ValueError(f"{self.name}: cannot increment by negative amount {amount}")
        self.value += amount
        return self.value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {self.value})"


class TimeWeightedStat:
    """Tracks the time-weighted average of a piecewise-constant signal.

    Used for quantities like "number of busy cores" or "FIFO occupancy"
    where the mean over simulated time (not over samples) is wanted.
    """

    __slots__ = ("_last_time", "_last_value", "_area", "_max", "_min", "_started")

    def __init__(self) -> None:
        self._last_time = 0.0
        self._last_value = 0.0
        self._area = 0.0
        self._max = -math.inf
        self._min = math.inf
        self._started = False

    def record(self, time: float, value: float) -> None:
        """Record that the signal takes ``value`` starting at ``time``."""
        if self._started:
            if time < self._last_time:
                raise ValueError(
                    f"samples must be recorded in time order ({time} < {self._last_time})"
                )
            self._area += self._last_value * (time - self._last_time)
        self._last_time = time
        self._last_value = value
        self._max = max(self._max, value)
        self._min = min(self._min, value)
        self._started = True

    def mean(self, until: Optional[float] = None) -> float:
        """Time-weighted mean of the signal over ``[0, until]``."""
        if not self._started:
            return 0.0
        end = self._last_time if until is None else until
        if end <= 0:
            return 0.0
        area = self._area
        if end > self._last_time:
            area += self._last_value * (end - self._last_time)
        return area / end

    @property
    def maximum(self) -> float:
        return 0.0 if not self._started else self._max

    @property
    def minimum(self) -> float:
        return 0.0 if not self._started else self._min


class UtilizationTracker:
    """Tracks busy intervals of a set of identical servers."""

    def __init__(self, servers: int) -> None:
        if servers <= 0:
            raise ValueError(f"servers must be positive, got {servers}")
        self.servers = servers
        self.busy_time = 0.0
        self.horizon = 0.0

    def record_busy(self, start: float, end: float) -> None:
        """Record that one server was busy during ``[start, end]``."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        self.busy_time += end - start
        self.horizon = max(self.horizon, end)

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of server-time spent busy over ``[0, horizon]``."""
        h = self.horizon if horizon is None else horizon
        if h <= 0:
            return 0.0
        return min(1.0, self.busy_time / (h * self.servers))


@dataclass
class SummaryStats:
    """Simple five-number-style summary of a sample of values."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    sum_squares: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.sum_squares += value * value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self.sum_squares / self.count - mean * mean)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)
