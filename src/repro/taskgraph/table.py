"""Set-associative address table.

The hardware keeps the per-address state of
:class:`repro.taskgraph.address_state.AddressState` in a cache-like,
set-associative memory ("It uses the same set-associative data structure
to maintain a Kick-Off List for each incoming memory address",
Section IV-C).  Functionally the table behaves like a dictionary keyed by
address; structurally it has a bounded number of sets and ways, and an
insertion that maps to a full set stalls the task graph "until one task
finishes, which its parameters share the same line" (Section IV-D).

This model keeps the functional behaviour exact (the dictionary) while
accounting for the structural hazards: entries occupy ways in their set
while any unfinished task references them, long kick-off lists spill into
chained *dummy entries* that occupy additional ways (the mechanism the
Gaussian-elimination experiment validates), and set-conflict events are
counted so the timing layer can charge stall cycles for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.common.constants import (
    DEFAULT_KICKOFF_CAPACITY,
    DEFAULT_TABLE_SETS,
    DEFAULT_TABLE_WAYS,
)
from repro.common.errors import ConfigurationError
from repro.common.validation import check_positive, check_power_of_two
from repro.taskgraph.address_state import AccessMode, AddressState


@dataclass
class TableStats:
    """Cumulative statistics of an :class:`AddressTable`."""

    lookups: int = 0
    insertions: int = 0
    evictions: int = 0
    set_conflicts: int = 0
    dummy_entries_peak: int = 0
    max_live_entries: int = 0


class AddressTable:
    """Set-associative container of per-address dependency state.

    Parameters
    ----------
    num_sets:
        Number of sets (lines); must be a power of two so the set index is
        a simple bit slice of the address, as in the hardware.
    ways:
        Associativity of each set.
    kickoff_capacity:
        Number of waiting-task slots one entry can hold before the kick-off
        list spills into a chained dummy entry occupying another way.
    name:
        Identifier used in statistics (e.g. ``"TG3"``).
    """

    def __init__(
        self,
        num_sets: int = DEFAULT_TABLE_SETS,
        ways: int = DEFAULT_TABLE_WAYS,
        kickoff_capacity: int = DEFAULT_KICKOFF_CAPACITY,
        name: str = "task-graph",
    ) -> None:
        check_power_of_two("num_sets", num_sets)
        check_positive("ways", ways)
        check_positive("kickoff_capacity", kickoff_capacity)
        self.num_sets = num_sets
        self.ways = ways
        self.kickoff_capacity = kickoff_capacity
        self.name = name
        self._entries: Dict[int, AddressState] = {}
        self._set_occupancy: Dict[int, int] = {}
        self.stats = TableStats()

    # -- geometry -----------------------------------------------------------
    def set_index(self, address: int) -> int:
        """Set (line) index the address maps to."""
        # Addresses are cache-line aligned in the generated traces; skip the
        # low 6 offset bits so consecutive lines land in consecutive sets.
        return (address >> 6) & (self.num_sets - 1)

    @property
    def capacity_entries(self) -> int:
        """Total number of entries (ways) in the table."""
        return self.num_sets * self.ways

    @property
    def live_entries(self) -> int:
        """Number of addresses currently tracked."""
        return len(self._entries)

    def ways_used(self, address: int) -> int:
        """Number of ways the entry for ``address`` occupies (with dummies)."""
        entry = self._entries.get(address)
        if entry is None:
            return 0
        # 1 way for the entry itself plus one dummy entry per overflowing
        # chunk of the kick-off list.
        overflow = max(0, entry.kickoff_length - self.kickoff_capacity)
        dummies = -(-overflow // self.kickoff_capacity) if overflow else 0
        return 1 + dummies

    def set_occupancy(self, set_idx: int) -> int:
        """Number of ways currently used in set ``set_idx``."""
        return self._set_occupancy.get(set_idx, 0)

    # -- functional interface -------------------------------------------------
    def lookup(self, address: int) -> Optional[AddressState]:
        """Return the entry for ``address`` if it is currently tracked."""
        self.stats.lookups += 1
        return self._entries.get(address)

    def insert_access(self, address: int, task_id: int, mode: AccessMode) -> tuple[bool, bool]:
        """Record that ``task_id`` accesses ``address``.

        Returns ``(must_wait, set_conflict)`` where ``must_wait`` says the
        task was appended to the address' kick-off list and
        ``set_conflict`` says the insertion hit a structurally full set
        (the timing layer charges a stall for it).
        """
        self.stats.lookups += 1
        entry = self._entries.get(address)
        set_idx = self.set_index(address)
        set_conflict = False
        if entry is None:
            occupancy = self._set_occupancy.get(set_idx, 0)
            if occupancy >= self.ways:
                # Structurally the hardware would stall until a way frees
                # up; functionally we still track the address (the paper's
                # dummy-entry mechanism guarantees forward progress) but
                # report the conflict so timing can charge for it.
                set_conflict = True
                self.stats.set_conflicts += 1
            entry = AddressState(address=address)
            self._entries[address] = entry
            self._set_occupancy[set_idx] = occupancy + 1
            self.stats.insertions += 1
            self.stats.max_live_entries = max(self.stats.max_live_entries, len(self._entries))
        before_ways = self.ways_used(address)
        must_wait = entry.insert(task_id, mode)
        after_ways = self.ways_used(address)
        if after_ways != before_ways:
            self._set_occupancy[set_idx] = self._set_occupancy.get(set_idx, 0) + (after_ways - before_ways)
            self.stats.dummy_entries_peak = max(self.stats.dummy_entries_peak, after_ways - 1)
        return must_wait, set_conflict

    def finish_access(self, address: int, task_id: int) -> list:
        """Record that ``task_id`` (an active accessor of ``address``) finished.

        Returns the list of :class:`~repro.taskgraph.address_state.Waiter`
        objects that were kicked off.  When the address becomes idle its
        entry is evicted, freeing its way(s).
        """
        entry = self._entries.get(address)
        if entry is None:
            from repro.common.errors import SimulationError

            raise SimulationError(f"{self.name}: finish on untracked address {address:#x}")
        set_idx = self.set_index(address)
        before_ways = self.ways_used(address)
        released = entry.finish(task_id)
        after_ways = self.ways_used(address)
        if entry.is_idle:
            del self._entries[address]
            self._set_occupancy[set_idx] = max(0, self._set_occupancy.get(set_idx, 0) - before_ways)
            self.stats.evictions += 1
        elif after_ways != before_ways:
            self._set_occupancy[set_idx] = max(0, self._set_occupancy.get(set_idx, 0) + (after_ways - before_ways))
        return released

    def iter_entries(self) -> Iterator[AddressState]:
        """Iterate over the currently tracked address entries."""
        return iter(self._entries.values())

    def reset(self) -> None:
        """Drop all entries and statistics."""
        self._entries.clear()
        self._set_occupancy.clear()
        self.stats = TableStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AddressTable({self.name!r}, sets={self.num_sets}, ways={self.ways}, "
            f"live={self.live_entries})"
        )
