"""Golden regression tests of the dynamic (insert-while-running) runtime.

Pins, for every recursive golden program and every golden manager:

* the **exact makespan** of the dynamic run (tasks spawned at runtime);
* the **digest of the serial elaboration** against the committed
  ``dyn_<key>.json.gz`` trace;
* bit-identical results between the compiled (``Machine.run``) and
  dynamic (``Machine.run_stream``) tracking paths.

Like the static golden suite, any diff here is a change to the simulated
science: regenerate via ``tests/golden/regenerate.py`` and justify it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.system.machine import Machine, MachineConfig
from repro.trace.serialization import load_trace, trace_digest

from golden_config import GOLDEN_MANAGERS, golden_dynamic_programs

GOLDEN_DIR = Path(__file__).parent
DATA_DIR = GOLDEN_DIR / "data"
EXPECTED = json.loads((GOLDEN_DIR / "expected_makespans.json").read_text(encoding="utf-8"))

DYNAMIC_KEYS = sorted(EXPECTED["dynamic"])
MANAGER_KEYS = list(GOLDEN_MANAGERS)
CORES = EXPECTED["cores"]


@pytest.fixture(scope="module")
def programs():
    return golden_dynamic_programs()


@pytest.mark.parametrize("key", DYNAMIC_KEYS)
def test_all_dynamic_programs_are_pinned(key, programs):
    assert key in programs, f"expected_makespans.json pins unknown program {key!r}"


def test_every_program_is_pinned(programs):
    assert sorted(programs) == DYNAMIC_KEYS


@pytest.mark.parametrize("key", DYNAMIC_KEYS)
def test_committed_elaboration_matches_generator(key, programs):
    committed = load_trace(DATA_DIR / f"dyn_{key}.json.gz")
    fresh = programs[key].elaborate()
    assert trace_digest(committed) == trace_digest(fresh)
    assert trace_digest(fresh) == EXPECTED["dynamic"][key]["elaboration_digest"]
    assert committed.num_tasks == EXPECTED["dynamic"][key]["num_tasks"]


@pytest.mark.parametrize("manager_key", MANAGER_KEYS)
@pytest.mark.parametrize("key", DYNAMIC_KEYS)
def test_dynamic_makespans_exact(key, manager_key, programs):
    expected = EXPECTED["dynamic"][key]["makespans_us"][manager_key]
    machine = Machine(GOLDEN_MANAGERS[manager_key](),
                      MachineConfig(num_cores=CORES, validate=True))
    result = machine.run(programs[key])
    assert result.makespan_us == expected, (
        f"{key} under {manager_key}: makespan {result.makespan_us!r} != "
        f"golden {expected!r} — if intentional, regenerate the goldens"
    )


@pytest.mark.parametrize("manager_key", MANAGER_KEYS)
@pytest.mark.parametrize("key", DYNAMIC_KEYS)
def test_run_and_run_stream_paths_identical(key, manager_key, programs):
    """Acceptance invariant: both dynamic tracking paths agree exactly."""
    factory = GOLDEN_MANAGERS[manager_key]
    compiled_machine = Machine(factory(), MachineConfig(num_cores=CORES))
    compiled = compiled_machine.run(programs[key])
    dynamic_machine = Machine(factory(), MachineConfig(num_cores=CORES))
    dynamic = dynamic_machine.run_stream(programs[key])
    assert compiled.makespan_us == dynamic.makespan_us
    assert compiled_machine.last_ready_order == dynamic_machine.last_ready_order
    assert compiled.makespan_us == EXPECTED["dynamic"][key]["makespans_us"][manager_key]
