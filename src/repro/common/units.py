"""Unit conversions between clock cycles, seconds and micro-seconds.

Two clock domains exist in the reproduction:

* the **manager clock** of the hardware task manager (50 - 100 MHz in the
  paper, Table I), in which all pipeline latencies are expressed;
* **wall-clock time** of the simulated multicore machine, in which task
  durations from the traces are expressed (micro-seconds).

The :class:`Frequency` helper encapsulates a single clock domain and
converts between the two representations without losing precision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

#: Number of micro-seconds per second, used throughout the conversions.
US_PER_SECOND: float = 1_000_000.0


def cycles_to_seconds(cycles: float, frequency_mhz: float) -> float:
    """Convert a number of clock cycles into seconds.

    Parameters
    ----------
    cycles:
        Number of cycles (may be fractional for average-rate computations).
    frequency_mhz:
        Clock frequency in MHz.
    """
    if frequency_mhz <= 0:
        raise ConfigurationError(f"frequency must be positive, got {frequency_mhz}")
    return cycles / (frequency_mhz * US_PER_SECOND)


def cycles_to_us(cycles: float, frequency_mhz: float) -> float:
    """Convert a number of clock cycles into micro-seconds."""
    if frequency_mhz <= 0:
        raise ConfigurationError(f"frequency must be positive, got {frequency_mhz}")
    return cycles / frequency_mhz


def seconds_to_cycles(seconds: float, frequency_mhz: float) -> float:
    """Convert seconds into (possibly fractional) clock cycles."""
    if frequency_mhz <= 0:
        raise ConfigurationError(f"frequency must be positive, got {frequency_mhz}")
    return seconds * frequency_mhz * US_PER_SECOND


def us_to_cycles(us: float, frequency_mhz: float) -> float:
    """Convert micro-seconds into (possibly fractional) clock cycles."""
    if frequency_mhz <= 0:
        raise ConfigurationError(f"frequency must be positive, got {frequency_mhz}")
    return us * frequency_mhz


def us_to_seconds(us: float) -> float:
    """Convert micro-seconds into seconds."""
    return us / US_PER_SECOND


@dataclass(frozen=True)
class Frequency:
    """A clock domain, expressed in MHz.

    Instances are immutable and hashable so they can be used as part of
    configuration keys in parameter sweeps.
    """

    mhz: float

    def __post_init__(self) -> None:
        if self.mhz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {self.mhz} MHz")

    @property
    def hz(self) -> float:
        """Frequency in Hertz."""
        return self.mhz * US_PER_SECOND

    @property
    def cycle_time_us(self) -> float:
        """Duration of one clock cycle in micro-seconds."""
        return 1.0 / self.mhz

    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.hz

    def cycles_to_us(self, cycles: float) -> float:
        """Convert ``cycles`` of this clock into micro-seconds."""
        return cycles / self.mhz

    def us_to_cycles(self, us: float) -> float:
        """Convert micro-seconds into cycles of this clock."""
        return us * self.mhz

    def scaled(self, factor: float) -> "Frequency":
        """Return a new clock running ``factor`` times faster."""
        return Frequency(self.mhz * factor)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mhz:g} MHz"
