"""End-to-end tests of the sweep CLI (python -m repro.experiments.cli)."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.cli import main
from repro.trace.serialization import iter_jsonl


def grid_args(*extra):
    return [
        "--workloads", "microbench",
        "--managers", "ideal", "nexus#2",
        "--cores", "1", "2",
        "--seeds", "2015",
        *extra,
    ]


class TestSweepCommand:
    def test_sweep_writes_jsonl_and_reports_counts(self, tmp_path, capsys):
        output = tmp_path / "rows.jsonl"
        code = main(["sweep", *grid_args("--output", str(output), "--cache-dir", str(tmp_path / "cache"))])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 points, 4 executed, 0 cached" in out
        assert "microbench" in out
        rows = list(iter_jsonl(output))
        assert len(rows) == 4
        assert {row["point"]["manager"] for row in rows} == {"Ideal", "Nexus# 2TG"}

    def test_second_sweep_is_fully_cached(self, tmp_path, capsys):
        args = ["sweep", *grid_args("--cache-dir", str(tmp_path / "cache"), "--quiet")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "4 points, 0 executed, 4 cached" in capsys.readouterr().out

    def test_parallel_sweep_matches_serial(self, tmp_path):
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        assert main(["sweep", *grid_args("--output", str(serial), "--quiet")]) == 0
        assert main(["sweep", *grid_args("--output", str(parallel), "--quiet", "--n-jobs", "2")]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_distributed_sweep_matches_serial(self, tmp_path):
        serial = tmp_path / "serial.jsonl"
        dist = tmp_path / "dist.jsonl"
        assert main(["sweep", *grid_args("--output", str(serial), "--quiet")]) == 0
        assert main(["sweep", *grid_args("--output", str(dist), "--quiet",
                                         "--workers", "2")]) == 0
        assert serial.read_bytes() == dist.read_bytes()

    def test_auto_worker_counts_resolve_to_cpu_count(self, capsys):
        assert main(["sweep", *grid_args("--quiet", "--n-jobs", "auto")]) == 0
        assert "4 points, 4 executed" in capsys.readouterr().out

    def test_bad_worker_counts_are_rejected(self):
        with pytest.raises(ConfigurationError, match="n_jobs"):
            main(["sweep", *grid_args("--n-jobs", "bogus")])
        with pytest.raises(ConfigurationError, match="n_jobs"):
            main(["sweep", *grid_args("--n-jobs", "0")])
        with pytest.raises(ConfigurationError, match="workers"):
            main(["sweep", *grid_args("--workers", "0")])
        with pytest.raises(ConfigurationError, match="workers"):
            main(["sweep", *grid_args("--workers", "some")])

    def test_nanos_max_cores_cap(self, capsys):
        code = main([
            "sweep", "--workloads", "microbench", "--managers", "nanos",
            "--cores", "1", "64", "--nanos-max-cores", "32", "--quiet",
        ])
        assert code == 0
        assert "1 points" in capsys.readouterr().out


class TestOtherCommands:
    def test_spec_hash_is_printed_and_stable(self, capsys):
        assert main(["spec-hash", *grid_args()]) == 0
        first = capsys.readouterr().out.strip()
        assert main(["spec-hash", *grid_args()]) == 0
        second = capsys.readouterr().out.strip()
        assert first == second
        assert len(first) == 64

    def test_workloads_lists_registry(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "microbench" in out and "c-ray" in out

    def test_report_disambiguates_multi_seed_sweeps(self, tmp_path, capsys):
        output = tmp_path / "multiseed.jsonl"
        code = main([
            "sweep", "--workloads", "microbench", "--managers", "ideal",
            "--cores", "1", "2", "--seeds", "1", "2",
            "--output", str(output), "--quiet",
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["report", str(output)]) == 0
        out = capsys.readouterr().out
        assert "microbench#seed=1" in out and "microbench#seed=2" in out
        # Each per-seed table has exactly the two swept core columns.
        for line in out.splitlines():
            if line.startswith("Ideal"):
                assert len(line.split()) == 3  # name + two speedup cells

    def test_report_renders_speedup_tables(self, tmp_path, capsys):
        output = tmp_path / "rows.jsonl"
        assert main(["sweep", *grid_args("--output", str(output), "--quiet")]) == 0
        capsys.readouterr()
        assert main(["report", str(output)]) == 0
        out = capsys.readouterr().out
        assert "microbench" in out
        assert "Ideal" in out and "Nexus# 2TG" in out
        assert "1 cores" in out and "2 cores" in out
