"""rot-cc: image rotation + colour conversion workload (Starbench).

Section V-A: "For rot-cc there are two tasks per line, one for rotation
and one for color conversion, with the second depending on the first.
All pairs are independent from each other."

Table II: 16262 tasks, 8150 ms total work, 501 µs average task size,
1 dependency per task.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.trace.events import TraceEvent
from repro.trace.stream import EventEmitter, TraceStream, materialize
from repro.trace.trace import Trace
from repro.workloads.addressing import AddressSpace

#: Paper values (Table II).
PAPER_NUM_TASKS = 16262
PAPER_AVG_TASK_US = 501.0


def stream_rotcc(
    scale: float = 1.0,
    seed: Optional[int] = None,
    *,
    num_lines: Optional[int] = None,
    avg_task_us: float = PAPER_AVG_TASK_US,
    rotate_fraction: float = 0.55,
    duration_cv: float = 0.10,
) -> TraceStream:
    """Stream a rot-cc trace (see :func:`generate_rotcc` for parameters)."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    if not 0.0 < rotate_fraction < 1.0:
        raise ConfigurationError(f"rotate_fraction must be in (0, 1), got {rotate_fraction}")
    if num_lines is None:
        num_lines = max(1, round(PAPER_NUM_TASKS * scale / 2))
    if num_lines <= 0:
        raise ConfigurationError(f"num_lines must be positive, got {num_lines}")
    lines = num_lines

    def events() -> Iterator[TraceEvent]:
        rng = make_rng(seed, "rot-cc")
        space = AddressSpace(seed=seed)
        emit = EventEmitter()
        pair_work_us = 2.0 * avg_task_us
        line_addresses = space.alloc(lines)
        rotate_jitter = rng.normal(1.0, duration_cv, size=lines).clip(min=0.1)
        convert_jitter = rng.normal(1.0, duration_cv, size=lines).clip(min=0.1)
        for line, address in enumerate(line_addresses):
            rotate_us = pair_work_us * rotate_fraction * float(rotate_jitter[line])
            convert_us = pair_work_us * (1.0 - rotate_fraction) * float(convert_jitter[line])
            yield emit.task("rotate_line", duration_us=rotate_us, inouts=[address])
            yield emit.task("color_convert_line", duration_us=convert_us, inouts=[address])
        yield emit.taskwait()

    return TraceStream(
        "rot-cc",
        events,
        metadata={
            "suite": "Starbench",
            "num_lines": num_lines,
            "avg_task_us": avg_task_us,
            "scale": scale,
        },
    )


def generate_rotcc(
    scale: float = 1.0,
    seed: Optional[int] = None,
    *,
    num_lines: Optional[int] = None,
    avg_task_us: float = PAPER_AVG_TASK_US,
    rotate_fraction: float = 0.55,
    duration_cv: float = 0.10,
) -> Trace:
    """Generate a rot-cc trace.

    Each image line produces a ``rotate_line`` task followed by a
    ``color_convert_line`` task on the same line buffer (RAW dependency
    through the shared ``inout`` parameter).

    Parameters
    ----------
    scale:
        Task-count scale factor relative to the paper's 16262 tasks.
    seed:
        Seed for duration jitter.
    num_lines:
        Explicit number of line pairs (overrides ``scale``).
    avg_task_us:
        Mean task duration across both task types.
    rotate_fraction:
        Fraction of a pair's work spent in the rotation task (rotation is
        slightly heavier than colour conversion).
    duration_cv:
        Coefficient of variation of task durations.
    """
    return materialize(stream_rotcc(
        scale, seed,
        num_lines=num_lines, avg_task_us=avg_task_us,
        rotate_fraction=rotate_fraction, duration_cv=duration_cv))
