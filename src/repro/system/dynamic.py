"""The dynamic task-graph runtime: insert-while-running replay.

This is the engine behind :meth:`repro.system.machine.Machine.run_dynamic`
(and the ``Machine.run`` / ``Machine.run_stream`` dispatch for
:class:`~repro.trace.dynamic.DynamicProgram` sources).  It simulates the
regime the paper's hardware actually serves: tasks arrive from a running
OmpSs-style program — the master thread *and* executing tasks may spawn
new tasks and issue ``taskwait`` — so nothing about the task set is known
at t=0.

Semantics
---------

* **Spawn** — the spawning core (or the master thread) submits the child
  to the manager at its current time and is throttled exactly like the
  static master: it resumes at ``max(accept_time, now +
  creation_overhead)``.  While a worker spawns, its core is occupied but
  the time is not counted as busy/compute time.
* **Task-level taskwait** — the task suspends until all children *it*
  spawned so far have finished.  By default the suspended task releases
  its core (an OmpSs task-scheduling point: the core runs other ready
  work meanwhile), and the parent resumes with priority over newly
  queued ready tasks once its children drain.  With
  ``MachineConfig.taskwait_holds_core=True`` the core stays blocked
  instead — faithful to a naive tied-task runtime, but recursion deeper
  than the core count then deadlocks, which the engine reports as a
  :class:`~repro.common.errors.SimulationError` naming the stuck tasks.
* **Master taskwait / taskwait on** — identical to the static machine:
  a full barrier over every in-flight task, and the last-writer barrier
  with the Nexus++ degradation when the manager lacks the pragma.
* **Worker overhead** — charged once per task, on its first compute
  segment (a pure control body with no :class:`~repro.trace.dynamic.
  Compute` op pays none).

Two dependency-tracking paths drive the same loop and must stay
byte-identical (the fuzz suite in ``tests/fuzz/`` pins this):

* ``compiled=True`` (the ``Machine.run`` dispatch): a fresh, *growable*
  :class:`~repro.trace.compiled.CompiledAccessProgram` is bound to the
  manager before the run and every spawned task is interned into it, so
  the tracker keeps its preresolved-int-array hot path even though task
  ids are unknown at t=0;
* ``compiled=False`` (the ``Machine.run_stream`` dispatch): the
  tracker's dynamic access-by-access path, with no program bound.

Determinism: given a deterministic program, the engine is fully
deterministic — the event queue orders ties by ``(time, priority,
sequence)`` and every manager interaction happens in event-processing
order — so repeated runs, and the two tracking paths, agree exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator
from repro.system.results import MachineResult
from repro.system.timeline import TaskTimeline
from repro.system.topology import CorePool
from repro.trace.compiled import CompiledAccessProgram
from repro.trace.dynamic import Compute, DynamicProgram, Spawn, Taskwait, TaskwaitOn
from repro.trace.events import SpawnEvent, TraceEvent
from repro.trace.trace import Trace

# Event kinds / priorities (completions before readies before the master,
# matching the static machine loop).
_PRIORITY_DONE = 0
_PRIORITY_READY = 1
_PRIORITY_MASTER = 2

_KIND_SEGMENT = "segment-done"
_KIND_READY = "task-ready"
_KIND_MASTER = "master-step"


class _TaskRun:
    """Live state of one spawned task (from submission to retirement)."""

    __slots__ = ("task", "body", "gen", "parent_id", "slot", "core",
                 "children", "waiting", "first_segment")

    def __init__(self, task, body, parent_id: Optional[int], slot: int) -> None:
        self.task = task
        self.body = body
        self.gen = None          # instantiated when the task starts
        self.parent_id = parent_id
        self.slot = slot         # timeline slot (-1 when not collecting)
        self.core: int = -1      # -1 = not on a core (queued / suspended)
        self.children = 0        # direct children still in flight
        self.waiting = False     # suspended in a task-level taskwait
        self.first_segment = True


def run_dynamic(
    machine,
    program: DynamicProgram,
    *,
    compiled: bool,
    max_in_flight: Optional[int] = None,
) -> MachineResult:
    """Replay ``program`` on ``machine``; see the module docstring."""
    if max_in_flight is not None and max_in_flight <= 0:
        raise SimulationError(f"max_in_flight must be positive, got {max_in_flight}")
    config = machine.config
    manager = machine.manager
    manager.reset()
    access_program: Optional[CompiledAccessProgram] = None
    if compiled:
        # A fresh growable program per run: dynamic task sets are never
        # shared across runs, so nothing is cached on a trace object.
        access_program = CompiledAccessProgram()
        manager.prepare_program(access_program)
    policy = machine.policy
    policy.reset()
    pool = CorePool(machine.topology)
    holds_core = config.taskwait_holds_core

    sim = Simulator()
    queue = sim.queue
    push = queue.push

    # --- state -------------------------------------------------------------
    master_gen = program.master()
    master_time = 0.0
    master_blocked: Optional[Tuple[str, Optional[int]]] = None
    master_done = False
    master_send: object = None       # value delivered to the master's next yield
    master_barrier_resuming = False  # next advance sends master_time instead
    outstanding = 0
    num_tasks = 0
    next_task_id = 0
    total_work_us = 0.0
    finished_count = 0
    core_busy_us = 0.0

    runs: Dict[int, _TaskRun] = {}
    unfinished: set = set()
    dispatched: set = set()
    writes_of: Dict[int, Tuple[int, ...]] = {}
    last_writer: Dict[int, int] = {}
    resume_queue: deque = deque()    # parents whose children drained, awaiting a core
    ready_order: List[int] = []

    validate = config.validate
    collect = config.keep_schedule or validate
    timeline = TaskTimeline.growable() if collect else None
    recorded_events: List[TraceEvent] = []  # submission order (collect/validate)

    worker_overhead = manager.worker_overhead_us
    supports_taskwait_on = manager.supports_taskwait_on
    speeds = pool.speeds
    busy_us = pool.busy_us
    acquire = pool.acquire
    release = pool.release
    idle_ranks = pool.idle_ranks
    enqueue = policy.enqueue
    select = policy.select
    policy_pending = policy.__len__
    wants_start_events = policy.wants_start_events
    manager_submit = manager.submit
    manager_finish = manager.finish

    # --- submission (shared by master spawns and task spawns) ---------------
    def submit_task(request, parent: Optional[_TaskRun], time: float) -> Tuple[int, float]:
        nonlocal next_task_id, outstanding, num_tasks, total_work_us
        task_id = next_task_id
        next_task_id = task_id + 1
        task = request.descriptor(task_id)
        slot = -1
        if collect:
            slot = timeline.add_task(task_id)
            timeline.submit[slot] = time
            recorded_events.append(
                SpawnEvent(task, parent_id=None if parent is None else parent.task.task_id))
        rec = _TaskRun(task, request.body, None if parent is None else parent.task.task_id, slot)
        runs[task_id] = rec
        unfinished.add(task_id)
        outstanding += 1
        num_tasks += 1
        total_work_us += task.duration_us
        if parent is not None:
            parent.children += 1
        write_addrs = task.output_addresses
        if write_addrs:
            writes_of[task_id] = write_addrs
            for address in write_addrs:
                last_writer[address] = task_id
        if access_program is not None:
            access_program.add_task(task)
        outcome = manager_submit(task, time)
        for notification in outcome.ready:
            ready_id = notification.task_id
            ready_time = notification.time_us
            if collect:
                timeline.ready[runs[ready_id].slot] = ready_time
            push(ready_time if ready_time > time else time,
                 _KIND_READY, ready_id, _PRIORITY_READY)
        accept = outcome.accept_time_us
        if accept < time:
            raise SimulationError(
                f"manager {manager.name} accepted task {task_id} in the past")
        return task_id, accept

    # --- core dispatch -------------------------------------------------------
    def fill_cores(now: float) -> None:
        """Hand idle cores to resuming parents first, then queued ready tasks."""
        while idle_ranks:
            if resume_queue:
                rec = runs[resume_queue.popleft()]
                rec.core = acquire()
                advance_body(rec, now, now)
            elif policy_pending():
                core = acquire()
                task_id = select(core, now)
                if task_id is None:
                    release(core)
                    break
                start_task(task_id, now, core)
            else:
                break

    def start_task(task_id: int, now: float, core: int) -> None:
        rec = runs[task_id]
        rec.core = core
        if collect:
            timeline.start[rec.slot] = now
            timeline.core[rec.slot] = core
        if wants_start_events:
            policy.on_start(task_id, rec.task, core, now)
        if rec.body is None:
            schedule_segment(rec, now, rec.task.duration_us)
        else:
            rec.gen = rec.body()
            advance_body(rec, now, None)

    def schedule_segment(rec: _TaskRun, now: float, duration_us: float) -> None:
        nonlocal core_busy_us
        nominal = duration_us
        if rec.first_segment:
            nominal += worker_overhead
            rec.first_segment = False
        speed = speeds[rec.core]
        real = nominal if speed == 1.0 else nominal / speed
        end = now + real
        core_busy_us += real
        busy_us[rec.core] += real
        push(end, _KIND_SEGMENT, rec.task.task_id, _PRIORITY_DONE)

    def advance_body(rec: _TaskRun, now: float, send: object) -> None:
        """Drive ``rec``'s body until it computes, suspends, or finishes."""
        gen = rec.gen
        task_id = rec.task.task_id
        while True:
            try:
                op = gen.send(send)
            except StopIteration:
                finish_task(rec, now)
                return
            if isinstance(op, Compute):
                schedule_segment(rec, now, op.duration_us)
                return
            if isinstance(op, Spawn):
                child_id, accept = submit_task(op.request, rec, now)
                next_time = now + op.request.creation_overhead_us
                if accept > next_time:
                    next_time = accept
                now = next_time
                send = child_id
                continue
            if isinstance(op, Taskwait):
                if rec.children == 0:
                    send = now
                    continue
                rec.waiting = True
                if not holds_core:
                    core = rec.core
                    rec.core = -1
                    release(core)
                    fill_cores(now)
                return
            if isinstance(op, TaskwaitOn):
                raise SimulationError(
                    f"task {task_id} ({program.name}): TaskwaitOn is a "
                    "master-only op; task bodies join children with Taskwait")
            raise SimulationError(
                f"task {task_id} ({program.name}): unknown dynamic op {op!r}")

    def finish_task(rec: _TaskRun, now: float) -> None:
        nonlocal outstanding, finished_count
        task_id = rec.task.task_id
        outstanding -= 1
        finished_count += 1
        unfinished.discard(task_id)
        dispatched.discard(task_id)
        if collect:
            timeline.finish[rec.slot] = now
        write_addrs = writes_of.pop(task_id, None)
        if write_addrs:
            for address in write_addrs:
                if last_writer.get(address) == task_id:
                    del last_writer[address]
        outcome = manager_finish(task_id, now)
        for notification in outcome.ready:
            ready_id = notification.task_id
            ready_time = notification.time_us
            if collect:
                timeline.ready[runs[ready_id].slot] = ready_time
            push(ready_time if ready_time > now else now,
                 _KIND_READY, ready_id, _PRIORITY_READY)
        # Wake the parent when this was its last in-flight child.
        parent_id = rec.parent_id
        if parent_id is not None:
            parent = runs.get(parent_id)
            if parent is not None:
                parent.children -= 1
                if parent.children == 0 and parent.waiting:
                    parent.waiting = False
                    if holds_core:
                        # The parent never released its core: it resumes
                        # in place, at its child's completion time.
                        advance_body(parent, now, now)
                    else:
                        resume_queue.append(parent_id)
        core = rec.core
        del runs[task_id]
        release(core)
        fill_cores(now)
        if master_blocked is not None and barrier_satisfied(now) and not master_done:
            push(master_time, _KIND_MASTER, None, _PRIORITY_MASTER)

    # --- master ------------------------------------------------------------
    def barrier_satisfied(now: float) -> bool:
        nonlocal master_blocked, master_time
        if master_blocked is None:
            return False
        kind, waited_task = master_blocked
        if kind == "all":
            if outstanding != 0:
                return False
        elif kind == "task":
            if waited_task in unfinished:
                return False
        else:  # kind == "window": back-pressure stall
            assert max_in_flight is not None
            if outstanding >= max_in_flight:
                return False
        master_blocked = None
        if now > master_time:
            master_time = now
        return True

    def advance_master(now: float) -> None:
        nonlocal master_time, master_blocked, master_done
        nonlocal master_send, master_barrier_resuming
        if now > master_time:
            master_time = now
        if master_barrier_resuming:
            master_send = master_time
            master_barrier_resuming = False
        while True:
            if max_in_flight is not None and outstanding >= max_in_flight:
                # Window stalls keep master_send: the pending response
                # belongs to the op consumed before the stall.
                master_blocked = ("window", None)
                return
            try:
                op = master_gen.send(master_send)
            except StopIteration:
                master_done = True
                return
            if isinstance(op, Spawn):
                task_id, accept = submit_task(op.request, None, master_time)
                master_send = task_id
                next_time = master_time + op.request.creation_overhead_us
                if accept > next_time:
                    next_time = accept
                master_time = next_time
                pending = queue.next_time
                if pending is not None and pending <= master_time:
                    push(master_time, _KIND_MASTER, None, _PRIORITY_MASTER)
                    return
                # Same inline-submission fast path as the static loops.
                continue
            if isinstance(op, Compute):
                # A serial section on the master thread.
                master_time += op.duration_us
                master_send = master_time
                continue
            if isinstance(op, Taskwait) or (
                isinstance(op, TaskwaitOn) and not supports_taskwait_on
            ):
                # Nexus++-style degradation of `taskwait on` (Section III).
                if outstanding == 0:
                    master_send = master_time
                    continue
                master_blocked = ("all", None)
                master_barrier_resuming = True
                return
            if not isinstance(op, TaskwaitOn):
                raise SimulationError(f"{program.name}: unknown master op {op!r}")
            writer = last_writer.get(op.address)
            if writer is None:
                # Never written, or the writer already finished (pruned).
                master_send = master_time
                continue
            master_blocked = ("task", writer)
            master_barrier_resuming = True
            return

    # --- event handlers ------------------------------------------------------
    def on_master(sim: Simulator, event) -> None:
        if master_blocked is None and not master_done:
            advance_master(event[0])

    def on_ready(sim: Simulator, event) -> None:
        task_id = event[4]
        if task_id in dispatched:
            raise SimulationError(f"task {task_id} reported ready twice")
        dispatched.add(task_id)
        ready_order.append(task_id)
        now = event[0]
        if idle_ranks:
            start_task(task_id, now, acquire())
        else:
            enqueue(task_id, runs[task_id].task, now)

    def on_segment(sim: Simulator, event) -> None:
        rec = runs[event[4]]
        now = event[0]
        if rec.gen is None:
            finish_task(rec, now)
        else:
            advance_body(rec, now, now)

    sim.on(_KIND_MASTER, on_master)
    sim.on(_KIND_READY, on_ready)
    sim.on(_KIND_SEGMENT, on_segment)

    # --- main loop ------------------------------------------------------------
    advance_master(0.0)
    sim.run()
    machine.last_events_processed = sim.processed_events
    machine.last_ready_order = tuple(ready_order)
    makespan = sim.now if sim.now > master_time else master_time

    # --- consistency checks -----------------------------------------------------
    if finished_count != num_tasks or not master_done or master_blocked is not None:
        blocked = sorted(tid for tid, rec in runs.items() if rec.waiting)
        missing = num_tasks - finished_count
        raise SimulationError(
            f"{manager.name} on {program.name}: {missing} of {num_tasks} tasks never "
            f"finished (master {'done' if master_done else 'stuck'}; "
            f"{len(blocked)} tasks suspended in taskwait: {blocked[:10]}"
            f"{'...' if len(blocked) > 10 else ''})"
            + (" — taskwait_holds_core=True deadlocks when the spawn tree is "
               "deeper than the core count" if holds_core and blocked else "")
        )

    if validate:
        replayed = Trace(name=program.name, events=tuple(recorded_events),
                         metadata=dict(program.metadata))
        from repro.trace.dag import validate_schedule

        validate_schedule(replayed, timeline.start_dict(), timeline.finish_dict())

    keep = config.keep_schedule and timeline is not None
    return MachineResult(
        trace_name=program.name,
        manager_name=manager.name,
        num_cores=config.num_cores,
        makespan_us=makespan,
        total_work_us=total_work_us,
        num_tasks=num_tasks,
        submit_times=timeline.submit_dict() if keep else {},
        ready_times=timeline.ready_dict() if keep else {},
        start_times=timeline.start_dict() if keep else {},
        finish_times=timeline.finish_dict() if keep else {},
        master_finish_us=master_time,
        core_busy_us=core_busy_us,
        manager_stats=dict(manager.statistics()),
        scheduler=policy.name,
        topology=machine.topology.describe(),
        per_core_busy_us=tuple(pool.busy_us),
        task_cores=timeline.core_dict() if keep else {},
    )
