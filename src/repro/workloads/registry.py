"""Registry of the paper's named workloads.

Maps the benchmark names used throughout the paper's tables and figures
to ready-to-call trace generators.  The registry is what the benchmark
harness and the command-line driver use, so experiment scripts refer to
workloads exactly the way the paper does (e.g. ``"h264dec-1x1-10f"``).

Every workload exists in two forms that produce byte-identical traces:

* :func:`get_workload_stream` returns a lazy, replayable
  :class:`~repro.trace.stream.TraceStream` (bounded generator memory);
* :func:`get_workload` materialises the stream into a classic
  :class:`~repro.trace.trace.Trace`.

**Dynamic workloads** (``fib``, ``nqueens``, ``recursive-sort``,
``strassen``) are registered alongside the static ones: their factories
return a :class:`~repro.trace.dynamic.DynamicProgram`, which satisfies
the stream protocol through its serial elaboration — so
:func:`get_workload` still yields a static trace (the elaboration), while
:func:`get_dynamic_program` (and the machine's dynamic replay paths)
exercise the insert-while-running regime.  Their recursion depth is a
first-class experiment axis: pass ``depth`` to either getter (see
:data:`DYNAMIC_PROGRAMS` for what "depth" means per workload).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.common.errors import ConfigurationError
from repro.trace.dynamic import DynamicProgram
from repro.trace.stream import TaskStream, TraceStream, materialize
from repro.trace.trace import Trace
from repro.workloads.cray import stream_cray
from repro.workloads.gaussian import stream_gaussian_elimination
from repro.workloads.h264dec import stream_h264dec
from repro.workloads.microbench import stream_microbenchmark
from repro.workloads.recursive import (
    fib_program,
    nqueens_program,
    recursive_sort_program,
    strassen_program,
)
from repro.workloads.rotcc import stream_rotcc
from repro.workloads.sparselu import stream_sparselu
from repro.workloads.streamcluster import stream_streamcluster

#: A workload factory takes (scale, seed) and returns a trace.
WorkloadFactory = Callable[[float, Optional[int]], Trace]

#: A stream factory takes (scale, seed) and returns a lazy task stream.
StreamFactory = Callable[[float, Optional[int]], TaskStream]

#: A dynamic factory takes (scale, seed, depth) and returns a program.
DynamicFactory = Callable[[float, Optional[int], Optional[int]], DynamicProgram]


def _h264_stream_factory(grouping: int) -> StreamFactory:
    def factory(scale: float = 1.0, seed: Optional[int] = None) -> TraceStream:
        return stream_h264dec(grouping=grouping, num_frames=10, seed=seed, scale=scale)

    return factory


def _gaussian_stream_factory(matrix_size: int) -> StreamFactory:
    def factory(scale: float = 1.0, seed: Optional[int] = None) -> TraceStream:
        # The Gaussian benchmark is defined by its matrix size; `scale`
        # shrinks the matrix (keeping the triangular dependency shape).
        effective = max(4, int(round(matrix_size * (scale ** 0.5))))
        return stream_gaussian_elimination(matrix_size=effective, seed=seed)

    return factory


#: Lazy stream factories — the single source of truth for every named
#: workload; the materialised registry below is derived from it.
STREAMS: Dict[str, StreamFactory] = {
    "c-ray": lambda scale=1.0, seed=None: stream_cray(scale=scale, seed=seed),
    "rot-cc": lambda scale=1.0, seed=None: stream_rotcc(scale=scale, seed=seed),
    "sparselu": lambda scale=1.0, seed=None: stream_sparselu(scale=scale, seed=seed),
    "streamcluster": lambda scale=1.0, seed=None: stream_streamcluster(scale=scale, seed=seed),
    "h264dec-1x1-10f": _h264_stream_factory(1),
    "h264dec-2x2-10f": _h264_stream_factory(2),
    "h264dec-4x4-10f": _h264_stream_factory(4),
    "h264dec-8x8-10f": _h264_stream_factory(8),
    "gaussian-250": _gaussian_stream_factory(250),
    "gaussian-500": _gaussian_stream_factory(500),
    "gaussian-1000": _gaussian_stream_factory(1000),
    "gaussian-3000": _gaussian_stream_factory(3000),
    "microbench": lambda scale=1.0, seed=None: stream_microbenchmark(seed=seed),
}

#: Dynamic (insert-while-running) workloads: factory(scale, seed, depth)
#: -> DynamicProgram.  "depth" per workload: fib -> n, nqueens -> board
#: size, recursive-sort -> log2(blocks), strassen -> recursion depth.
DYNAMIC_PROGRAMS: Dict[str, DynamicFactory] = {
    "fib": lambda scale=1.0, seed=None, depth=None: fib_program(
        n=12 if depth is None else depth, seed=seed, scale=scale),
    "nqueens": lambda scale=1.0, seed=None, depth=None: nqueens_program(
        n=6 if depth is None else depth, seed=seed, scale=scale),
    "recursive-sort": lambda scale=1.0, seed=None, depth=None: recursive_sort_program(
        num_blocks=2 ** (5 if depth is None else depth), seed=seed, scale=scale),
    "strassen": lambda scale=1.0, seed=None, depth=None: strassen_program(
        depth=2 if depth is None else depth, seed=seed, scale=scale),
}

# Dynamic programs satisfy the stream protocol (serial elaboration), so
# they live in the same registry every consumer already walks.
STREAMS.update({
    name: (lambda factory: lambda scale=1.0, seed=None: factory(scale, seed, None))(factory)
    for name, factory in DYNAMIC_PROGRAMS.items()
})


def is_dynamic_workload(name: str) -> bool:
    """Whether ``name`` is a dynamic (insert-while-running) workload.

    >>> is_dynamic_workload("fib"), is_dynamic_workload("c-ray")
    (True, False)
    """
    return name in DYNAMIC_PROGRAMS


def get_dynamic_program(
    name: str, scale: float = 1.0, seed: Optional[int] = None,
    depth: Optional[int] = None,
) -> DynamicProgram:
    """Build the named dynamic workload program.

    >>> get_dynamic_program("fib", depth=5).metadata["n"]
    5
    """
    try:
        factory = DYNAMIC_PROGRAMS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown dynamic workload {name!r}; available: "
            f"{', '.join(sorted(DYNAMIC_PROGRAMS))}"
        ) from exc
    return factory(scale, seed, depth)


def _materialized(factory: StreamFactory) -> WorkloadFactory:
    def generate(scale: float = 1.0, seed: Optional[int] = None) -> Trace:
        return materialize(factory(scale, seed))

    return generate


WORKLOADS: Dict[str, WorkloadFactory] = {
    name: _materialized(factory) for name, factory in STREAMS.items()
}

#: The workloads listed in Table II, in the paper's row order.
TABLE2_WORKLOADS = (
    "c-ray",
    "rot-cc",
    "sparselu",
    "streamcluster",
    "h264dec-1x1-10f",
    "h264dec-2x2-10f",
    "h264dec-4x4-10f",
    "h264dec-8x8-10f",
)


def list_workloads() -> list[str]:
    """Names of all registered workloads.

    >>> "c-ray" in list_workloads() and "microbench" in list_workloads()
    True
    """
    return sorted(WORKLOADS)


def paper_table2_workloads() -> tuple[str, ...]:
    """Workload names in the order of the paper's Table II."""
    return TABLE2_WORKLOADS


def get_workload(
    name: str, scale: float = 1.0, seed: Optional[int] = None,
    depth: Optional[int] = None,
) -> Trace:
    """Generate the named workload at the given scale.

    For a dynamic workload this materialises its serial elaboration (a
    valid static trace with the same tasks and addresses).

    >>> trace = get_workload("microbench")
    >>> trace.num_tasks
    5
    """
    return materialize(get_workload_stream(name, scale=scale, seed=seed, depth=depth))


def get_workload_stream(
    name: str, scale: float = 1.0, seed: Optional[int] = None,
    depth: Optional[int] = None,
) -> TaskStream:
    """Open the named workload as a lazy task stream.

    The stream replays deterministically (generators re-seed per replay)
    and materialises to the exact trace :func:`get_workload` returns.
    Dynamic workloads return their :class:`~repro.trace.dynamic.
    DynamicProgram` (which streams its serial elaboration); ``depth`` is
    only valid for them.
    """
    if depth is not None:
        return get_dynamic_program(name, scale=scale, seed=seed, depth=depth)
    try:
        factory = STREAMS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {', '.join(sorted(STREAMS))}"
        ) from exc
    return factory(scale, seed)
