"""The sweep worker: pull cells over a socket, run them, stream results.

A worker is a small pull-based loop around the existing engine:

1. connect to the scheduler, send ``hello``, receive the ``setup``
   frame (the pickled job table — once per worker, not per cell — plus
   the ``batch_lanes`` setting and the shared cache directory);
2. ask for work (``need_work``) and execute the assigned cells; chunks
   whose cells are lane-compatible advance in lockstep through
   :func:`repro.sim.batch.run_lanes`, everything else runs through the
   scalar :meth:`Machine.run <repro.system.machine.Machine.run>` path —
   exactly like a local sweep, so results are byte-identical;
3. publish every finished cell into the shared content-addressed
   :class:`~repro.experiments.cache.ResultCache` (atomic writes — a
   worker killed mid-publish can never leave a truncated entry) and
   stream the result document back as a ``result`` frame;
4. between cells, drain control frames without blocking: ``revoke``
   (cells stolen for an idle worker — drop them), ``work`` (more
   cells), ``shutdown`` (clean exit).  A daemon thread sends
   ``heartbeat`` frames so the scheduler can tell a busy worker from a
   dead one.

Standalone entry point (for remote hosts)::

    python -m repro.distributed.worker --connect HOST:PORT [--worker-id ID]

The process exits 0 after a clean ``shutdown`` frame and non-zero when
the scheduler connection is lost.
"""

from __future__ import annotations

import argparse
import socket
import sys
import threading
import time
import traceback
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import ReproError
from repro.distributed.protocol import FrameStream, ProtocolError, decode_payload
from repro.resilience.retry import RetryBudgetExhausted, RetryPolicy, call_with_retry

#: Default policy for establishing (and re-establishing) the scheduler
#: connection: bounded attempts, exponential backoff, deterministic
#: jitter keyed on the worker identity.
CONNECT_POLICY = RetryPolicy(max_attempts=5, base_delay=0.2, max_delay=2.0)


def _execute_block(
    cells: List[int],
    jobs_by_cell: Dict[int, tuple],
    batch_lanes: int,
) -> List[Tuple[int, dict]]:
    """Run a block of cells; lane-batch the lane-eligible ones."""
    from repro.experiments.runner import (
        execute_lane_block,
        resolve_job,
        run_job,
    )

    results: List[Tuple[int, dict]] = []
    if batch_lanes > 1 and len(cells) > 1:
        batchable = []
        for cell in cells:
            index, point = resolve_job(jobs_by_cell[cell])
            if point.stream or point.dynamic:
                results.append(run_job(jobs_by_cell[cell]))
            else:
                batchable.append((index, point))
        if batchable:
            results.extend(execute_lane_block(batchable))
        return results
    return [run_job(jobs_by_cell[cell]) for cell in cells]


def run_worker(
    host: str,
    port: int,
    *,
    worker_id: Optional[str] = None,
    connect_policy: Optional[RetryPolicy] = None,
) -> int:
    """Serve one scheduler until it says ``shutdown``; return an exit code.

    The TCP connect is retried under ``connect_policy`` (default:
    :data:`CONNECT_POLICY`) so a worker launched moments before its
    scheduler binds — or pointed at one mid-restart — joins instead of
    dying; exhausting the policy raises
    :class:`~repro.resilience.retry.RetryBudgetExhausted`.
    """
    from repro.experiments.cache import ResultCache
    from repro.experiments.runner import install_workload_table, resolve_job

    policy = connect_policy or CONNECT_POLICY
    sock = call_with_retry(
        lambda: socket.create_connection((host, port)),
        policy,
        retry_on=(OSError,),
        key=f"connect:{worker_id or ''}",
        describe=f"connect to scheduler {host}:{port}",
    )
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    stream = FrameStream(sock)
    stop_heartbeat = threading.Event()
    try:
        stream.send({"type": "hello", "worker_id": worker_id})
        setup = stream.recv(timeout=120)
        if setup is None or setup.get("type") != "setup":
            raise ProtocolError(f"expected a setup frame, got {setup!r}")
        jobs, table = decode_payload(setup["jobs"])
        install_workload_table(table)
        jobs_by_cell: Dict[int, tuple] = {job[0]: job for job in jobs}
        batch_lanes = max(1, int(setup.get("batch_lanes") or 1))
        cache = None
        cache_dir = setup.get("cache_dir")
        if cache_dir:
            try:
                cache = ResultCache(cache_dir)
            except OSError:
                cache = None  # no shared filesystem on this host

        chaos_hook = None
        if setup.get("chaos"):
            # Chaos wraps everything *after* the handshake (the plan
            # itself arrives in the setup frame); scopes carry the
            # connection epoch so a respawned worker draws fresh faults.
            from repro.chaos import (
                ChaosFrameStream,
                ChaosResultCache,
                FaultPlan,
                WorkerChaos,
            )

            plan = FaultPlan.from_doc(setup["chaos"])
            epoch = int(setup.get("chaos_epoch") or 0)
            me = str(setup.get("worker_id") or worker_id or "worker")
            stream = ChaosFrameStream.adopt(stream, plan, f"worker:{me}:e{epoch}")
            chaos_hook = WorkerChaos(plan, f"cells:{me}:e{epoch}")
            if cache is not None:
                cache = ChaosResultCache(cache_dir, plan, f"cache:{me}:e{epoch}")

        interval = float(setup.get("heartbeat_interval") or 1.0)

        def _heartbeat() -> None:
            while not stop_heartbeat.wait(interval):
                try:
                    stream.send({"type": "heartbeat"})
                except OSError:
                    return

        threading.Thread(target=_heartbeat, name="fabric-heartbeat",
                         daemon=True).start()

        # When idle, block at most this long before re-asking for work:
        # a dropped ``need_work`` or ``work`` frame must cost one resend
        # interval, not the whole sweep.
        idle_resend = max(1.0, interval)

        queue: Deque[int] = deque()
        revoked: Set[int] = set()
        awaiting_work = True
        stream.send({"type": "need_work"})
        while True:
            if queue:
                frame = stream.poll()
            else:
                try:
                    frame = stream.recv(timeout=idle_resend)
                except TimeoutError:
                    awaiting_work = True
                    stream.send({"type": "need_work"})
                    continue
            while frame is not None:
                kind = frame.get("type")
                if kind == "work":
                    awaiting_work = False
                    for cell in frame["cells"]:
                        # A cell revoked from us earlier can be legally
                        # re-dispatched to us after its thief died.
                        revoked.discard(cell)
                        queue.append(cell)
                elif kind == "revoke":
                    revoked.update(frame["cells"])
                    queue = deque(cell for cell in queue if cell not in revoked)
                elif kind == "shutdown":
                    try:
                        # Best effort: the scheduler may already have
                        # torn the connection down behind the frame.
                        stream.send({"type": "goodbye"})
                    except OSError:
                        pass
                    return 0
                else:
                    raise ProtocolError(f"unexpected frame from scheduler: {kind!r}")
                frame = stream.poll()
            if stream.eof:
                return 1  # scheduler vanished
            cells: List[int] = []
            while queue and len(cells) < batch_lanes:
                cell = queue.popleft()
                if cell in revoked:
                    revoked.discard(cell)
                    continue
                cells.append(cell)
            if cells:
                if chaos_hook is not None:
                    for _ in cells:
                        chaos_hook.before_cell(stream, on_hang=stop_heartbeat.set)
                try:
                    block = _execute_block(cells, jobs_by_cell, batch_lanes)
                except ReproError as exc:
                    # A cell the engine cannot run would fail on every
                    # worker; tell the scheduler instead of letting the
                    # retry budget burn through the pool.
                    stream.send({
                        "type": "error",
                        "cells": cells,
                        "message": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    })
                    return 1
                for index, doc in block:
                    if cache is not None:
                        _, point = resolve_job(jobs_by_cell[index])
                        if point.cacheable:
                            cache.put(point.cache_key(), doc)
                    stream.send({"type": "result", "cell": index, "doc": doc})
            if not queue and not awaiting_work:
                awaiting_work = True
                stream.send({"type": "need_work"})
    except (OSError, TimeoutError, ProtocolError):
        return 1
    finally:
        stop_heartbeat.set()
        stream.close()


def _parse_endpoint(value: str) -> Tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad port in {value!r}") from exc


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sweep-worker",
        description="Join a distributed sweep as a socket worker.",
    )
    parser.add_argument("--connect", type=_parse_endpoint, required=True,
                        metavar="HOST:PORT",
                        help="scheduler endpoint to pull grid cells from")
    parser.add_argument("--worker-id", default=None,
                        help="optional stable identity (shown in scheduler logs)")
    parser.add_argument("--reconnect-attempts", type=int, default=5,
                        help="bounded reconnect budget after a lost scheduler "
                             "connection (default: 5)")
    args = parser.parse_args(argv)
    host, port = args.connect
    policy = RetryPolicy(
        max_attempts=max(1, args.reconnect_attempts),
        base_delay=0.2, max_delay=2.0)
    key = args.worker_id or "worker"
    attempt = 0
    while True:
        try:
            code = run_worker(host, port, worker_id=args.worker_id,
                              connect_policy=policy)
        except RetryBudgetExhausted:
            return 1
        if code == 0:
            return 0
        # A lost connection mid-sweep: rejoin under the same identity
        # (the scheduler bumps our chaos epoch, so an injected crash is
        # not replayed) until the reconnect budget runs out.
        if attempt >= policy.max_attempts - 1:
            return 1
        time.sleep(policy.delay(attempt, key=key))
        attempt += 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
