"""The frontier journal: an append-only completions log for sweeps.

The scheduler's checkpoint.  One JSONL file next to the shared result
store records every grid cell the scheduler has accepted a result for,
*with the result document inline* — so a scheduler SIGKILLed mid-sweep
can be restarted against the same journal and resume exactly where it
died: journalled cells are pre-completed (their documents replayed from
the log) and never re-dispatched, independent of whether the cell was
cacheable in the content-addressed store.

Format (version 1)::

    {"type":"header","version":1,"sweep_id":"<stable sweep identity>"}
    {"type":"done","cell":17,"key":"<cache key or null>","doc":{...}}
    ...

Crash-safety model: records are appended with a single buffered
``write`` + ``flush`` per completion (one line, one syscall), so a torn
final line — the scheduler killed mid-append — is expected and simply
ignored on replay.  A journal whose header names a different
``sweep_id`` (or is itself torn) is discarded and restarted: stale
checkpoints must never leak completions into an unrelated sweep.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from repro.trace.serialization import canonical_json_line

JOURNAL_VERSION = 1


class FrontierJournal:
    """Append-only completions log of one distributed sweep.

    Use :meth:`open` — it replays any compatible existing file into
    :attr:`completed` and positions the handle for appending.
    """

    def __init__(self, path: Union[str, Path], sweep_id: str) -> None:
        self.path = Path(path)
        self.sweep_id = sweep_id
        #: cell -> result document replayed from an earlier run.
        self.completed: Dict[int, Dict[str, Any]] = {}
        #: Byte length of the valid (parseable) prefix found by replay;
        #: anything past it is a torn tail that must be truncated away
        #: before appending, or the next record would merge with it.
        self._valid_bytes = 0
        self._handle: Optional[TextIO] = None

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def open(cls, path: Union[str, Path], sweep_id: str) -> "FrontierJournal":
        """Open (or create) the journal for ``sweep_id`` at ``path``.

        Replays a compatible existing file; truncates and restarts on a
        header mismatch (different sweep, different version, torn
        header).
        """
        journal = cls(path, sweep_id)
        journal.completed = journal._replay()
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        if journal._valid_bytes:
            # Drop the torn tail (if any) before appending: a fresh
            # record written after stray half-line bytes would merge
            # with them and be lost on the *next* replay.
            with journal.path.open("rb+") as raw:
                raw.truncate(journal._valid_bytes)
            journal._handle = journal.path.open("a", encoding="utf-8")
        else:
            journal._handle = journal.path.open("w", encoding="utf-8")
            journal._append({"type": "header", "version": JOURNAL_VERSION,
                             "sweep_id": sweep_id})
        return journal

    def _replay(self) -> Dict[int, Dict[str, Any]]:
        """Parse an existing journal file; empty on any incompatibility."""
        self._valid_bytes = 0
        try:
            data = self.path.read_bytes()
        except OSError:
            return {}
        completed: Dict[int, Dict[str, Any]] = {}
        offset = 0
        position = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                # An unterminated final line: the writer died inside its
                # single append (record + newline land in one write, so
                # even a parseable fragment is suspect).  Torn tail.
                break
            line = data[offset:newline]
            try:
                entry = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                # A torn line (the writer died mid-append) ends the
                # usable prefix; a torn *header* invalidates the file.
                break
            if position == 0:
                if (not isinstance(entry, dict)
                        or entry.get("type") != "header"
                        or entry.get("version") != JOURNAL_VERSION
                        or entry.get("sweep_id") != self.sweep_id):
                    return {}
            elif (isinstance(entry, dict) and entry.get("type") == "done"
                    and isinstance(entry.get("doc"), dict)):
                completed[int(entry["cell"])] = entry["doc"]
            offset = newline + 1
            position += 1
            self._valid_bytes = offset
        return completed

    def _append(self, entry: Dict[str, Any]) -> None:
        assert self._handle is not None, "journal is not open"
        self._handle.write(canonical_json_line(entry) + "\n")
        self._handle.flush()

    # -- recording ---------------------------------------------------------
    def record(self, cell: int, doc: Dict[str, Any],
               key: Optional[str] = None) -> None:
        """Log one freshly completed cell (idempotent per cell)."""
        if cell in self.completed:
            return
        self.completed[cell] = doc
        self._append({"type": "done", "cell": cell, "key": key, "doc": doc})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def discard(self) -> None:
        """Close and delete the file (the sweep finished cleanly)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "FrontierJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
