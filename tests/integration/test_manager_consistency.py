"""Integration tests: every manager executes every workload correctly.

These tests replay the same traces through every manager model and check
the schedule against the reference dependency DAG, plus cross-manager
invariants (the ideal manager is never slower than a hardware manager,
speedups never exceed the DAG's maximum parallelism, ...).
"""

import pytest

from repro.managers.ideal import IdealManager
from repro.system.machine import simulate
from repro.trace.dag import build_dependency_graph
from repro.workloads.gaussian import generate_gaussian_elimination
from repro.workloads.h264dec import generate_h264dec
from repro.workloads.sparselu import generate_sparselu
from repro.workloads.streamcluster import generate_streamcluster
from repro.workloads.synthetic import generate_random_dag


SMALL_TRACES = [
    pytest.param(lambda: generate_random_dag(100, seed=2), id="random-dag"),
    pytest.param(lambda: generate_h264dec(grouping=8, num_frames=2, scale=0.15, seed=2), id="h264-small"),
    pytest.param(lambda: generate_sparselu(num_blocks=6, seed=2), id="sparselu-small"),
    pytest.param(lambda: generate_streamcluster(num_rounds=3, group_size=20, seed=2), id="streamcluster-small"),
    pytest.param(lambda: generate_gaussian_elimination(matrix_size=20), id="gaussian-20"),
]


@pytest.mark.parametrize("trace_factory", SMALL_TRACES)
def test_every_manager_respects_dependencies(trace_factory, any_manager):
    trace = trace_factory()
    result = simulate(trace, any_manager, 4, validate=True)
    assert result.num_tasks == trace.num_tasks


@pytest.mark.parametrize("trace_factory", SMALL_TRACES)
def test_speedup_never_exceeds_structural_parallelism(trace_factory, any_manager):
    trace = trace_factory()
    graph = build_dependency_graph(trace)
    result = simulate(trace, any_manager, 16)
    assert result.speedup_vs_serial <= graph.max_parallelism() * (1.0 + 1e-9) + 1e-9


@pytest.mark.parametrize("trace_factory", SMALL_TRACES)
def test_ideal_is_a_lower_bound_on_makespan(trace_factory, any_manager):
    trace = trace_factory()
    ideal = simulate(trace, IdealManager(), 8)
    other = simulate(trace, any_manager, 8)
    assert other.makespan_us >= ideal.makespan_us - 1e-6


def test_more_cores_never_hurt_ideal():
    trace = generate_random_dag(150, seed=9)
    previous = None
    for cores in (1, 2, 4, 8, 16):
        makespan = simulate(trace, IdealManager(), cores).makespan_us
        if previous is not None:
            assert makespan <= previous + 1e-6
        previous = makespan


def test_hardware_managers_converge_to_ideal_for_coarse_tasks(any_manager):
    """With millisecond tasks, every manager's overhead is negligible, so
    all speedups land close to the ideal one (the c-ray observation)."""
    trace = generate_random_dag(60, max_predecessors=1, duration_range_us=(5000.0, 6000.0), seed=4)
    ideal = simulate(trace, IdealManager(), 8).speedup_vs_serial
    other = simulate(trace, any_manager, 8).speedup_vs_serial
    assert other >= 0.75 * ideal
