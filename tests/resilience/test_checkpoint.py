"""Checkpoint/resume acceptance: a SIGKILLed scheduler resumes.

The hard contract from the robustness PR: kill the scheduler process
mid-sweep, restart against the same spec, and the frontier journal plus
shared store resume the sweep with **zero re-executed completed cells**
— gated here by counting ``Machine.run`` calls and recording exactly
which cells the resumed run dispatches to its worker.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import repro
from repro.common.errors import SimulationError
from repro.distributed.scheduler import SweepScheduler
from repro.distributed.worker import run_worker
from repro.experiments.runner import SweepRunner, intern_jobs, run_job
from repro.experiments.spec import SweepSpec
from repro.resilience.journal import FrontierJournal

import repro.experiments.runner as runner_module


def resume_spec(seeds=16):
    return SweepSpec(
        workloads=["microbench"],
        managers=["ideal", "nanos"],
        core_counts=[1, 2, 4, 8],
        seeds=tuple(range(seeds)),
        scale=0.05,
    )


DRIVER = """
import sys
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepSpec

spec = SweepSpec(workloads=["microbench"], managers=["ideal", "nanos"],
                 core_counts=[1, 2, 4, 8], seeds=tuple(range(16)), scale=0.05)
SweepRunner(transport="sockets", workers=2, cache_dir=sys.argv[1]).run(spec)
"""


def start_scheduler(scheduler):
    box = {}

    def target():
        try:
            box["pairs"] = scheduler.run()
        except SimulationError as exc:
            box["error"] = exc

    thread = threading.Thread(target=target)
    thread.start()
    assert scheduler.wait_until(
        lambda: scheduler.address is not None or not thread.is_alive())
    return thread, box


class TestSchedulerSigkillResume:
    def test_sigkilled_scheduler_resumes_with_zero_reexecution(
            self, tmp_path, monkeypatch):
        spec = resume_spec()
        total = len(list(spec.points()))
        store = tmp_path / "store"
        sweep_id = spec.spec_hash()
        journal_path = store / "_journal" / f"{sweep_id}.jsonl"

        # Phase 1: a real scheduler process, SIGKILLed mid-sweep.  The
        # journal is its only trace — SIGKILL runs no cleanup code.
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-c", DRIVER, str(store)], env=env)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if journal_path.exists() and \
                        journal_path.read_text().count('"done"') >= 8:
                    break
                if process.poll() is not None:
                    raise AssertionError(
                        "driver finished before the kill landed; "
                        "grow the spec")
                time.sleep(0.005)
            else:
                raise AssertionError("journal never reached 8 completions")
        finally:
            process.kill()
            process.wait(timeout=30)

        # Orphaned phase-1 workers exhaust their reconnect budget on
        # their own; nothing they still do touches the journal.
        journal = FrontierJournal.open(journal_path, sweep_id)
        resumed = dict(journal.completed)
        assert len(resumed) >= 8
        assert len(resumed) < total  # genuinely mid-sweep

        # Phase 2: restart against the same spec.  The worker runs
        # in-process so the counting monkeypatches see every execution;
        # no cache_dir, so the journal is the only resume mechanism.
        machine_calls = []
        from repro.system.machine import Machine

        real_machine_run = Machine.run

        def counting_machine_run(self, *args, **kwargs):
            machine_calls.append(1)
            return real_machine_run(self, *args, **kwargs)

        executed_cells = []
        real_run_job = run_job

        def recording_run_job(job):
            executed_cells.append(job[0])
            return real_run_job(job)

        monkeypatch.setattr(Machine, "run", counting_machine_run)
        monkeypatch.setattr(runner_module, "run_job", recording_run_job)

        pending = list(enumerate(spec.points()))
        jobs, table = intern_jobs(pending)
        scheduler = SweepScheduler(jobs, table, workers=0, external_workers=1,
                                   journal=journal, timeout=120)
        thread, box = start_scheduler(scheduler)
        code = run_worker(*scheduler.address, worker_id="resume-0")
        thread.join(timeout=120)
        journal.close()
        assert code == 0
        assert "error" not in box

        # The resume accounting: every journalled cell was pre-completed,
        # every other cell ran exactly once, and Machine.run never fired
        # for a journalled cell.
        assert scheduler.resumed_cells == len(resumed)
        assert set(executed_cells) == set(range(total)) - set(resumed)
        assert len(executed_cells) == total - len(resumed)
        assert len(machine_calls) > 0
        # Completeness: one document per grid cell, journalled documents
        # flowing through verbatim.
        results = dict(box["pairs"])
        assert len(results) == total
        for cell, doc in resumed.items():
            assert results[cell] == doc


class TestRunnerResume:
    def test_runner_resumes_from_journal_and_discards_on_success(self, tmp_path):
        """Runner-level resume: a journal left by a dead scheduler is
        replayed (cells never re-dispatched), the final JSONL is
        byte-identical to a serial run, and a clean finish deletes the
        checkpoint."""
        spec = resume_spec(seeds=2)  # 16 cells
        points = list(spec.points())
        serial = SweepRunner().run(spec, jsonl_path=tmp_path / "serial.jsonl")

        store = tmp_path / "store"
        sweep_id = spec.spec_hash()
        journal_path = store / "_journal" / f"{sweep_id}.jsonl"
        with FrontierJournal.open(journal_path, sweep_id) as journal:
            for index, point in list(enumerate(points))[:5]:
                _, doc = run_job((index, point, None))
                journal.record(index, doc)

        runner = SweepRunner(transport="sockets", workers=2, cache_dir=store)
        outcome = runner.run(spec, jsonl_path=tmp_path / "resumed.jsonl")
        assert (tmp_path / "serial.jsonl").read_bytes() == \
            (tmp_path / "resumed.jsonl").read_bytes()
        assert outcome.executed == serial.executed
        assert runner.last_scheduler is not None
        assert runner.last_scheduler.resumed_cells == 5
        assert not journal_path.exists()  # discarded on clean finish

    def test_stale_journal_for_another_sweep_is_ignored(self, tmp_path):
        spec = resume_spec(seeds=1)  # 8 cells
        store = tmp_path / "store"
        sweep_id = spec.spec_hash()
        journal_path = store / "_journal" / f"{sweep_id}.jsonl"
        # A journal written under a different sweep identity at the same
        # path must not leak completions into this sweep.
        with FrontierJournal.open(journal_path, "some-other-sweep") as journal:
            journal.record(0, {"poison": True})
        runner = SweepRunner(transport="sockets", workers=2, cache_dir=store)
        outcome = runner.run(spec)
        assert runner.last_scheduler.resumed_cells == 0
        assert outcome.executed == 8
        assert not any("poison" in line for line in outcome.jsonl_lines())
