"""cProfile plumbing for the command-line entry points.

Hot-path regressions in the simulator are easiest to diagnose from the
exact command that exposed them; the ``--profile`` flags of
``analysis.cli simulate`` and ``experiments.cli sweep`` wrap the run in
:func:`maybe_profile` instead of requiring an ad-hoc script.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO

#: Number of rows printed from the cumulative-time profile.
PROFILE_TOP = 25


@contextmanager
def maybe_profile(
    enabled: bool,
    stream: Optional[TextIO] = None,
    top: int = PROFILE_TOP,
) -> Iterator[None]:
    """Profile the wrapped block when ``enabled``; no-op otherwise.

    On exit, the ``top`` entries by *cumulative* time are printed to
    ``stream`` (stderr by default, so piped stdout output stays clean).
    Note that only the calling process is profiled: parallel sweeps
    (``--n-jobs > 1``) execute grid cells in worker processes, so profile
    sweeps serially.
    """
    if not enabled:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        out = stream or sys.stderr
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        out.write(buffer.getvalue())
        out.flush()
