"""Serially-occupied resources.

The hardware models reason about *when* a unit (Input Parser, a task
graph's insertion port, the Dependence Counts Arbiter, the Write-Back
port) finishes a piece of work, given that the unit can only work on one
item at a time and items are handed to it in simulation-time order.

:class:`SerialResource` captures exactly that: ``reserve(earliest, dur)``
returns the interval actually occupied, advancing the resource's
"next free" pointer.  Because the machine-level event loop calls the
manager models in non-decreasing time order, a simple pointer is
sufficient — no backtracking is ever needed.  The resource additionally
accumulates busy time so the analysis layer can report utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigurationError, SimulationError


@dataclass(slots=True)
class ResourceStats:
    """Aggregate statistics of a :class:`SerialResource`.

    ``slots=True``: one instance is updated on every reservation of every
    pipeline resource, which makes these the hottest attribute writes in
    the hardware-manager models.
    """

    reservations: int = 0
    busy_time: float = 0.0
    total_wait: float = 0.0
    last_busy_until: float = 0.0

    @property
    def mean_service_time(self) -> float:
        """Average occupancy per reservation (0 when never used)."""
        if self.reservations == 0:
            return 0.0
        return self.busy_time / self.reservations

    @property
    def mean_wait(self) -> float:
        """Average queuing delay per reservation (0 when never used)."""
        if self.reservations == 0:
            return 0.0
        return self.total_wait / self.reservations

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` during which the resource was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)


class SerialResource:
    """A unit that processes one item at a time, in arrival order.

    Parameters
    ----------
    name:
        Human-readable identifier used in error messages and statistics.
    """

    __slots__ = ("name", "_next_free", "stats")

    def __init__(self, name: str) -> None:
        self.name = name
        self._next_free: float = 0.0
        self.stats = ResourceStats()

    @property
    def next_free(self) -> float:
        """Earliest time at which a new reservation could start."""
        return self._next_free

    def reserve(self, earliest: float, duration: float) -> tuple[float, float]:
        """Occupy the resource for ``duration`` starting no earlier than ``earliest``.

        Returns ``(start, end)``.  ``duration`` may be zero (the
        reservation then only orders subsequent work after ``earliest``).
        """
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        if earliest < 0:
            raise SimulationError(f"{self.name}: negative start time {earliest}")
        next_free = self._next_free
        start = earliest if earliest > next_free else next_free
        end = start + duration
        self._next_free = end
        stats = self.stats
        stats.reservations += 1
        stats.busy_time += duration
        stats.total_wait += start - earliest
        stats.last_busy_until = end
        return start, end

    def peek_start(self, earliest: float) -> float:
        """Return the time a reservation made now would start, without reserving."""
        return max(earliest, self._next_free)

    def reset(self) -> None:
        """Forget all reservations."""
        self._next_free = 0.0
        self.stats = ResourceStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SerialResource({self.name!r}, next_free={self._next_free:.3f})"


class MultiResource:
    """A pool of ``count`` identical serial servers (e.g. worker cores).

    Reservations are placed on the server that frees up first, which is
    the behaviour of a greedy work-conserving scheduler.
    """

    __slots__ = ("name", "count", "_free_times", "stats")

    def __init__(self, name: str, count: int) -> None:
        if count <= 0:
            raise ConfigurationError(f"{name}: server count must be positive, got {count}")
        self.name = name
        self.count = count
        self._free_times = [0.0] * count
        self.stats = ResourceStats()

    def reserve(self, earliest: float, duration: float) -> tuple[float, float, int]:
        """Occupy the first available server; return ``(start, end, server_index)``."""
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        index = min(range(self.count), key=lambda i: self._free_times[i])
        start = max(earliest, self._free_times[index])
        end = start + duration
        self._free_times[index] = end
        self.stats.reservations += 1
        self.stats.busy_time += duration
        self.stats.total_wait += start - earliest
        self.stats.last_busy_until = max(self.stats.last_busy_until, end)
        return start, end, index

    def earliest_available(self) -> float:
        """Time at which at least one server is (or becomes) free."""
        return min(self._free_times)

    def reset(self) -> None:
        """Forget all reservations."""
        self._free_times = [0.0] * self.count
        self.stats = ResourceStats()

    def utilization(self, horizon: float) -> float:
        """Aggregate utilisation over ``count`` servers up to ``horizon``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / (horizon * self.count))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiResource({self.name!r}, count={self.count})"
